//! Ring-as-a-service: lock-free readers surviving a correlated fault burst.
//!
//! A `RingService` owns the repair loop for a B(2,12) ring: a writer
//! thread drains fault events through the incremental `RingMaintainer`
//! and publishes each repaired ring as an immutable epoch-stamped
//! snapshot. Reader threads keep walking the ring through cheap
//! `ReaderHandle`s the whole time — every lap runs against one coherent
//! snapshot, so a correlated 8-node rack failure (plus link faults)
//! repairs and republishes underneath them with **zero failed lookups**
//! and every lap still closing into a cycle.
//!
//! Run with: `cargo run --release --example ring_service`
//!
//! ATOMICS: the demo's stop flag is a single-writer boolean — the driver
//! thread alone stores it and readers poll it with Relaxed; every value
//! the readers actually check flows through the epoch-published
//! snapshots, not through this flag.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use debruijn_rings::prelude::*;

fn main() {
    let (d, n) = (2u64, 12u32);
    let ffc = Arc::new(Ffc::new(d, n));
    let total = ffc.graph().len();
    let svc = RingService::start(Arc::clone(&ffc), &[], ServeOptions::default())
        .expect("a fault-free network always embeds");
    let healthy_len = svc.reader().snapshot().ring_len();
    println!(
        "B({d},{n}): serving a ring of {healthy_len} of {total} processors (epoch {})",
        svc.epoch()
    );

    // Malformed submissions are rejected synchronously, before they can
    // reach the writer thread.
    let bogus = svc.submit(FaultEvent::NodeDown(total + 7));
    println!(
        "submitting NodeDown({}) -> {}",
        total + 7,
        bogus.unwrap_err()
    );

    // Three readers walk full laps concurrently with everything below.
    // Each lap runs against ONE immutable snapshot: the nodes a reader
    // walks can never be yanked out from under it, no matter what the
    // repair writer publishes meanwhile.
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let mut reader = svc.reader();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let (mut lookups, mut failed, mut laps) = (0u64, 0u64, 0u64);
            let mut generations = BTreeSet::new();
            while !stop.load(Ordering::Relaxed) {
                let snap = reader.snapshot();
                generations.insert(snap.seq());
                let Some(root) = snap.root() else { continue };
                let mut at = root;
                let mut closed = true;
                for _ in 0..snap.ring_len() {
                    match snap.successor(at) {
                        Ok(next) => {
                            at = next;
                            lookups += 1;
                        }
                        Err(_) => {
                            failed += 1;
                            closed = false;
                            break;
                        }
                    }
                }
                if closed && at == root {
                    laps += 1;
                } else if closed {
                    // A walk of ring_len successors that does not return
                    // to its start would mean a torn ring.
                    failed += 1;
                }
            }
            (lookups, failed, laps, generations.len())
        }));
    }
    std::thread::sleep(Duration::from_millis(30));

    // A correlated burst: a rack of 8 contiguous processors fails at
    // once, and two of the survivors lose an outgoing link.
    let rack = 1000..1008;
    println!("rack failure: processors {rack:?} down, 2 link faults");
    for v in rack.clone() {
        svc.submit(FaultEvent::NodeDown(v)).expect("valid event");
    }
    let suffix = total / d as usize;
    for u in [20usize, 21] {
        svc.submit(FaultEvent::EdgeDown(u, (u % suffix) * d as usize))
            .expect("valid event");
    }
    std::thread::sleep(Duration::from_millis(40));
    let mut probe = svc.reader();
    let degraded = probe.snapshot();
    println!(
        "degraded ring published: {} nodes ({} excluded), epoch {}",
        degraded.ring_len(),
        total - degraded.ring_len(),
        probe.epoch()
    );

    // The rack comes back; the links are restored.
    for v in rack {
        svc.submit(FaultEvent::NodeUp(v)).expect("valid event");
    }
    for u in [20usize, 21] {
        svc.submit(FaultEvent::EdgeUp(u, (u % suffix) * d as usize))
            .expect("valid event");
    }
    std::thread::sleep(Duration::from_millis(30));

    stop.store(true, Ordering::Relaxed);
    let final_snap = probe.snapshot();
    let report = svc.shutdown();
    println!(
        "writer: {} events in {} batches ({} coalesced), {} publications \
         ({} shared ring wiring, {} shared membership), publish p50 {:.1} µs p99 {:.1} µs",
        report.events,
        report.batches,
        report.coalesced_events(),
        report.publications,
        report.shared_ring,
        report.shared_membership,
        report.publish_quantile_ns(0.5) as f64 / 1e3,
        report.publish_quantile_ns(0.99) as f64 / 1e3,
    );
    let mut total_lookups = 0u64;
    for (i, t) in readers.into_iter().enumerate() {
        let (lookups, failed, laps, generations) = t.join().expect("reader panicked");
        println!(
            "reader {i}: {lookups} lookups, {laps} closed laps across {generations} ring \
             generations, {failed} failed"
        );
        assert_eq!(failed, 0, "snapshot reads must never fail mid-lap");
        total_lookups += lookups;
    }
    assert_eq!(final_snap.ring_len(), healthy_len, "ring fully recovered");
    assert!(report.final_outcome.expect("events flowed").is_repaired());
    println!("{total_lookups} total lookups, 0 failed — ring back to {healthy_len} nodes");
}
