//! All-to-all broadcast on a reconfigured ring.
//!
//! The scenario motivating the paper: a ring-structured computation (here,
//! an all-to-all broadcast) must keep running after processors fail. The
//! FFC algorithm re-embeds the ring among the surviving necklaces and the
//! collective runs on the new ring.
//!
//! Run with: `cargo run --release --example fault_tolerant_broadcast`

use debruijn_rings::prelude::*;

fn main() {
    let d = 4;
    let n = 5; // 1024 processors, the size simulated in Table 2.2
    let ffc = Ffc::new(d, n);
    let graph = ffc.graph();

    for fault_count in [0usize, 2, 10] {
        // Deterministic "failures" spread across the address space.
        let failed: Vec<usize> = (0..fault_count)
            .map(|i| (i * 97 + 13) % graph.len())
            .collect();
        let outcome = ffc.embed(&failed);
        let report = all_to_all_broadcast(graph, &outcome.cycle);
        println!(
            "faults = {fault_count:>2}: ring of {:>4} processors, all-to-all broadcast in {:>4} rounds \
             ({} messages, max link load {}, complete: {})",
            outcome.cycle.len(),
            report.rounds,
            report.messages_delivered,
            report.max_link_load,
            report.complete
        );
    }

    println!();
    println!(
        "The broadcast always needs (ring length - 1) rounds; the FFC guarantee keeps the ring \
         within n*f = {} processors of full size for f <= d-2 = {} faults.",
        n as usize * (d as usize - 2),
        d - 2
    );
}
