//! Spreading traffic across edge-disjoint Hamiltonian cycles.
//!
//! Section 3.2's motivation: if B(d,n) supplies ψ(d) edge-disjoint
//! Hamiltonian cycles, a long message can be cut into ψ(d) pieces and each
//! piece pipelined around its own ring, dividing the per-link payload by
//! ψ(d) — and any ψ(d) − 1 link failures still leave one intact ring.
//!
//! Run with: `cargo run --release --example disjoint_rings_broadcast`

use debruijn_rings::prelude::*;

fn main() {
    let d = 8;
    let n = 2; // 64 processors, psi(8) = 7 disjoint rings
    let graph = DeBruijn::new(d, n);
    let family = DisjointHamiltonianCycles::construct(d, n);
    println!(
        "B({d},{n}): {} processors, psi({d}) = {} edge-disjoint Hamiltonian cycles",
        graph.len(),
        family.count()
    );

    let single = all_to_all_broadcast(&graph, &family.cycles()[0]);
    let split = split_all_to_all_broadcast(&graph, family.cycles());
    println!(
        "single ring : {} rounds, {} message-units delivered, max load {} units/link",
        single.rounds, single.messages_delivered, single.max_link_load
    );
    println!(
        "{} rings     : {} rounds, {} message-units delivered, max load {} units/link \
         (each unit is 1/{} of the payload => per-link bytes drop {}x)",
        family.count(),
        split.rounds,
        split.messages_delivered,
        split.max_link_load,
        family.count(),
        family.count()
    );

    // Fault tolerance for free: break one link of every ring but the last;
    // a fault-free ring still exists.
    let faults: Vec<(usize, usize)> = family.cycles()[..family.count() - 1]
        .iter()
        .map(|c| (c[0], c[1]))
        .collect();
    let survivor = family
        .fault_free_cycle(&faults)
        .expect("psi(d)-1 link failures always leave one ring intact");
    println!(
        "after {} link failures, ring #{} is still fault-free ({} processors)",
        faults.len(),
        family
            .cycles()
            .iter()
            .position(|c| std::ptr::eq(c, survivor))
            .unwrap(),
        survivor.len()
    );

    // Beyond the disjoint family: the Proposition 3.3/3.4 embedder tolerates
    // MAX{psi-1, phi} arbitrary link failures.
    let embedder = EdgeFaultEmbedder::new(d, n);
    let adversarial: Vec<(usize, usize)> = (0..edge_fault_tolerance(d) as usize)
        .map(|i| {
            let u = (i * 11 + 3) % graph.len();
            (u, graph.successor(u, (i as u64) % d))
        })
        .filter(|&(u, v)| u != v)
        .collect();
    let cycle = embedder
        .hamiltonian_avoiding(&adversarial)
        .expect("within the guaranteed tolerance");
    println!(
        "Proposition 3.4 embedder: Hamiltonian ring of {} processors avoiding {} adversarial link failures",
        cycle.len(),
        adversarial.len()
    );
}
