//! Lifting de Bruijn rings into a butterfly network (Section 3.4).
//!
//! The wrapped butterfly F(d,n) contracts onto B(d,n); when gcd(d,n) = 1
//! every Hamiltonian cycle of the de Bruijn graph unrolls to a Hamiltonian
//! cycle of the butterfly, carrying the edge-fault tolerance with it.
//!
//! Run with: `cargo run --release --example butterfly_embedding`

use debruijn_rings::prelude::*;

fn main() {
    let d = 4;
    let n = 3; // gcd(4,3) = 1, F(4,3) has 192 processors
    let embedder = ButterflyEmbedder::new(d, n);
    let butterfly = embedder.butterfly();
    println!(
        "F({d},{n}): {} processors across {} levels, {} directed links",
        butterfly.len(),
        butterfly.n(),
        butterfly.edge_count()
    );

    // psi(4) = 3 edge-disjoint Hamiltonian cycles, lifted from B(4,3).
    let rings = embedder.disjoint_hamiltonian_cycles();
    println!(
        "lifted {} edge-disjoint Hamiltonian cycles (psi({d}) = {})",
        rings.len(),
        psi(d)
    );
    for (i, ring) in rings.iter().enumerate() {
        println!(
            "  ring {}: {} butterfly nodes, starts at {}",
            i,
            ring.len(),
            butterfly.label(ring[0])
        );
    }

    // Link failures in the butterfly are projected down to B(d,n), solved
    // there, and the solution lifted back (Proposition 3.5).
    let faults: Vec<(usize, usize)> = rings[0][..2]
        .windows(2)
        .map(|w| (w[0], w[1]))
        .chain(rings[1][..2].windows(2).map(|w| (w[0], w[1])))
        .collect();
    let cycle = embedder
        .hamiltonian_avoiding(&faults)
        .expect("two link failures are within MAX{psi-1, phi} = 2 for d = 4");
    println!(
        "after {} butterfly link failures: Hamiltonian ring of {} processors recovered",
        faults.len(),
        cycle.len()
    );

    // The contraction in the other direction: de Bruijn classes partition
    // the butterfly nodes.
    let debruijn = DeBruijn::new(d, n);
    let class = butterfly.debruijn_class(debruijn.node("012").unwrap() as u64);
    println!(
        "butterfly class of de Bruijn node 012: {:?}",
        class
            .iter()
            .map(|&v| butterfly.label(v))
            .collect::<Vec<_>>()
    );
}
