//! Quickstart: embed a fault-free ring in a 4096-processor de Bruijn
//! network with failed processors, and compare against the hypercube
//! baseline the paper uses as its yard-stick.
//!
//! Run with: `cargo run --release --example quickstart`

use debruijn_rings::prelude::*;

fn main() {
    // The paper's headline instance: B(4,6) has 4096 processors, the same
    // as the 12-dimensional hypercube, but 1.5x fewer links.
    let ffc = Ffc::new(4, 6);
    let graph = ffc.graph();
    println!(
        "B(4,6): {} processors, {} directed links",
        graph.len(),
        graph.edge_count()
    );

    // Two processors fail.
    let failed = vec![
        graph.node("012301").expect("valid label"),
        graph.node("330011").expect("valid label"),
    ];
    println!(
        "failed processors: {:?}",
        failed.iter().map(|&v| graph.label(v)).collect::<Vec<_>>()
    );

    // The FFC algorithm joins the surviving necklaces into one ring.
    let outcome = ffc.embed(&failed);
    println!(
        "fault-free ring: {} of {} processors (guarantee for f = {}: {})",
        outcome.cycle.len(),
        graph.len(),
        failed.len(),
        FfcOutcome::guarantee(4, 6, failed.len())
    );
    println!(
        "necklaces removed: {} ({} processors), broadcast depth: {} rounds",
        outcome.faulty_necklaces, outcome.removed_nodes, outcome.eccentricity
    );

    // The hypercube with the same number of processors and the same faults.
    let hypercube = HypercubeRingEmbedder::new(12);
    let hc_ring = hypercube.embed(&failed).expect("two faults are within n-2");
    println!(
        "hypercube Q(12): ring of {} processors (guarantee {}), using {} links",
        hc_ring.len(),
        HypercubeRingEmbedder::guaranteed_length(12, failed.len()),
        Hypercube::new(12).link_count()
    );

    // How many link failures could B(4,6) absorb while staying Hamiltonian?
    println!(
        "link-failure tolerance of B(4,·): MAX{{psi-1, phi}} = {}",
        edge_fault_tolerance(4)
    );
}
