//! The distributed reconfiguration protocol of Section 2.4, executed on the
//! message-passing simulator: every processor discovers its successor in
//! the new ring using only local state and neighbour messages, in
//! O(K + n) communication rounds.
//!
//! Run with: `cargo run --release --example distributed_reconfiguration`

use debruijn_rings::prelude::*;

fn main() {
    let d = 3;
    let n = 4; // 81 processors
    let protocol = DistributedFfc::new(d, n);
    let graph = protocol.graph();

    let failed = vec![graph.node("0012").unwrap(), graph.node("2221").unwrap()];
    println!(
        "B({d},{n}): {} processors; failed: {:?}",
        graph.len(),
        failed.iter().map(|&v| graph.label(v)).collect::<Vec<_>>()
    );

    let outcome = protocol.run(&failed);
    let rounds = outcome.rounds;
    println!("distributed protocol rounds:");
    println!("  necklace probe      : {:>3}", rounds.probe);
    println!(
        "  broadcast           : {:>3} (eccentricity of the root: {})",
        rounds.broadcast, rounds.broadcast_depth
    );
    println!("  necklace aggregation: {:>3}", rounds.share);
    println!("  w-group formation   : {:>3}", rounds.group);
    println!(
        "  total               : {:>3}  (= K + 3n + 2)",
        rounds.total
    );
    println!(
        "fabric traffic: {} messages sent, {} delivered, {} dropped by faults",
        outcome.network.messages_sent,
        outcome.network.messages_delivered,
        outcome.network.messages_dropped
    );

    let distributed_cycle = outcome.cycle.expect("faults are within the guarantee");
    let centralized = protocol.reference().embed(&failed);
    println!(
        "ring length: {} (centralized algorithm finds {}) — identical: {}",
        distributed_cycle.len(),
        centralized.cycle.len(),
        distributed_cycle == centralized.cycle
    );
}
