//! Offline stand-in for the parts of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poisoning
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock propagates the
//! original panic, which matches how the benchmarks use it.

#![forbid(unsafe_code)]

use std::sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5usize);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }
}
