//! Offline stand-in for a rayon-style scoped worker pool: a small set of
//! **persistent** worker threads that repeatedly execute borrowed closures,
//! plus a **sense-reversing spin barrier** for intra-job level
//! synchronisation. There is no registry access in this build environment,
//! so — per the `vendor/` policy — this is a minimal, fully tested local
//! implementation rather than a dependency.
//!
//! Why it exists: `std::thread::scope` pays a thread spawn + join per call,
//! and `std::sync::Barrier` parks threads through a mutex/condvar pair —
//! both fine for coarse jobs, ruinous when a job synchronises per BFS level
//! (microseconds of work between waits). [`ShardPool`] spawns its threads
//! once and reuses them across jobs, and [`SenseBarrier`] synchronises with
//! two atomics and bounded spinning.
//!
//! # Job protocol
//!
//! [`ShardPool::run`] publishes a borrowed `Fn(usize)` job to the workers,
//! runs the leader closure on the calling thread (which conventionally acts
//! as participant 0), and returns only after every worker has finished the
//! job — so the borrow of captured state ends before `run` returns, exactly
//! like `std::thread::scope`. A single `Mutex`/`Condvar` round trip per
//! **job** (not per level) is the only blocking synchronisation; everything
//! inside the job uses [`SenseBarrier`].
//!
//! Worker panics are caught, the job is drained, and `run` re-raises a
//! panic on the caller thread — a poisoned pool is never silently reused.
//!
//! # ATOMICS: sense-reversing barrier for barrier-phased kernels
//!
//! `wait` increments `count` with `AcqRel`; the last arriver resets `count`
//! (a `Relaxed` store, ordered by the release below) and bumps `sense` with
//! `Release`, and every spinner re-reads `sense` with `Acquire`. The
//! release/acquire pair on `sense` (plus the RMW chain on `count`) gives
//! happens-before from all writes before any `wait` to all reads after
//! every `wait` — exactly the edge the barrier-phased sweep kernels in
//! `debruijn_core::bitreach` lean on for their single-writer `Relaxed`
//! stores. The sense value is a wrapping counter, so consecutive barrier
//! episodes can never be confused (no ABA). Test counters are `Relaxed`
//! tallies read after a join; the `racecheck` phase epoch is deliberately
//! `SeqCst` so the shadow detector's bookkeeping is never itself racy.
//!
//! # Safety
//!
//! This is the one crate in the workspace permitted to hold `unsafe` code
//! (see `debruijn-lint`'s allowlist); both uses serve a single
//! lifetime-erasure trick. [`ShardPool::run`] hands a borrowed
//! `&dyn Fn(usize)` to long-lived worker threads as a raw pointer whose
//! lifetime has been transmuted to `'static`. That lie is made true
//! structurally:
//!
//! * `run` publishes the job, then blocks in a `Complete` drop guard until
//!   `remaining == 0`. The guard runs even when the leader closure panics,
//!   so the borrow of `worker` is still open at every dereference.
//! * a worker dereferences the pointer only between observing a fresh
//!   `generation` and decrementing `remaining`, both under the state
//!   mutex — which orders every dereference before `run` can return.
//! * the pointee is `Sync`, so shared calls from many workers at once are
//!   within the pointee's own contract (hence `unsafe impl Send for Job`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Phase-epoch bookkeeping for the `racecheck` shadow race detector.
///
/// The pool is the only component that *knows* where the synchronisation
/// edges of a barrier-phased job are, so it owns the epoch: a global
/// counter bumped at every [`SenseBarrier`] crossing, at job publication
/// in [`ShardPool::run`], and when a job drains. Instrumented cells (see
/// `debruijn_core::bitreach` under `--features racecheck`) stamp each
/// write with `(writer, epoch)` and fault on a second writer touching the
/// same word in the same epoch — the single-writer-per-word-per-phase
/// protocol, executed rather than merely documented.
#[cfg(feature = "racecheck")]
pub mod racecheck {
    use std::sync::atomic::{AtomicU64, Ordering};

    // Starts at 1 so instrumented cells can use epoch 0 as "never written".
    static EPOCH: AtomicU64 = AtomicU64::new(1);

    /// The current global phase epoch.
    #[must_use]
    pub fn epoch() -> u64 {
        EPOCH.load(Ordering::SeqCst)
    }

    /// Advances the phase epoch; called at every synchronisation edge
    /// (barrier crossing, job publication, job drain). Returns the new
    /// epoch. Public so fork/join code that synchronises *without* the
    /// pool (e.g. `std::thread::scope` joins) can declare its own edges.
    pub fn bump() -> u64 {
        EPOCH.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// A sense-reversing spin barrier for `parties` participants.
///
/// Unlike `std::sync::Barrier` this never touches a mutex: arrival is one
/// `fetch_add` and departure is a bounded spin on an atomic counter, which
/// is what per-level synchronisation in a bitmap sweep can afford. Spinners
/// yield to the scheduler every 64 iterations so oversubscribed boxes (more
/// parties than cores) still make progress.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicUsize,
}

impl SenseBarrier {
    /// A barrier for `parties` participants (at least 1).
    #[must_use]
    pub fn new(parties: usize) -> Self {
        Self {
            parties: parties.max(1),
            count: AtomicUsize::new(0),
            sense: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `parties` participants have called `wait` for this
    /// episode. The last arriver releases the others; no participant can
    /// race into the next episode and confuse it with this one because the
    /// sense is a wrapping episode counter.
    pub fn wait(&self) {
        let ticket = self.sense.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Relaxed);
            // The last arriver advances the phase epoch *before* releasing
            // the others: the bump happens-before every post-barrier write.
            #[cfg(feature = "racecheck")]
            crate::racecheck::bump();
            self.sense.store(ticket.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) == ticket {
                std::hint::spin_loop();
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A borrowed job, type-erased so it can cross the worker channel. The
/// pointee outlives the job because [`ShardPool::run`] does not return (and
/// thus does not end the borrow) until `remaining` drops to zero.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    workers: usize,
}

// SAFETY: the pointee is `Sync` and `run` keeps it alive (and the borrow
// open) until every worker is done with it, so sending the raw pointer to
// the worker threads is sound.
unsafe impl Send for Job {}

struct JobState {
    /// Bumped once per published job; workers run a job exactly once.
    generation: u64,
    job: Option<Job>,
    /// Workers still executing (or yet to observe) the current job.
    remaining: usize,
    /// A worker closure panicked during the current job.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent pool of worker threads for sharded bitmap sweeps.
///
/// Threads are spawned lazily on first use (and grown on demand), then
/// reused for every subsequent [`run`](Self::run) — the per-job cost is one
/// mutex/condvar round trip instead of `k` thread spawns and joins.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Default for ShardPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ShardPool {
    /// An empty pool; threads are spawned on first [`run`](Self::run).
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(JobState {
                    generation: 0,
                    job: None,
                    remaining: 0,
                    panicked: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            handles: Vec::new(),
        }
    }

    /// Number of worker threads currently spawned.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn ensure_workers(&mut self, want: usize) {
        while self.handles.len() < want {
            let idx = self.handles.len();
            let shared = Arc::clone(&self.shared);
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("shardpool-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn shardpool worker"),
            );
        }
    }

    /// Runs `worker` on `extra_workers` pool threads (as participants
    /// `1..=extra_workers`) while `leader` runs on the calling thread,
    /// returning the leader's result once **every** participant is done.
    ///
    /// With `extra_workers == 0` no pool thread is touched and `leader`
    /// simply runs inline. `worker` may borrow the caller's stack (a
    /// `SenseBarrier`, shared buffers): the borrow provably ends before
    /// `run` returns, even if `leader` unwinds. If any worker panics, `run`
    /// panics after the job fully drains.
    pub fn run<R>(
        &mut self,
        extra_workers: usize,
        worker: &(dyn Fn(usize) + Sync),
        leader: impl FnOnce() -> R,
    ) -> R {
        if extra_workers == 0 {
            return leader();
        }
        self.ensure_workers(extra_workers);
        let f: *const (dyn Fn(usize) + Sync) = worker;
        // SAFETY (lifetime erasure): the `'static` is a lie the drop guard
        // makes true — `Complete` blocks until `remaining == 0`, so the
        // borrow of `worker` outlives every dereference of the pointer,
        // even if `leader` panics. See the module-level `# Safety` section.
        let f: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(f) };
        {
            let mut st = self.shared.state.lock().expect("shardpool lock");
            debug_assert_eq!(st.remaining, 0, "previous job fully drained");
            // Job publication is a synchronisation edge: whatever the
            // caller wrote before `run` is a different phase from what the
            // workers write inside the job.
            #[cfg(feature = "racecheck")]
            racecheck::bump();
            st.generation += 1;
            st.remaining = extra_workers;
            st.panicked = false;
            st.job = Some(Job {
                f,
                workers: extra_workers,
            });
            self.shared.work_cv.notify_all();
        }

        struct Complete<'a> {
            shared: &'a Shared,
        }
        impl Drop for Complete<'_> {
            fn drop(&mut self) {
                let mut st = self.shared.state.lock().expect("shardpool lock");
                while st.remaining != 0 {
                    st = self.shared.done_cv.wait(st).expect("shardpool wait");
                }
                st.job = None;
                // The drain is the matching join edge: caller writes after
                // `run` returns are a new phase.
                #[cfg(feature = "racecheck")]
                crate::racecheck::bump();
            }
        }
        let guard = Complete {
            shared: &self.shared,
        };
        let out = leader();
        drop(guard);
        let panicked = self.shared.state.lock().expect("shardpool lock").panicked;
        assert!(!panicked, "shardpool worker panicked");
        out
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("shardpool lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("shardpool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != last_gen {
                    last_gen = st.generation;
                    break;
                }
                st = shared.work_cv.wait(st).expect("shardpool wait");
            }
            match &st.job {
                // A later-spawned worker is not a participant of this job.
                Some(job) if idx < job.workers => Some(job.f),
                _ => None,
            }
        };
        let Some(f) = job else { continue };
        // SAFETY: `run` keeps the pointee alive until `remaining == 0`,
        // which we only signal after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(idx + 1) }));
        let mut st = shared.state.lock().expect("shardpool lock");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronises_all_parties() {
        let parties = 4;
        let barrier = SenseBarrier::new(parties);
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for level in 0..100 {
                        // Everyone must observe the same phase between waits.
                        if phase.load(Ordering::Acquire) != level {
                            bad.fetch_add(1, Ordering::Relaxed);
                        }
                        barrier.wait();
                        // Exactly one participant advances the phase.
                        let _ = phase.compare_exchange(
                            level,
                            level + 1,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
        assert_eq!(phase.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let barrier = SenseBarrier::new(1);
        for _ in 0..10 {
            barrier.wait();
        }
    }

    #[test]
    fn run_executes_leader_and_all_workers() {
        let mut pool = ShardPool::new();
        let hits = AtomicU64::new(0);
        let out = pool.run(
            3,
            &|shard| {
                hits.fetch_add(1 << (8 * shard), Ordering::Relaxed);
            },
            || {
                hits.fetch_add(1, Ordering::Relaxed);
                42
            },
        );
        assert_eq!(out, 42);
        // Participants 0 (leader) and 1..=3 each hit their byte once.
        assert_eq!(hits.load(Ordering::Relaxed), 0x0101_0101);
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn pool_is_reused_across_jobs_and_worker_counts() {
        let mut pool = ShardPool::new();
        for round in 0..20 {
            let extra = round % 4;
            let sum = AtomicU64::new(0);
            pool.run(
                extra,
                &|shard| {
                    sum.fetch_add(shard as u64, Ordering::Relaxed);
                },
                || (),
            );
            let want = (1..=extra as u64).sum::<u64>();
            assert_eq!(sum.load(Ordering::Relaxed), want);
        }
        // Grown to the max ever requested, no more.
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn barriers_work_inside_a_job() {
        let mut pool = ShardPool::new();
        let parties = 4;
        let barrier = SenseBarrier::new(parties);
        let levels = 50usize;
        let counters: Vec<AtomicUsize> = (0..levels).map(|_| AtomicUsize::new(0)).collect();
        let body = |_shard: usize| {
            for c in &counters {
                c.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                // After the barrier every participant must see all arrivals.
                assert_eq!(c.load(Ordering::Relaxed), parties);
                barrier.wait();
            }
        };
        pool.run(parties - 1, &body, || body(0));
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), parties);
        }
    }

    #[test]
    fn zero_extra_workers_runs_leader_inline() {
        let mut pool = ShardPool::new();
        let out = pool.run(0, &|_| unreachable!("no workers requested"), || 7);
        assert_eq!(out, 7);
        assert_eq!(pool.workers(), 0);
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn racecheck_epoch_advances_at_every_sync_edge() {
        // Other tests may bump the global epoch concurrently, so assert
        // only monotone lower bounds.
        let before = crate::racecheck::epoch();
        SenseBarrier::new(1).wait();
        let after_barrier = crate::racecheck::epoch();
        assert!(after_barrier > before, "barrier crossing must bump");
        let mut pool = ShardPool::new();
        pool.run(1, &|_| (), || ());
        let after_job = crate::racecheck::epoch();
        assert!(after_job >= after_barrier + 2, "publish + drain must bump");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = ShardPool::new();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                2,
                &|shard| {
                    if shard == 1 {
                        panic!("boom");
                    }
                },
                || (),
            );
        }));
        assert!(caught.is_err(), "worker panic must surface to the caller");
        // The pool stays usable after a drained panic.
        let sum = AtomicU64::new(0);
        pool.run(
            2,
            &|shard| {
                sum.fetch_add(shard as u64, Ordering::Relaxed);
            },
            || (),
        );
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }
}
