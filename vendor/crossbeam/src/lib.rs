//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! scoped threads. Since Rust 1.63 the standard library provides
//! `std::thread::scope`, so this shim is a thin adapter that preserves the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| …); }).expect(…)` call shape
//! used by the Monte-Carlo sweeps.

/// Scoped threads, adapted onto `std::thread::scope`.
pub mod thread {
    /// The error half of [`Result`]: a propagated panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; closures spawned through it may borrow the
    /// environment of the enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-environment threads can be
    /// spawned; joins them all before returning. Panics in spawned threads
    /// are propagated by `std::thread::scope`, so the result is always `Ok`
    /// unless the closure itself is at fault — the `Result` wrapper exists
    /// for call-site compatibility with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        })
        .expect("no panics");
        assert_eq!(*total.lock().unwrap(), 10);
    }
}
