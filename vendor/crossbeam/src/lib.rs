//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! scoped threads and bounded MPMC channels. Since Rust 1.63 the standard
//! library provides `std::thread::scope`, so the thread shim is a thin
//! adapter that preserves the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| …); }).expect(…)` call shape
//! used by the Monte-Carlo sweeps; [`channel`] is a small
//! `Mutex<VecDeque>` + `Condvar` implementation of
//! `crossbeam_channel::bounded` with the same disconnect semantics.

#![forbid(unsafe_code)]

/// Scoped threads, adapted onto `std::thread::scope`.
pub mod thread {
    /// The error half of [`Result`]: a propagated panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; closures spawned through it may borrow the
    /// environment of the enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-environment threads can be
    /// spawned; joins them all before returning. Panics in spawned threads
    /// are propagated by `std::thread::scope`, so the result is always `Ok`
    /// unless the closure itself is at fault — the `Result` wrapper exists
    /// for call-site compatibility with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }
}

/// Bounded multi-producer multi-consumer channels with
/// `crossbeam_channel`'s disconnect semantics: a send fails once every
/// [`Receiver`] is dropped, a receive fails once every [`Sender`] is dropped
/// *and* the buffer has drained. Dropping all senders is therefore the
/// idiomatic shutdown signal for a consumer loop.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|p| p.into_inner())
        }
    }

    /// Error returned by [`Sender::send`]: every receiver disconnected.
    /// Carries the unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The buffer is at capacity; the message is returned.
        Full(T),
        /// Every receiver disconnected; the message is returned.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and every
    /// sender disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The buffer is currently empty (senders may still be connected).
        Empty,
        /// The buffer is empty and every sender disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The buffer is empty and every sender disconnected.
        Disconnected,
    }

    /// The producing half of a bounded channel. Clonable; the channel
    /// disconnects for receivers when the last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming half of a bounded channel. Clonable; the channel
    /// disconnects for senders when the last clone drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel with room for `cap` in-flight messages
    /// (`cap` is clamped to at least 1 — this stub has no zero-capacity
    /// rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered or every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Buffers the message if there is room, without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.buf.len() == st.cap {
                return Err(TrySendError::Full(msg));
            }
            st.buf.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().buf.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone and the
        /// buffer has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Pops a buffered message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(msg) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                st = guard;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().buf.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").field("len", &self.len()).finish()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver")
                .field("len", &self.len())
                .finish()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.lock();
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn fifo_order_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..1000 {
            assert_eq!(rx.recv(), Ok(i));
        }
        producer.join().expect("producer panicked");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_reports_full_at_capacity() {
        let (tx, rx) = channel::bounded::<u8>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
    }

    #[test]
    fn drop_all_senders_drains_then_disconnects() {
        let (tx, rx) = channel::bounded::<u8>(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx2);
        // Buffered message still delivered after full disconnect…
        assert_eq!(rx.recv(), Ok(2));
        // …then the disconnect surfaces.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drop_receiver_fails_send_with_message_back() {
        let (tx, rx) = channel::bounded::<String>(1);
        drop(rx);
        let err = tx.send("lost?".to_string()).unwrap_err();
        assert_eq!(err.0, "lost?");
        match tx.try_send("again".to_string()) {
            Err(TrySendError::Disconnected(m)) => assert_eq!(m, "again"),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn blocked_sender_wakes_when_room_appears() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert!(producer.join().expect("producer panicked").is_ok());
    }

    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        })
        .expect("no panics");
        assert_eq!(*total.lock().unwrap(), 10);
    }
}
