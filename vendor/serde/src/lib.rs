//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! The workspace only ever *derives* `Serialize` as a marker of
//! machine-readable result types — nothing serializes through serde's
//! data model (JSON artefacts are written by hand in `dbg-bench`). The
//! trait is therefore a marker with no required methods, and the derive
//! macro (re-exported from the local `serde_derive` stub) emits an empty
//! impl. Code written against this stub stays source-compatible with real
//! serde's `#[derive(Serialize)]` usage.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Marker trait for types whose values are serialisable result records.
pub trait Serialize {}

// Common scalar impls so generic bounds like `T: Serialize` stay usable.
macro_rules! impl_marker {
    ($($t:ty),*) => {$( impl Serialize for $t {} )*};
}
impl_marker!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
