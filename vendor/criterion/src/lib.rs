//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so this crate implements
//! the call surface of criterion's API (benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros) over a
//! simple steady-state timer: each benchmark doubles its iteration count
//! until the measured batch runs for at least
//! [`Criterion::MIN_BATCH_NANOS`], then reports mean wall time per
//! iteration on stdout as
//!
//! ```text
//! group/id                 time: 1234 ns/iter  (8192 iters)
//! ```
//!
//! That is deliberately simpler than criterion's bootstrap statistics, but
//! the numbers are stable enough to compare engine variants (see
//! `PERF.md`) and the output is greppable by scripts.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Types accepted where criterion takes `impl IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the final batch.
    pub(crate) ns_per_iter: f64,
    /// Iterations in the final batch.
    pub(crate) iters: u64,
}

impl Bencher {
    /// Times `f` in steadily growing batches until the batch is long enough
    /// to trust, recording the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up call (first-touch allocations, caches).
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let nanos = elapsed.as_nanos();
            if nanos >= Criterion::MIN_BATCH_NANOS || iters >= 1 << 22 {
                self.ns_per_iter = nanos as f64 / iters as f64;
                self.iters = iters;
                return;
            }
            iters *= 2;
        }
    }
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A measured batch must run at least this long (100 ms).
    pub const MIN_BATCH_NANOS: u128 = 100_000_000;

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes batches by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub reports ns/iter only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks `f` under `id`, passing it a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Units accepted by [`BenchmarkGroup::throughput`].
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    println!(
        "{label:<55} time: {:>12.1} ns/iter  ({} iters)",
        bencher.ns_per_iter, bencher.iters
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub_selftest");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
