//! Offline stand-in for an `arc-swap`-style publication cell: a writer
//! `publish`es refcounted values under a monotonically increasing epoch,
//! readers `load` the latest value wait-free on the common path. There is no
//! registry access in this build environment, so — per the `vendor/` policy —
//! this is a minimal, fully tested local implementation rather than a
//! dependency.
//!
//! Design (no `unsafe`): the cell keeps a small ring of `Mutex`-guarded
//! slots plus an `AtomicU64` epoch. `publish` takes a writer lock, writes
//! the new value into slot `epoch+1 mod N` and then stores the new epoch
//! with `Release` ordering; `load` reads the epoch with `Acquire` ordering
//! and locks only the one slot it hashes to. Because publication rotates
//! through `N` slots, a reader's slot lock is uncontended unless the writer
//! has lapped the whole ring since the reader read the epoch — and even
//! then the reader simply observes a *newer* value (epochs returned by
//! `load` never go backwards). Grace-period reclamation is by refcount:
//! a published value stays alive while any reader still holds its `Arc`,
//! and the slot ring itself keeps the most recent `N` publications alive.
//!
//! ATOMICS: single-writer epoch publication. The writer (serialised by
//! the writer mutex) is the only thread that stores the epoch: it reads
//! its own last value with Relaxed (no one else writes it) and publishes
//! the new one with Release after filling the slot; readers load the
//! epoch with Acquire, which orders the slot contents before their lock.
//! The test-only stop flag is likewise a single-writer Relaxed boolean.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of retained publications when none is specified. Readers that
/// loaded the epoch at most `DEFAULT_SLOTS - 1` publications ago find their
/// slot untouched.
pub const DEFAULT_SLOTS: usize = 8;

struct Slot<T> {
    epoch: u64,
    value: Option<Arc<T>>,
}

/// An atomic-epoch publication cell holding `Arc<T>` values.
///
/// Invariants:
/// - epochs start at 1 and increase by exactly 1 per [`publish`](Self::publish);
/// - `load().0` is monotone non-decreasing across calls that are ordered by
///   happens-before, and always ≥ the epoch of the value returned alongside
///   an earlier load on the same thread;
/// - the value returned by `load` was published at exactly the epoch
///   returned with it.
pub struct EpochCell<T> {
    epoch: AtomicU64,
    /// Serializes publishers so epoch assignment and slot writes agree.
    writer: Mutex<()>,
    slots: Box<[Mutex<Slot<T>>]>,
}

impl<T> EpochCell<T> {
    /// Creates a cell whose initial value is published at epoch 1, retaining
    /// [`DEFAULT_SLOTS`] recent publications.
    pub fn new(initial: Arc<T>) -> Self {
        Self::with_slots(initial, DEFAULT_SLOTS)
    }

    /// Creates a cell retaining `slots` recent publications (clamped to a
    /// minimum of 2). More slots keep older values alive longer but cost
    /// one `Option<Arc<T>>` each; contention is unaffected on the common
    /// path either way.
    pub fn with_slots(initial: Arc<T>, slots: usize) -> Self {
        let n = slots.max(2);
        let mut ring = Vec::with_capacity(n);
        for _ in 0..n {
            ring.push(Mutex::new(Slot {
                epoch: 0,
                value: None,
            }));
        }
        let cell = EpochCell {
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
            slots: ring.into_boxed_slice(),
        };
        cell.publish(initial);
        cell
    }

    fn slot(&self, epoch: u64) -> &Mutex<Slot<T>> {
        &self.slots[(epoch % self.slots.len() as u64) as usize]
    }

    /// Current epoch — a single `Acquire` load. Readers use this to detect
    /// staleness without touching any lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `value` as the newest generation and returns its epoch.
    /// Concurrent publishers are serialized; readers are never blocked by a
    /// publish (they lock a different slot unless the ring has wrapped).
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let _w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        {
            let mut slot = self.slot(next).lock().unwrap_or_else(|p| p.into_inner());
            slot.epoch = next;
            slot.value = Some(value);
        }
        // Release-publish: a reader that Acquire-loads `next` is guaranteed
        // to see the slot write above.
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// Loads the latest published value and the epoch it was published at.
    /// The returned epoch is ≥ the value of [`epoch`](Self::epoch) observed
    /// before the call; it can be newer if a publish raced in between.
    pub fn load(&self) -> (u64, Arc<T>) {
        loop {
            let seen = self.epoch.load(Ordering::Acquire);
            let slot = self.slot(seen).lock().unwrap_or_else(|p| p.into_inner());
            // The Release store ordering guarantees slot.epoch >= seen once
            // `seen` is visible; a larger slot epoch means the writer lapped
            // the ring and this slot now holds a newer generation, which is
            // fine to return. The `None`/stale retry arm is unreachable in
            // practice but keeps the loop obviously total.
            if slot.epoch >= seen {
                if let Some(value) = &slot.value {
                    return (slot.epoch, Arc::clone(value));
                }
            }
            drop(slot);
            std::hint::spin_loop();
        }
    }

    /// Convenience: latest value without its epoch (arc-swap's `load_full`).
    pub fn load_full(&self) -> Arc<T> {
        self.load().1
    }
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.epoch())
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::EpochCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn initial_value_is_epoch_one() {
        let cell = EpochCell::new(Arc::new(41usize));
        assert_eq!(cell.epoch(), 1);
        let (e, v) = cell.load();
        assert_eq!((e, *v), (1, 41));
        assert_eq!(*cell.load_full(), 41);
    }

    #[test]
    fn publish_increments_epoch_and_replaces_value() {
        let cell = EpochCell::new(Arc::new(0u64));
        for i in 1..=20u64 {
            let e = cell.publish(Arc::new(i));
            assert_eq!(e, i + 1);
            let (le, lv) = cell.load();
            assert_eq!((le, *lv), (i + 1, i));
        }
    }

    #[test]
    fn slot_ring_wraps_without_losing_latest() {
        // 2-slot ring republished far past its capacity: load always sees
        // the newest generation.
        let cell = EpochCell::with_slots(Arc::new(0u32), 2);
        for i in 1..=100u32 {
            cell.publish(Arc::new(i));
            assert_eq!(*cell.load().1, i);
        }
    }

    #[test]
    fn old_readers_keep_their_arc_alive() {
        let cell = EpochCell::new(Arc::new(vec![1u8, 2, 3]));
        let (_, old) = cell.load();
        for i in 0..32u8 {
            cell.publish(Arc::new(vec![i]));
        }
        // The ring no longer references the original value; the reader's
        // Arc still does (grace-period-by-refcount).
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load().1, vec![31]);
    }

    #[test]
    fn concurrent_loads_observe_monotone_coherent_epochs() {
        // Payload records the epoch it was published under; readers check
        // the pair is coherent and that epochs never run backwards.
        let cell = Arc::new(EpochCell::new(Arc::new(1u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                let mut observed = 0u64;
                // Check the stop flag only after each load so at least one
                // observation happens even if the writer finishes first
                // (single-core scheduling).
                loop {
                    let (e, v) = cell.load();
                    assert_eq!(e, *v, "value must match its publication epoch");
                    assert!(e >= last, "epoch went backwards: {last} -> {e}");
                    last = e;
                    observed += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                observed
            }));
        }
        for i in 2..=500u64 {
            let e = cell.publish(Arc::new(i));
            assert_eq!(e, i);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        assert_eq!(cell.epoch(), 500);
    }

    #[test]
    fn concurrent_publishers_allocate_distinct_epochs() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let mut writers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            writers.push(std::thread::spawn(move || {
                (0..250)
                    .map(|_| cell.publish(Arc::new(7)))
                    .collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = writers
            .into_iter()
            .flat_map(|w| w.join().expect("writer panicked"))
            .collect();
        all.sort_unstable();
        // 4 * 250 publishes after the initial epoch 1: exactly 2..=1001.
        assert_eq!(all, (2..=1001).collect::<Vec<u64>>());
        assert_eq!(cell.epoch(), 1001);
    }
}
