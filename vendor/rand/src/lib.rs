//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal, API-compatible subset: [`rngs::StdRng`]
//! (a SplitMix64 generator — deterministic given a seed, which is all the
//! reproduction needs), the [`Rng`]/[`SeedableRng`] traits with
//! `gen_range` over half-open integer ranges, and
//! [`seq::SliceRandom::partial_shuffle`]. The statistical quality of
//! SplitMix64 is more than adequate for the Monte-Carlo fault sweeps; the
//! streams differ from upstream `rand`, so seeds are comparable only
//! within this workspace.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, far below anything the experiments can observe.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a boolean that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic, full 64-bit state, passes BigCrush as a component of
    /// xoshiro; entirely sufficient for seeded Monte-Carlo experiments.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the first `amount` positions into a uniform random
        /// sample of the slice (Fisher–Yates prefix); returns the shuffled
        /// prefix and the remainder.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Fully shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            for i in 0..amount {
                let j = rng.gen_range(i..len);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            let len = self.len();
            self.partial_shuffle(rng, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let u: u64 = rng.gen_range(0..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn partial_shuffle_is_a_permutation_prefix() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(prefix.len(), 10);
        assert_eq!(rest.len(), 90);
        let mut all: Vec<usize> = prefix.iter().chain(rest.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
