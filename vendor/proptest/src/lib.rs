//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #[test] fn prop(pat in strategy, …) { … } }`
//! macro shape, integer-range and tuple strategies, `any::<T>()`, `Just`,
//! `prop_oneof!`, and the `prop_assert*`/`prop_assume!` macros. Sampling is
//! driven by a deterministic per-test generator (seeded from the test
//! name), so failures reproduce exactly; there is **no shrinking** — a
//! failing case panics with the case number so it can be replayed by
//! running the same test again.

#![forbid(unsafe_code)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }

    /// A uniform choice among boxed strategies of a common value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        branches: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if no branch is given.
        pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.branches.len() as u64) as usize;
            self.branches[idx].sample(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The strategy of arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Test-runner plumbing: configuration and the deterministic generator.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(…)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label for a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Everything a property-test file needs, re-exported flat.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled executions of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform random choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($branch)),+])
    };
}

/// Asserts a property-level condition (panics — no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u32)> {
        prop_oneof![(2u64..=2, 3u32..=5), (3u64..=4, 2u32..=3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds; tuples compose.
        #[test]
        fn ranges_in_bounds((d, n) in pair(), x in 0usize..10, raw in any::<u64>()) {
            prop_assert!((2..=4).contains(&d));
            prop_assert!((2..=5).contains(&n));
            prop_assert!(x < 10);
            prop_assume!(raw != 1);
            prop_assert_ne!(raw, 1);
        }

        /// Just yields its value.
        #[test]
        fn just_yields(v in Just(17u64)) {
            prop_assert_eq!(v, 17);
        }

        /// prop_map transforms samples and composes with other strategies.
        #[test]
        fn prop_map_transforms(v in (0u64..10).prop_map(|x| 2 * x + 1), w in (1usize..4).prop_map(|k| vec![0u8; k])) {
            prop_assert!(v % 2 == 1 && v < 20);
            prop_assert!((1..4).contains(&w.len()));
        }
    }
}
