//! Offline stub of `serde_derive`: `#[derive(Serialize)]` emits an empty
//! impl of the marker trait `serde::Serialize` (see the vendored `serde`
//! stub). Handles plain (non-generic) structs and enums, which is all the
//! workspace derives on. Written against `proc_macro` alone so it builds
//! with no registry access.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker impl for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Serialize): could not find type name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the identifier following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}
