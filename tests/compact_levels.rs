//! Differential suite for the compact-level engine (PR 10): the one-byte
//! `LevelVec` storage behind every level array must be bit-for-bit
//! invisible. Exhaustive ≤2-fault sweeps on B(2,5) and B(3,3) pin the
//! published broadcast levels against a scalar BFS oracle and pin the
//! incremental (delta-pass) path against from-scratch resets at rebuild
//! shard counts 1, 2 and 5; a B(2,14) property test crosses the
//! sparse↔dense switch; and a warmed-up maintainer must absorb further
//! churn through the skip-scan delta path without allocating.

use std::collections::VecDeque;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use debruijn_rings::core::{Ffc, RingMaintainer, SnapshotPublisher};

/// Scalar broadcast-level oracle: BFS from `root` over the members along
/// forward de Bruijn edges `u -> (u mod d^(n-1))·d + a`.
fn oracle_levels(d: usize, total: usize, member: &[bool], root: usize) -> Vec<Option<u32>> {
    let suffix = total / d;
    let mut lv = vec![None; total];
    if !member[root] {
        return lv;
    }
    lv[root] = Some(0u32);
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        let l = lv[u].expect("queued nodes are levelled");
        for a in 0..d {
            let v = (u % suffix) * d + a;
            if member[v] && lv[v].is_none() {
                lv[v] = Some(l + 1);
                q.push_back(v);
            }
        }
    }
    lv
}

/// Every fault set of size ≤ 2.
fn fault_sets(total: usize) -> Vec<Vec<usize>> {
    let mut sets = vec![Vec::new()];
    for a in 0..total {
        sets.push(vec![a]);
        for b in a + 1..total {
            sets.push(vec![a, b]);
        }
    }
    sets
}

#[test]
fn exhaustive_two_fault_broadcast_levels_match_the_scalar_oracle() {
    for &(d, n) in &[(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        for shards in [1usize, 2, 5] {
            let mut maint = RingMaintainer::with_shards(shards);
            let mut publisher = SnapshotPublisher::new();
            for faults in fault_sets(total) {
                maint.reset(&ffc, &faults).expect("in-range");
                let snap = maint.publish(&mut publisher, 0).expect("publish");
                match snap.root() {
                    Some(root) => {
                        let member: Vec<bool> = (0..total)
                            .map(|v| snap.contains(v).expect("in range"))
                            .collect();
                        let want = oracle_levels(d as usize, total, &member, root);
                        for (v, want_v) in want.iter().enumerate() {
                            assert_eq!(
                                snap.broadcast_level(v).expect("in range"),
                                *want_v,
                                "d={d} n={n} shards={shards} faults={faults:?} node {v}"
                            );
                        }
                    }
                    None => {
                        for v in 0..total {
                            assert_eq!(
                                snap.broadcast_level(v).expect("in range"),
                                None,
                                "infeasible levels d={d} faults={faults:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn exhaustive_two_fault_incremental_levels_match_from_scratch() {
    for &(d, n) in &[(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        for shards in [1usize, 2, 5] {
            let mut inc = RingMaintainer::with_shards(shards);
            let mut fresh = RingMaintainer::with_shards(shards);
            let mut pub_inc = SnapshotPublisher::new();
            let mut pub_fresh = SnapshotPublisher::new();
            for faults in fault_sets(total) {
                // The incremental maintainer reaches the fault set through
                // the delta passes (one add_fault at a time from empty);
                // the fresh one rebuilds it from scratch.
                inc.reset(&ffc, &[]).expect("in-range");
                for &v in &faults {
                    inc.add_fault(&ffc, v).expect("in-range");
                }
                fresh.reset(&ffc, &faults).expect("in-range");
                assert_eq!(inc.stats(), fresh.stats(), "stats faults={faults:?}");
                let a = inc
                    .publish(&mut pub_inc, faults.len() as u64)
                    .expect("publish");
                let b = fresh.publish(&mut pub_fresh, 0).expect("publish");
                for v in 0..total {
                    assert_eq!(
                        a.broadcast_level(v).expect("in range"),
                        b.broadcast_level(v).expect("in range"),
                        "d={d} shards={shards} faults={faults:?} node {v}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// B(2,14) is dense-capable: random fault batches walk the maintainer
    /// across the sparse↔dense frontier switch, and the published levels
    /// must match the scalar oracle after every batch.
    #[test]
    fn b2_14_levels_match_oracle_across_the_density_switch(
        seed in any::<u64>(),
        batches in 4usize..9,
    ) {
        let ffc = Ffc::new(2, 14);
        let total = ffc.graph().len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maint = RingMaintainer::new();
        let mut publisher = SnapshotPublisher::new();
        let mut faults: Vec<usize> = Vec::new();
        maint.reset(&ffc, &faults).expect("in-range");
        for step in 0..batches {
            for _ in 0..rng.gen_range(1..5) {
                let clear = !faults.is_empty() && rng.gen_range(0..3) == 0;
                if clear {
                    let i = rng.gen_range(0..faults.len());
                    let v = faults.swap_remove(i);
                    maint.clear_fault(&ffc, v).expect("in-range");
                } else {
                    let v = rng.gen_range(0..total);
                    if !faults.contains(&v) {
                        faults.push(v);
                    }
                    maint.add_fault(&ffc, v).expect("in-range");
                }
            }
            let snap = maint.publish(&mut publisher, step as u64).expect("publish");
            let root = snap.root().expect("≤ a few faults keeps B(2,14) feasible");
            let member: Vec<bool> = (0..total)
                .map(|v| snap.contains(v).expect("in range"))
                .collect();
            let want = oracle_levels(2, total, &member, root);
            for (v, want_v) in want.iter().enumerate() {
                prop_assert_eq!(
                    snap.broadcast_level(v).expect("in range"),
                    *want_v,
                    "step {} node {}", step, v
                );
            }
        }
    }
}

#[test]
fn warmed_up_maintainer_absorbs_churn_without_allocating() {
    let ffc = Ffc::new(2, 12);
    let total = ffc.graph().len();
    let mut maint = RingMaintainer::new();
    let mut publisher = SnapshotPublisher::new();
    maint.reset(&ffc, &[]).expect("in-range");
    // Warm-up: enough add/clear/publish cycles to size every buffer —
    // including the snapshot publisher's pools and the delta scratch.
    let churn: Vec<usize> = (0..12).map(|i| (i * 241 + 7) % total).collect();
    for round in 0..3u64 {
        for &v in &churn {
            maint.add_fault(&ffc, v).expect("in-range");
        }
        maint.publish(&mut publisher, round).expect("publish");
        for &v in &churn {
            maint.clear_fault(&ffc, v).expect("in-range");
        }
        maint.publish(&mut publisher, round).expect("publish");
    }
    let level_bytes = maint.level_bytes();
    // One byte per node per level array (plus the empty-in-steady-state
    // overflow reserve): the compact arrays must beat the 3 × 4 × total
    // bytes of the u32 storage they replaced by at least 3×.
    assert!(
        level_bytes * 3 <= 3 * 4 * total,
        "compact level arrays must be ≥3× smaller: {level_bytes} bytes for {total} nodes"
    );
    let bytes = maint.allocated_bytes();
    assert!(bytes > 0);
    // Steady state: the same churn pattern (skip-scan delta path and
    // publications included) must not grow any buffer.
    for round in 0..2u64 {
        for &v in &churn {
            maint.add_fault(&ffc, v).expect("in-range");
        }
        maint.publish(&mut publisher, round).expect("publish");
        for &v in &churn {
            maint.clear_fault(&ffc, v).expect("in-range");
        }
        maint.publish(&mut publisher, round).expect("publish");
    }
    assert_eq!(
        maint.allocated_bytes(),
        bytes,
        "steady-state churn must not allocate"
    );
}
