//! Property tests for the incremental fault-update engine on B(2,14):
//! random mixes of `add_fault`/`clear_fault` events — including
//! root-necklace kills that force rebuild fallbacks — must leave the
//! `RingMaintainer` with stats identical to a from-scratch
//! `embed_stats_into` of the accumulated fault set after **every** event,
//! and with ring bytes identical to `embed_into` at checkpoints, at
//! rebuild shard counts 1, 2 and 5.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use debruijn_rings::core::{EmbedScratch, FaultEvent, Ffc, RingMaintainer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn maintainer_matches_from_scratch_on_b2_14(
        seed in any::<u64>(),
        shards_idx in 0usize..3,
        events in 10usize..24,
    ) {
        let shards = [1usize, 2, 5][shards_idx];
        let ffc = Ffc::new(2, 14);
        let total = ffc.graph().len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maint = RingMaintainer::with_shards(shards);
        let mut scratch = EmbedScratch::new();
        let mut ring = Vec::new();
        let mut faults: Vec<usize> = Vec::new();
        maint.reset(&ffc, &faults).expect("in-range");
        for step in 0..events {
            // Mostly adds, some clears; occasionally aim near the root's
            // necklace (powers of two) to force the rebuild fallback.
            let clear = !faults.is_empty() && rng.gen_range(0..3) == 0;
            if clear {
                let i = rng.gen_range(0..faults.len());
                let v = faults.swap_remove(i);
                maint.clear_fault(&ffc, v).expect("in-range");
            } else {
                let v = if rng.gen_range(0..8) == 0 {
                    1usize << rng.gen_range(0..14)
                } else {
                    rng.gen_range(0..total)
                };
                if !faults.contains(&v) {
                    faults.push(v);
                }
                maint.add_fault(&ffc, v).expect("in-range");
            }
            let want = ffc.embed_stats_into(&mut scratch, &faults);
            prop_assert_eq!(
                maint.stats(), want,
                "stats diverge at step {} (shards={}, faults={:?})", step, shards, &faults
            );
            // Ring bytes at checkpoints (the walk is O(|B*|), so not every
            // step).
            if step % 7 == 0 || step + 1 == events {
                let full = ffc.embed_into(&mut scratch, &faults);
                prop_assert_eq!(maint.stats(), full, "full stats at step {}", step);
                maint.ring_into(&mut ring);
                prop_assert_eq!(
                    &ring[..], scratch.cycle(),
                    "ring bytes diverge at step {} (shards={})", step, shards
                );
            }
        }
        // The walk must have exercised the delta path, not only rebuilds.
        prop_assert!(maint.repairs().incremental > 0);
    }

    /// Batched churn: random mixed batches of node add/clear and edge
    /// fault/repair events through `apply_batch`, checked after every
    /// batch against a from-scratch `embed_stats_into` of the modelled
    /// exclusion set (node faults plus edge-fault sources), with ring
    /// bytes at checkpoints — at rebuild shard counts 1, 2 and 5.
    #[test]
    fn batched_mixed_events_match_from_scratch_on_b2_14(
        seed in any::<u64>(),
        shards_idx in 0usize..3,
        batches in 6usize..14,
    ) {
        let shards = [1usize, 2, 5][shards_idx];
        let ffc = Ffc::new(2, 14);
        let d = 2usize;
        let n = 14u32;
        let total = ffc.graph().len();
        let suffix = total / d;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maint = RingMaintainer::with_shards(shards);
        let mut scratch = EmbedScratch::new();
        let mut ring = Vec::new();
        maint.reset(&ffc, &[]).expect("in-range");
        // The model the maintainer must agree with: explicit node faults
        // plus the set of faulted directed edges (u, w). A node is
        // excluded iff it is node-faulty or sources a faulted edge.
        let mut node_down: Vec<usize> = Vec::new();
        let mut edges_down: Vec<(usize, usize)> = Vec::new();
        for step in 0..batches {
            let k = rng.gen_range(1..6);
            let mut batch = Vec::with_capacity(k);
            for _ in 0..k {
                let roll = rng.gen_range(0..10);
                let ev = if roll < 4 {
                    let v = if rng.gen_range(0..8) == 0 {
                        1usize << rng.gen_range(0..n)
                    } else {
                        rng.gen_range(0..total)
                    };
                    if !node_down.contains(&v) {
                        node_down.push(v);
                    }
                    FaultEvent::NodeDown(v)
                } else if roll < 6 && !node_down.is_empty() {
                    let i = rng.gen_range(0..node_down.len());
                    FaultEvent::NodeUp(node_down.swap_remove(i))
                } else if roll < 9 || edges_down.is_empty() {
                    let u = rng.gen_range(0..total);
                    let w = (u % suffix) * d + rng.gen_range(0..d);
                    if !edges_down.contains(&(u, w)) {
                        edges_down.push((u, w));
                    }
                    FaultEvent::EdgeDown(u, w)
                } else {
                    let i = rng.gen_range(0..edges_down.len());
                    let (u, w) = edges_down.swap_remove(i);
                    FaultEvent::EdgeUp(u, w)
                };
                batch.push(ev);
            }
            maint.apply_batch(&ffc, &batch).expect("generated events are valid");
            let mut faults: Vec<usize> = node_down.clone();
            faults.extend(edges_down.iter().map(|&(u, _)| u));
            faults.sort_unstable();
            faults.dedup();
            let want = ffc.embed_stats_into(&mut scratch, &faults);
            prop_assert_eq!(
                maint.stats(), want,
                "stats diverge at batch {} (shards={}, batch={:?})", step, shards, &batch
            );
            if step % 5 == 0 || step + 1 == batches {
                let full = ffc.embed_into(&mut scratch, &faults);
                prop_assert_eq!(maint.stats(), full, "full stats at batch {}", step);
                maint.ring_into(&mut ring);
                prop_assert_eq!(
                    &ring[..], scratch.cycle(),
                    "ring bytes diverge at batch {} (shards={})", step, shards
                );
            }
        }
    }
}
