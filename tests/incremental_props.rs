//! Property tests for the incremental fault-update engine on B(2,14):
//! random mixes of `add_fault`/`clear_fault` events — including
//! root-necklace kills that force rebuild fallbacks — must leave the
//! `RingMaintainer` with stats identical to a from-scratch
//! `embed_stats_into` of the accumulated fault set after **every** event,
//! and with ring bytes identical to `embed_into` at checkpoints, at
//! rebuild shard counts 1, 2 and 5.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use debruijn_rings::core::{EmbedScratch, Ffc, RingMaintainer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn maintainer_matches_from_scratch_on_b2_14(
        seed in any::<u64>(),
        shards_idx in 0usize..3,
        events in 10usize..24,
    ) {
        let shards = [1usize, 2, 5][shards_idx];
        let ffc = Ffc::new(2, 14);
        let total = ffc.graph().len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maint = RingMaintainer::with_shards(shards);
        let mut scratch = EmbedScratch::new();
        let mut ring = Vec::new();
        let mut faults: Vec<usize> = Vec::new();
        maint.reset(&ffc, &faults);
        for step in 0..events {
            // Mostly adds, some clears; occasionally aim near the root's
            // necklace (powers of two) to force the rebuild fallback.
            let clear = !faults.is_empty() && rng.gen_range(0..3) == 0;
            if clear {
                let i = rng.gen_range(0..faults.len());
                let v = faults.swap_remove(i);
                maint.clear_fault(&ffc, v);
            } else {
                let v = if rng.gen_range(0..8) == 0 {
                    1usize << rng.gen_range(0..14)
                } else {
                    rng.gen_range(0..total)
                };
                if !faults.contains(&v) {
                    faults.push(v);
                }
                maint.add_fault(&ffc, v);
            }
            let want = ffc.embed_stats_into(&mut scratch, &faults);
            prop_assert_eq!(
                maint.stats(), want,
                "stats diverge at step {} (shards={}, faults={:?})", step, shards, &faults
            );
            // Ring bytes at checkpoints (the walk is O(|B*|), so not every
            // step).
            if step % 7 == 0 || step + 1 == events {
                let full = ffc.embed_into(&mut scratch, &faults);
                prop_assert_eq!(maint.stats(), full, "full stats at step {}", step);
                maint.ring_into(&mut ring);
                prop_assert_eq!(
                    &ring[..], scratch.cycle(),
                    "ring bytes diverge at step {} (shards={})", step, shards
                );
            }
        }
        // The walk must have exercised the delta path, not only rebuilds.
        prop_assert!(maint.repairs().incremental > 0);
    }
}
