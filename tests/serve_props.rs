//! Linearizability of the ring service's published snapshots.
//!
//! The contract under test (the PR 7 serving model): every snapshot a
//! reader can ever observe is **bit-identical** to a from-scratch
//! `Ffc::embed_into` of the exclusion set of some *prefix* of the applied
//! event sequence — no torn state, no intermediate mixtures — and the
//! epochs observed by any one reader handle are monotone. Exhaustive on
//! B(2,5)/B(3,3) (every ≤2-node fault set, plus link-fault sequences,
//! with a publication after every event), threaded stress on the live
//! service, and property tests on B(2,14).
//!
//! ATOMICS: the stress test's stop flag is a single-writer boolean — the
//! driver thread alone stores it, reader threads poll it with Relaxed;
//! all checked state flows through the epoch-published snapshots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use debruijn_rings::core::{
    EmbedScratch, FaultEvent, Ffc, LookupError, RingMaintainer, RingService, RingSnapshot,
    ServeOptions, SnapshotPublisher,
};

/// The exclusion set a prefix of events accumulates to: explicitly faulty
/// nodes plus the source endpoints of faulty links — the same model the
/// session maintains (and PR 6's batch tests pinned).
fn exclusion_of(events: &[FaultEvent]) -> Vec<usize> {
    let mut node_down: Vec<usize> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for &ev in events {
        match ev {
            FaultEvent::NodeDown(v) => {
                if !node_down.contains(&v) {
                    node_down.push(v);
                }
            }
            FaultEvent::NodeUp(v) => {
                if let Some(i) = node_down.iter().position(|&x| x == v) {
                    node_down.swap_remove(i);
                }
            }
            FaultEvent::EdgeDown(u, w) => {
                if !edges.contains(&(u, w)) {
                    edges.push((u, w));
                }
            }
            FaultEvent::EdgeUp(u, w) => {
                if let Some(i) = edges.iter().position(|&e| e == (u, w)) {
                    edges.swap_remove(i);
                }
            }
        }
    }
    let mut excl = node_down;
    excl.extend(edges.iter().map(|&(u, _)| u));
    excl.sort_unstable();
    excl.dedup();
    excl
}

/// Asserts `snap` equals a from-scratch embed of the event prefix its
/// `applied_events` stamp names: stats, full ring bytes, and the
/// membership bitmap (popcount + every ring node contained).
fn assert_snapshot_matches_prefix(
    ffc: &Ffc,
    scratch: &mut EmbedScratch,
    snap: &RingSnapshot,
    events: &[FaultEvent],
) {
    let k = snap.applied_events() as usize;
    assert!(
        k <= events.len(),
        "snapshot claims more events than were ever submitted"
    );
    let excl = exclusion_of(&events[..k]);
    let want = ffc.embed_into(scratch, &excl);
    assert_eq!(
        snap.stats(),
        want,
        "snapshot stats diverge from prefix {k} (excl {excl:?})"
    );
    let mut ring = Vec::new();
    snap.ring_into(&mut ring);
    assert_eq!(
        &ring[..],
        scratch.cycle(),
        "snapshot ring bytes diverge from prefix {k}"
    );
    let mut members = 0usize;
    for v in 0..snap.n_nodes() {
        members += usize::from(snap.contains(v).expect("in range"));
    }
    assert_eq!(members, want.component_size, "membership popcount diverges");
    for &v in &ring {
        assert_eq!(snap.contains(v), Ok(true));
        assert!(snap.successor(v).is_ok());
    }
}

/// Exhaustive deterministic check: every ≤2-node fault set of the graph,
/// played as down/down/up/up, with a **publication after every event** —
/// each published generation must equal the from-scratch embed of its
/// prefix, and clean republications must share structures.
fn exhaustive_prefix_equality(d: u64, n: u32) {
    let ffc = Ffc::new(d, n);
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut sequences: Vec<Vec<FaultEvent>> = Vec::new();
    for a in 0..total {
        sequences.push(vec![FaultEvent::NodeDown(a), FaultEvent::NodeUp(a)]);
        for b in a + 1..total {
            sequences.push(vec![
                FaultEvent::NodeDown(a),
                FaultEvent::NodeDown(b),
                FaultEvent::NodeUp(a),
                FaultEvent::NodeUp(b),
            ]);
        }
    }
    // Link faults: every edge leaving a stride of sources, mixed with a
    // node fault so edge and node repairs interleave in one sequence.
    let suffix = total / d as usize;
    for u in (0..total).step_by(3) {
        for a in 0..d as usize {
            let w = (u % suffix) * d as usize + a;
            let x = (u + 1) % total;
            sequences.push(vec![
                FaultEvent::EdgeDown(u, w),
                FaultEvent::NodeDown(x),
                FaultEvent::EdgeUp(u, w),
                FaultEvent::NodeUp(x),
            ]);
        }
    }
    for events in &sequences {
        let mut maint = RingMaintainer::new();
        maint.reset(&ffc, &[]).expect("reset");
        let mut publisher = SnapshotPublisher::new();
        let initial = maint.publish(&mut publisher, 0).expect("publish");
        assert_snapshot_matches_prefix(&ffc, &mut scratch, &initial, events);
        let mut prev = initial;
        for (i, &ev) in events.iter().enumerate() {
            maint.apply_batch(&ffc, &[ev]).expect("valid event");
            let snap = maint
                .publish(&mut publisher, (i + 1) as u64)
                .expect("publish");
            assert_snapshot_matches_prefix(&ffc, &mut scratch, &snap, events);
            assert!(snap.seq() > prev.seq(), "publication seq must increase");
            prev = snap;
        }
        // After the balanced sequence the fault set is empty again and a
        // clean republication shares every structure by refcount.
        let shared_before = publisher.shared_ring();
        let last = maint
            .publish(&mut publisher, events.len() as u64)
            .expect("publish");
        assert_eq!(publisher.shared_ring(), shared_before + 1);
        assert_snapshot_matches_prefix(&ffc, &mut scratch, &last, events);
    }
}

#[test]
fn exhaustive_prefix_equality_b2_5() {
    exhaustive_prefix_equality(2, 5);
}

#[test]
fn exhaustive_prefix_equality_b3_3() {
    exhaustive_prefix_equality(3, 3);
}

/// A seeded balanced event stream touching every node of the graph:
/// mostly downs early, the matching ups later, with some link faults.
fn seeded_stream(d: usize, total: usize, seed: u64, len: usize) -> Vec<FaultEvent> {
    let suffix = total / d;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut down: Vec<usize> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0..10);
        let ev = if roll < 4 {
            let v = rng.gen_range(0..total);
            if !down.contains(&v) {
                down.push(v);
            }
            FaultEvent::NodeDown(v)
        } else if roll < 7 && !down.is_empty() {
            let i = rng.gen_range(0..down.len());
            FaultEvent::NodeUp(down.swap_remove(i))
        } else if roll < 9 || edges.is_empty() {
            let u = rng.gen_range(0..total);
            let w = (u % suffix) * d + rng.gen_range(0..d);
            if !edges.contains(&(u, w)) {
                edges.push((u, w));
            }
            FaultEvent::EdgeDown(u, w)
        } else {
            let i = rng.gen_range(0..edges.len());
            let (u, w) = edges.swap_remove(i);
            FaultEvent::EdgeUp(u, w)
        };
        events.push(ev);
    }
    // Balance the tail so the final state is fault-free.
    for v in down {
        events.push(FaultEvent::NodeUp(v));
    }
    for (u, w) in edges {
        events.push(FaultEvent::EdgeUp(u, w));
    }
    events
}

/// Runs `readers` concurrent reader threads against a live service while
/// the stream is submitted, and returns every distinct snapshot each
/// reader observed (epoch monotonicity asserted inside the readers).
fn stress_service(
    ffc: &Arc<Ffc>,
    events: &[FaultEvent],
    readers: usize,
    opts: ServeOptions,
) -> (Vec<Vec<Arc<RingSnapshot>>>, u64) {
    let svc = RingService::start(Arc::clone(ffc), &[], opts).expect("start");
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..readers {
        let mut reader = svc.reader();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut seen: Vec<Arc<RingSnapshot>> = Vec::new();
            let mut last_epoch = 0u64;
            let mut last_applied = 0u64;
            let mut buf = Vec::new();
            loop {
                let snap = reader.snapshot();
                assert!(
                    reader.epoch() >= last_epoch,
                    "epoch went backwards: {last_epoch} -> {}",
                    reader.epoch()
                );
                last_epoch = reader.epoch();
                assert!(
                    snap.applied_events() >= last_applied,
                    "applied_events went backwards"
                );
                last_applied = snap.applied_events();
                // Wait-free reads against the snapshot stay mutually
                // consistent while the writer races ahead.
                if let Some(root) = snap.root() {
                    let wrote = snap.ring_segment(root, 8, &mut buf).expect("root on ring");
                    assert!(wrote > 0);
                    for &v in &buf {
                        assert_eq!(snap.contains(v), Ok(true));
                    }
                }
                if seen.last().is_none_or(|p| p.seq() != snap.seq()) {
                    seen.push(snap);
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::yield_now();
            }
            seen
        }));
    }
    for &ev in events {
        svc.submit(ev).expect("valid event");
    }
    let report = svc.shutdown();
    stop.store(true, Ordering::Relaxed);
    assert_eq!(
        report.events,
        events.len() as u64,
        "writer drained the queue"
    );
    let captured = handles
        .into_iter()
        .map(|h| h.join().expect("reader panicked"))
        .collect();
    (captured, report.batches)
}

fn threaded_stress(d: u64, n: u32, seed: u64) {
    let ffc = Arc::new(Ffc::new(d, n));
    let events = seeded_stream(d as usize, ffc.graph().len(), seed, 80);
    // coalesce=1 maximises distinct generations readers can catch.
    let opts = ServeOptions {
        coalesce: 1,
        ..ServeOptions::default()
    };
    let (captured, _) = stress_service(&ffc, &events, 3, opts);
    let mut scratch = EmbedScratch::new();
    let mut verified = std::collections::BTreeSet::new();
    for reader_snaps in &captured {
        assert!(!reader_snaps.is_empty());
        for snap in reader_snaps {
            if verified.insert(snap.seq()) {
                assert_snapshot_matches_prefix(&ffc, &mut scratch, snap, &events);
            }
        }
    }
    // Every reader saw at least the one generation it started from, and
    // the final generation is the fault-free ring (balanced stream).
    let last = captured[0].last().expect("nonempty");
    assert_eq!(last.applied_events(), events.len() as u64);
    assert!(last.outcome().is_repaired());
}

#[test]
fn threaded_readers_observe_only_event_prefixes_b2_5() {
    threaded_stress(2, 5, 0xB25);
}

#[test]
fn threaded_readers_observe_only_event_prefixes_b3_3() {
    threaded_stress(3, 3, 0xB33);
}

#[test]
fn reader_handle_rejections_are_typed_at_the_service_level() {
    let ffc = Arc::new(Ffc::new(2, 5));
    let n = ffc.graph().len();
    let svc = RingService::start(Arc::clone(&ffc), &[3], ServeOptions::default()).expect("start");
    let mut reader = svc.reader();
    assert_eq!(
        reader.successor(n + 9),
        Err(LookupError::NodeOutOfRange {
            node: n + 9,
            n_nodes: n
        })
    );
    assert_eq!(
        reader.contains(n),
        Err(LookupError::NodeOutOfRange {
            node: n,
            n_nodes: n
        })
    );
    // Node 3 started faulty: valid id, not on the ring.
    assert_eq!(reader.successor(3), Err(LookupError::NotOnRing { node: 3 }));
    assert_eq!(reader.contains(3), Ok(false));
    let _ = svc.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// B(2,14): a seeded stream through a live service with 2 reader
    /// threads and random coalescing; every distinct observed snapshot
    /// must equal the from-scratch embed of its event prefix.
    #[test]
    fn service_snapshots_match_prefixes_on_b2_14(
        seed in any::<u64>(),
        coalesce_idx in 0usize..3,
        len in 12usize..28,
    ) {
        let coalesce = [1usize, 2, 7][coalesce_idx];
        let ffc = Arc::new(Ffc::new(2, 14));
        let events = seeded_stream(2, ffc.graph().len(), seed, len);
        let opts = ServeOptions { coalesce, ..ServeOptions::default() };
        let (captured, batches) = stress_service(&ffc, &events, 2, opts);
        prop_assert!(batches >= (events.len() as u64).div_ceil(64));
        let mut scratch = EmbedScratch::new();
        let mut verified = std::collections::BTreeSet::new();
        for reader_snaps in &captured {
            for snap in reader_snaps {
                if verified.insert(snap.seq()) {
                    assert_snapshot_matches_prefix(&ffc, &mut scratch, snap, &events);
                }
            }
        }
        let last = captured[0].last().expect("nonempty");
        prop_assert_eq!(last.applied_events(), events.len() as u64);
        prop_assert!(last.outcome().is_repaired());
    }
}
