//! Property-based tests (proptest) for the core invariants of the
//! reproduction. Each property is phrased over randomly drawn parameters and
//! fault patterns, and every failure shrinks to a minimal counterexample.

use proptest::prelude::*;

use debruijn_rings::core::verify;
use debruijn_rings::prelude::*;

/// Strategy for a small (d, n) pair with d^n bounded, so each case stays fast.
fn small_debruijn() -> impl Strategy<Value = (u64, u32)> {
    prop_oneof![
        (2u64..=2, 3u32..=9),
        (3u64..=3, 2u32..=5),
        (4u64..=4, 2u32..=4),
        (5u64..=5, 2u32..=3),
        (6u64..=7, 2u32..=3),
        (8u64..=9, 2u32..=2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Words: rotation is a bijection of period dividing n, and the
    /// canonical rotation is a fixed representative of the orbit.
    #[test]
    fn word_rotation_properties((d, n) in small_debruijn(), raw in any::<u64>()) {
        let space = WordSpace::new(d, n);
        let code = raw % space.count();
        let rotated = space.rotate_left_by(code, n);
        prop_assert_eq!(rotated, code);
        let canon = space.canonical_rotation(code);
        prop_assert!(canon <= code);
        prop_assert_eq!(space.canonical_rotation(space.rotate_left(code)), canon);
        prop_assert_eq!(u64::from(n) % u64::from(space.period(code)), 0);
    }

    /// The FFC embedding always returns a simple fault-free cycle whose
    /// length equals the surviving component, and meets the d^n − n·f bound
    /// whenever f ≤ d − 2.
    #[test]
    fn ffc_cycle_is_always_valid((d, n) in small_debruijn(), seed in any::<u64>(), faults in 0usize..6) {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let fault_nodes: Vec<usize> = (0..faults)
            .map(|i| ((seed >> (i * 7)) as usize).wrapping_mul(2654435761) % total)
            .collect();
        // Keep the root's necklace alive so `embed` never panics on an empty graph.
        let outcome = ffc.embed(&fault_nodes);
        prop_assert_eq!(outcome.cycle.len(), outcome.component_size);
        if outcome.cycle.len() > 1 {
            prop_assert!(verify::is_debruijn_ring(d, n, &outcome.cycle));
        }
        let partition = ffc.partition();
        for &v in &outcome.cycle {
            for &f in &fault_nodes {
                prop_assert!(!partition.same_necklace(v as u64, f as u64));
            }
        }
        if fault_nodes.len() <= (d.saturating_sub(2)) as usize {
            prop_assert!(outcome.cycle.len() >= FfcOutcome::guarantee(d, n, fault_nodes.len()));
            prop_assert!(outcome.eccentricity <= 2 * n as usize);
        }
    }

    /// The necklace partition really partitions: sizes sum to d^n, members
    /// map back to their necklace, and the counting formula agrees.
    #[test]
    fn necklace_partition_is_a_partition((d, n) in small_debruijn()) {
        let space = WordSpace::new(d, n);
        let partition = NecklacePartition::new(space);
        let sum: usize = partition.necklaces().iter().map(|x| x.len()).sum();
        prop_assert_eq!(sum as u64, space.count());
        prop_assert_eq!(
            debruijn_rings::necklace::count_necklaces_total(d, u64::from(n)),
            partition.len() as u128
        );
    }

    /// Finite-field sanity over random element pairs: field axioms that the
    /// table-driven implementation must satisfy.
    #[test]
    fn field_arithmetic_properties(q in prop_oneof![Just(4u64), Just(5), Just(7), Just(8), Just(9), Just(16), Just(25), Just(27)], a in any::<u64>(), b in any::<u64>()) {
        let field = GField::new(q);
        let a = a % q;
        let b = b % q;
        prop_assert_eq!(field.add(a, b), field.add(b, a));
        prop_assert_eq!(field.mul(a, b), field.mul(b, a));
        prop_assert_eq!(field.sub(field.add(a, b), b), a);
        if b != 0 {
            prop_assert_eq!(field.mul(field.div(a, b), b), a);
        }
        prop_assert_eq!(field.mul(a, field.add(b, 1)), field.add(field.mul(a, b), a));
    }

    /// Every cycle of the disjoint family is Hamiltonian and the family is
    /// pairwise edge-disjoint, with exactly ψ(d) members.
    #[test]
    fn disjoint_family_properties(d in prop_oneof![Just(4u64), Just(5), Just(6), Just(7), Just(8), Just(9), Just(10)], n in 2u32..=3) {
        prop_assume!(dbg_pow(d, n) <= 1024);
        let family = DisjointHamiltonianCycles::construct(d, n);
        prop_assert_eq!(family.count() as u64, psi(d));
        for cycle in family.cycles() {
            prop_assert!(verify::is_debruijn_hamiltonian(d, n, cycle));
        }
        prop_assert!(verify::family_is_edge_disjoint(family.cycles()));
    }

    /// Within the guaranteed tolerance, the edge-fault embedder always finds
    /// a Hamiltonian cycle avoiding the faulty links.
    #[test]
    fn edge_fault_embedding_meets_tolerance(d in prop_oneof![Just(4u64), Just(5), Just(6), Just(7), Just(8)], seed in any::<u64>()) {
        let n = 2u32;
        let graph = DeBruijn::new(d, n);
        let tolerance = edge_fault_tolerance(d) as usize;
        let mut faults = Vec::new();
        let mut state = seed | 1;
        while faults.len() < tolerance {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 16) as usize % graph.len();
            let v = graph.successor(u, (state >> 40) % d);
            if u != v && !faults.contains(&(u, v)) {
                faults.push((u, v));
            }
        }
        let cycle = EdgeFaultEmbedder::new(d, n).hamiltonian_avoiding(&faults);
        prop_assert!(cycle.is_some());
        let cycle = cycle.unwrap();
        prop_assert!(verify::is_debruijn_hamiltonian(d, n, &cycle));
        prop_assert!(verify::ring_avoids_edges(&cycle, &faults));
    }

    /// Lifting a de Bruijn cycle to the butterfly multiplies its length by
    /// LCM(k, n)/k and produces a genuine butterfly cycle.
    #[test]
    fn butterfly_lift_properties(seed in any::<u64>()) {
        let d = 3u64;
        let n = 3u32;
        let graph = DeBruijn::new(d, n);
        let butterfly = Butterfly::new(d, n);
        // Use a necklace as the base cycle: always a valid small cycle.
        let space = graph.space();
        let start = seed % space.count();
        let partition = NecklacePartition::new(space);
        let neck = partition.necklace_of(start);
        let cycle: Vec<usize> = neck.nodes(space).into_iter().map(|v| v as usize).collect();
        let lifted = lift_cycle(&butterfly, &cycle);
        let expected = dbg_lcm(cycle.len(), n as usize);
        prop_assert_eq!(lifted.len(), expected);
        prop_assert!(verify::is_ring_of(&butterfly, &lifted));
    }

    /// The distributed protocol always reproduces the centralized cycle when
    /// the fault count is within the strong-connectivity guarantee.
    #[test]
    fn distributed_matches_centralized(seed in any::<u64>()) {
        let d = 4u64;
        let n = 3u32;
        let protocol = DistributedFfc::new(d, n);
        let total = protocol.graph().len();
        let faults: Vec<usize> = (0..2).map(|i| ((seed >> (i * 13)) as usize) % total).collect();
        let distributed = protocol.run(&faults);
        let centralized = protocol.reference().embed(&faults);
        prop_assert_eq!(distributed.cycle, Some(centralized.cycle));
    }
}

fn dbg_pow(d: u64, n: u32) -> u64 {
    d.pow(n)
}

fn dbg_lcm(a: usize, b: usize) -> usize {
    let gcd = {
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        x
    };
    a / gcd * b
}
