//! Cross-crate integration tests exercising the public facade the same way
//! the examples do: topology construction → fault injection → embedding →
//! verification → simulation.

use debruijn_rings::core::verify;
use debruijn_rings::prelude::*;

#[test]
fn node_fault_pipeline_end_to_end() {
    // B(4,5), the Table 2.2 network, with two failed processors.
    let ffc = Ffc::new(4, 5);
    let graph = ffc.graph();
    let failed = vec![graph.node("01230").unwrap(), graph.node("33211").unwrap()];

    let outcome = ffc.embed(&failed);
    // The ring is a genuine cycle of the de Bruijn graph, avoids the faulty
    // necklaces entirely, and meets the d^n − n·f guarantee.
    assert!(verify::is_debruijn_ring(4, 5, &outcome.cycle));
    let partition = ffc.partition();
    let dead: Vec<usize> = (0..graph.len())
        .filter(|&v| {
            failed
                .iter()
                .any(|&f| partition.same_necklace(v as u64, f as u64))
        })
        .collect();
    assert!(verify::ring_avoids_nodes(&outcome.cycle, &dead));
    assert!(outcome.cycle.len() >= FfcOutcome::guarantee(4, 5, failed.len()));

    // The ring actually carries a collective.
    let report = all_to_all_broadcast(graph, &outcome.cycle);
    assert!(report.complete);
    assert_eq!(report.rounds, outcome.cycle.len() - 1);
}

#[test]
fn link_fault_pipeline_end_to_end() {
    let d = 9;
    let n = 2;
    let graph = DeBruijn::new(d, n);
    let embedder = EdgeFaultEmbedder::new(d, n);
    // Break the guaranteed-tolerable number of links, spread deterministically.
    let tolerance = edge_fault_tolerance(d) as usize;
    let faults: Vec<(usize, usize)> = (0..graph.len())
        .flat_map(|u| graph.successors(u).into_iter().map(move |v| (u, v)))
        .filter(|&(u, v)| u != v)
        .step_by(17)
        .take(tolerance)
        .collect();
    assert_eq!(faults.len(), tolerance);

    let ring = embedder
        .hamiltonian_avoiding(&faults)
        .expect("within tolerance");
    assert!(verify::is_debruijn_hamiltonian(d, n, &ring));
    assert!(verify::ring_avoids_edges(&ring, &faults));
}

#[test]
fn disjoint_family_feeds_split_broadcast() {
    let d = 5;
    let n = 3;
    let graph = DeBruijn::new(d, n);
    let family = DisjointHamiltonianCycles::construct(d, n);
    assert_eq!(family.count() as u64, psi(d));
    assert!(verify::family_is_edge_disjoint(family.cycles()));
    for cycle in family.cycles() {
        assert!(verify::is_debruijn_hamiltonian(d, n, cycle));
    }
    let report = split_all_to_all_broadcast(&graph, family.cycles());
    assert!(report.complete);
    assert_eq!(report.participants, graph.len());
}

#[test]
fn distributed_protocol_agrees_with_centralized_through_the_facade() {
    let protocol = DistributedFfc::new(4, 3);
    let failed = vec![5usize, 44];
    let distributed = protocol.run(&failed);
    let centralized = protocol.reference().embed(&failed);
    assert_eq!(distributed.cycle.unwrap(), centralized.cycle);
    assert_eq!(distributed.rounds.broadcast_depth, centralized.eccentricity);
}

#[test]
fn butterfly_lift_preserves_fault_avoidance() {
    let embedder = ButterflyEmbedder::new(3, 4); // gcd(3,4) = 1
    let butterfly = embedder.butterfly();
    let rings = embedder.disjoint_hamiltonian_cycles();
    assert_eq!(rings.len() as u64, psi(3));
    for ring in &rings {
        assert_eq!(ring.len(), butterfly.len());
        assert!(verify::is_ring_of(butterfly, ring));
    }
    // Knock out one butterfly link used by the first ring and re-embed.
    let fault = (rings[0][0], rings[0][1]);
    let recovered = embedder.hamiltonian_avoiding(&[fault]).expect("phi(3) = 1");
    assert!(verify::is_ring_of(butterfly, &recovered));
    assert!(verify::ring_avoids_edges(&recovered, &[fault]));
}

#[test]
fn modified_graph_decomposition_via_facade() {
    let m = ModifiedDeBruijn::construct(5, 2);
    assert_eq!(m.cycles().len(), 5);
    assert!(verify::family_is_edge_disjoint(m.cycles()));
    // UMB contains UB.
    let ub = UndirectedDeBruijn::new(5, 2);
    let umb = m.undirected();
    for (a, b) in ub.graph().edges() {
        assert!(umb.has_edge(a, b));
    }
}

#[test]
fn hypercube_baseline_and_debruijn_meet_their_guarantees_on_equal_sizes() {
    // 256 processors: B(4,4) vs Q(8), with the same two failures.
    let ffc = Ffc::new(4, 4);
    let hypercube = HypercubeRingEmbedder::new(8);
    let failed = vec![7usize, 200];
    let db = ffc.embed(&failed);
    let hc = hypercube.embed(&failed).unwrap();
    assert!(db.cycle.len() >= FfcOutcome::guarantee(4, 4, 2));
    assert!(hc.len() >= HypercubeRingEmbedder::guaranteed_length(8, 2));
}

#[test]
fn necklace_counts_agree_with_graph_partition() {
    use debruijn_rings::necklace::count_necklaces_total;
    for (d, n) in [(2u64, 9u32), (3, 5), (5, 4)] {
        let partition = NecklacePartition::new(WordSpace::new(d, n));
        assert_eq!(
            count_necklaces_total(d, u64::from(n)),
            partition.len() as u128
        );
    }
}

#[test]
fn algebra_layer_supports_the_construction_it_claims() {
    // A maximal cycle built from the algebra layer really is a cycle of the
    // graph layer missing exactly one node.
    let family = MaximalCycleFamily::new(9, 2);
    let graph = DeBruijn::new(9, 2);
    let nodes = family.translate_nodes(4);
    assert_eq!(nodes.len(), graph.len() - 1);
    for i in 0..nodes.len() {
        assert!(graph.is_edge(nodes[i], nodes[(i + 1) % nodes.len()]));
    }
    let field = GField::new(9);
    assert_eq!(field.characteristic(), 3);
    let lfsr = Lfsr::new(field, &[1, 1], &[0, 1]);
    assert!(lfsr.period() > 1);
}
