//! Property tests for the batch sweep engine: `embed_batch` over a random
//! plan must produce **bit-identical** `EmbedStats` and cycles to a serial
//! loop of `embed_into` with the same per-trial seeds, at shard counts
//! 1, 2 and 5.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use debruijn_rings::core::{
    BatchEmbedder, EmbedScratch, EmbedStats, FaultSchedule, Ffc, SweepPlan,
};

/// Strategy for a small (d, n) pair with d^n bounded, so each case stays
/// fast. Every pair here has at least 6 necklaces, so the fault counts of
/// [`schedule`] (≤ 5) can never kill the whole graph (which is a
/// documented panic of the embedder, not a sweep property).
fn small_debruijn() -> impl Strategy<Value = (u64, u32)> {
    prop_oneof![
        (2u64..=2, 4u32..=8),
        (3u64..=3, 2u32..=4),
        (4u64..=4, 2u32..=3),
        (5u64..=5, 2u32..=2),
    ]
}

/// Strategy for a fault schedule: constant or cycling, counts within 0..=5.
fn schedule() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        (0usize..=5).prop_map(FaultSchedule::Constant),
        (1usize..=2, 0usize..=3)
            .prop_map(|(len, lo)| { FaultSchedule::Cycling((lo..=lo + len).collect()) }),
    ]
}

/// The serial oracle: a plain loop of `embed_into` drawing each trial's
/// faults with `partial_shuffle` on a fresh identity array seeded from
/// `plan.trial_seed(t)` — the contract the batch engine promises to match.
fn serial_oracle(ffc: &Ffc, plan: &SweepPlan) -> Vec<(Vec<usize>, EmbedStats, Vec<usize>)> {
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    (0..plan.trials())
        .map(|t| {
            let f = plan.schedule().faults_for(t).min(total);
            let mut rng = StdRng::seed_from_u64(plan.trial_seed(t));
            let mut nodes: Vec<usize> = (0..total).collect();
            let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
            let faults = chosen.to_vec();
            let stats = ffc.embed_into(&mut scratch, &faults);
            (faults, stats, scratch.cycle().to_vec())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-pipeline plans (cycles requested): stats, fault draws and
    /// cycles are bit-identical to the serial loop at every shard count.
    #[test]
    fn embed_batch_matches_serial_embed_into(
        (d, n) in small_debruijn(),
        sched in schedule(),
        trials in 1usize..32,
        seed in any::<u64>(),
    ) {
        let ffc = Ffc::new(d, n);
        let plan = SweepPlan::new(sched, trials, seed).collect_cycles(true);
        let expected = serial_oracle(&ffc, &plan);
        for shards in [1usize, 2, 5] {
            let mut batch = BatchEmbedder::new(shards);
            type Row = (usize, Vec<usize>, EmbedStats, Vec<usize>);
            let got: Vec<Row> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            });
            prop_assert_eq!(got.len(), trials, "shards={}", shards);
            for (i, ((faults, stats, cycle), (idx, b_faults, b_stats, b_cycle))) in
                expected.iter().zip(&got).enumerate()
            {
                prop_assert_eq!(*idx, i, "shards={}", shards);
                prop_assert_eq!(faults, b_faults, "faults diverge at trial {} shards={}", i, shards);
                prop_assert_eq!(stats, b_stats, "stats diverge at trial {} shards={}", i, shards);
                prop_assert_eq!(cycle, b_cycle, "cycle diverges at trial {} shards={}", i, shards);
            }
        }
    }

    /// Full-pipeline plans on the parallel embedding engine
    /// (`SweepPlan::embed_shards`): per-trial stats, fault draws and cycle
    /// bytes stay bit-identical to the serial `embed_into` loop for every
    /// combination of trial-level and embedding-level sharding.
    #[test]
    fn embed_batch_with_parallel_engine_matches_serial(
        (d, n) in small_debruijn(),
        sched in schedule(),
        trials in 1usize..24,
        seed in any::<u64>(),
    ) {
        let ffc = Ffc::new(d, n);
        let base = SweepPlan::new(sched, trials, seed).collect_cycles(true);
        let expected = serial_oracle(&ffc, &base);
        for (embed_shards, batch_shards) in [(2usize, 1usize), (3, 2), (5, 5)] {
            let plan = base.clone().embed_shards(embed_shards);
            let mut batch = BatchEmbedder::new(batch_shards);
            type Row = (usize, Vec<usize>, EmbedStats, Vec<usize>);
            let got: Vec<Row> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            });
            prop_assert_eq!(got.len(), trials);
            for (i, ((faults, stats, cycle), (idx, b_faults, b_stats, b_cycle))) in
                expected.iter().zip(&got).enumerate()
            {
                prop_assert_eq!(*idx, i, "embed x{} batch x{}", embed_shards, batch_shards);
                prop_assert_eq!(
                    faults, b_faults,
                    "faults diverge at trial {} embed x{} batch x{}", i, embed_shards, batch_shards
                );
                prop_assert_eq!(
                    stats, b_stats,
                    "stats diverge at trial {} embed x{} batch x{}", i, embed_shards, batch_shards
                );
                prop_assert_eq!(
                    cycle, b_cycle,
                    "cycle diverges at trial {} embed x{} batch x{}", i, embed_shards, batch_shards
                );
            }
        }
    }

    /// Stats-only plans: the bit-parallel fast path reports the identical
    /// stats (and no cycle) at every shard count — identical to both the
    /// full-pipeline serial loop and the retained u8-stamp oracle path on
    /// the same per-trial draws.
    #[test]
    fn stats_only_embed_batch_matches_serial(
        (d, n) in small_debruijn(),
        sched in schedule(),
        trials in 1usize..32,
        seed in any::<u64>(),
    ) {
        let ffc = Ffc::new(d, n);
        let plan = SweepPlan::new(sched, trials, seed);
        let expected = serial_oracle(&ffc, &plan.clone().collect_cycles(true));
        // The u8-stamp oracle must agree with the full pipeline trial for
        // trial before it is used as the comparison baseline.
        let mut u8_scratch = EmbedScratch::new();
        for (faults, stats, _) in &expected {
            let got = ffc.embed_stats_into_u8(&mut u8_scratch, faults);
            prop_assert_eq!(&got, stats, "u8 oracle diverges for {:?}", faults);
        }
        for shards in [1usize, 2, 5] {
            let mut batch = BatchEmbedder::new(shards);
            type Row = (usize, Vec<usize>, EmbedStats, bool);
            let got: Vec<Row> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.is_some(),
                ));
            });
            prop_assert_eq!(got.len(), trials, "shards={}", shards);
            for (i, ((faults, stats, _), (idx, b_faults, b_stats, has_cycle))) in
                expected.iter().zip(&got).enumerate()
            {
                prop_assert_eq!(*idx, i);
                prop_assert_eq!(faults, b_faults, "faults diverge at trial {} shards={}", i, shards);
                prop_assert_eq!(stats, b_stats, "stats diverge at trial {} shards={}", i, shards);
                prop_assert!(!has_cycle, "stats-only plan produced a cycle");
            }
        }
    }
}
