//! Correctness pins for batched multi-fault repair and graceful
//! degradation on the `RingMaintainer`:
//!
//! * an **exhaustive grid** over every ≤3-fault multiset on B(2,5) and
//!   B(3,3), applied sequentially and through every batch partitioning
//!   ([3], [1,2], [2,1], [1,1,1]), with stats *and* ring bytes asserted
//!   identical to a from-scratch `embed_into` of the same fault set;
//! * degradation past tolerance stays queryable and recovers to
//!   `Repaired` after clears, including the all-necklaces-dead
//!   `Infeasible` floor;
//! * the typed-rejection surface: out-of-range ids and non-edges return
//!   `RepairError` (batches atomically) instead of panicking, and
//!   clearing a never-faulty node is a documented no-op.

use debruijn_rings::core::{EmbedScratch, FaultEvent, Ffc, RepairError, RingMaintainer};

/// Every ordered batch partitioning of a `len`-event sequence.
fn partitionings(len: usize) -> Vec<Vec<usize>> {
    match len {
        0 => vec![vec![]],
        1 => vec![vec![1]],
        2 => vec![vec![2], vec![1, 1]],
        3 => vec![vec![3], vec![1, 2], vec![2, 1], vec![1, 1, 1]],
        _ => unreachable!("grid stops at 3 faults"),
    }
}

/// The exhaustive grid on one graph: every non-decreasing fault multiset
/// of size ≤ 3, every batch partitioning, vs sequential `add_fault` vs
/// from-scratch `embed_into`.
fn exhaustive_batch_grid(d: u64, n: u32) {
    let ffc = Ffc::new(d, n);
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut maint = RingMaintainer::new();
    let mut ring = Vec::new();

    let mut multisets: Vec<Vec<usize>> = vec![vec![]];
    for a in 0..total {
        multisets.push(vec![a]);
        for b in a..total {
            multisets.push(vec![a, b]);
            for c in b..total {
                multisets.push(vec![a, b, c]);
            }
        }
    }

    let mut saw_degraded = false;
    for faults in &multisets {
        let mut unique = faults.clone();
        unique.dedup();
        let want = ffc.embed_into(&mut scratch, &unique);
        let want_ring: Vec<usize> = scratch.cycle().to_vec();

        // Sequential single-fault events.
        maint.reset(&ffc, &[]).expect("in-range");
        let mut outcome = maint.outcome();
        for &v in faults {
            outcome = maint.add_fault(&ffc, v).expect("in-range");
        }
        assert_eq!(outcome.stats(), want, "sequential stats for {faults:?}");
        maint.ring_into(&mut ring);
        assert_eq!(ring, want_ring, "sequential ring for {faults:?}");
        saw_degraded |= outcome.is_degraded();

        // The outcome variant must agree with the stats it carries.
        let live = total - want.removed_nodes;
        assert_eq!(
            outcome.is_repaired(),
            want.component_size == live && live > 0,
            "outcome classification for {faults:?}: {outcome:?}"
        );
        assert_eq!(outcome.excluded(), live - want.component_size);

        // Every batch partitioning of the same event sequence.
        for parts in partitionings(faults.len()) {
            maint.reset(&ffc, &[]).expect("in-range");
            let mut at = 0usize;
            let mut out = maint.outcome();
            for &len in &parts {
                let batch: Vec<FaultEvent> = faults[at..at + len]
                    .iter()
                    .map(|&v| FaultEvent::NodeDown(v))
                    .collect();
                out = maint.apply_batch(&ffc, &batch).expect("in-range");
                at += len;
            }
            assert_eq!(
                out.stats(),
                want,
                "batched stats for {faults:?} split {parts:?}"
            );
            maint.ring_into(&mut ring);
            assert_eq!(
                ring, want_ring,
                "batched ring for {faults:?} split {parts:?}"
            );
        }
    }
    // The grid must have crossed the degradation boundary, or it proved
    // nothing about the past-tolerance path.
    assert!(saw_degraded, "no ≤3-fault set degraded B({d},{n})");
}

#[test]
fn exhaustive_batch_grid_b2_5() {
    exhaustive_batch_grid(2, 5);
}

#[test]
fn exhaustive_batch_grid_b3_3() {
    exhaustive_batch_grid(3, 3);
}

/// Past tolerance the maintainer serves a shorter ring, stays fully
/// queryable, and climbs back to `Repaired` as faults clear — through the
/// `Infeasible` floor where every necklace is dead.
#[test]
fn degradation_is_queryable_and_recoverable() {
    let ffc = Ffc::new(2, 5);
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut maint = RingMaintainer::new();
    let mut ring = Vec::new();
    maint.reset(&ffc, &[]).expect("in-range");
    let full_len = maint.outcome().ring_len();
    assert!(maint.outcome().is_repaired());

    // Fault every node, one batch of 8 at a time: the outcome weakens
    // monotonically-queryably (never a panic), ends Infeasible.
    for chunk in (0..total).collect::<Vec<_>>().chunks(8) {
        let batch: Vec<FaultEvent> = chunk.iter().map(|&v| FaultEvent::NodeDown(v)).collect();
        let out = maint.apply_batch(&ffc, &batch).expect("in-range");
        // Queryable in every state.
        assert_eq!(out.stats(), maint.stats());
        maint.ring_into(&mut ring);
        assert_eq!(ring.len(), out.ring_len());
    }
    let floor = maint.outcome();
    assert!(floor.is_infeasible(), "all nodes faulty must be infeasible");
    assert_eq!(floor.ring_len(), 0);
    assert_eq!(floor.stats().component_size, 0);
    maint.ring_into(&mut ring);
    assert!(ring.is_empty());

    // Clear everything in one batch: straight back to the full ring,
    // bit-identical to a fault-free from-scratch embed.
    let ups: Vec<FaultEvent> = (0..total).map(FaultEvent::NodeUp).collect();
    let out = maint.apply_batch(&ffc, &ups).expect("in-range");
    assert!(out.is_repaired(), "recovery from infeasible: {out:?}");
    assert_eq!(out.ring_len(), full_len);
    let want = ffc.embed_into(&mut scratch, &[]);
    assert_eq!(out.stats(), want);
    maint.ring_into(&mut ring);
    assert_eq!(ring, scratch.cycle());
}

/// A degraded state (some live nodes off the ring, but a ring exists)
/// must also recover: find one on the exhaustive grid, then clear it.
#[test]
fn degraded_state_recovers_to_repaired() {
    let ffc = Ffc::new(2, 5);
    let total = ffc.graph().len();
    let mut maint = RingMaintainer::new();
    let mut found = None;
    'search: for a in 0..total {
        for b in a + 1..total {
            maint.reset(&ffc, &[]).expect("in-range");
            let out = maint
                .apply_batch(&ffc, &[FaultEvent::NodeDown(a), FaultEvent::NodeDown(b)])
                .expect("in-range");
            if out.is_degraded() {
                found = Some((a, b, out));
                break 'search;
            }
        }
    }
    let (a, b, out) = found.expect("some 2-fault set degrades B(2,5)");
    assert!(out.excluded() > 0);
    assert!(out.ring_len() > 0, "degraded still serves a ring");
    let back = maint
        .apply_batch(&ffc, &[FaultEvent::NodeUp(a), FaultEvent::NodeUp(b)])
        .expect("in-range");
    assert!(back.is_repaired(), "clears must lift degradation: {back:?}");
}

/// Satellite: malformed ids are typed errors, not panics, and a rejected
/// batch leaves the session untouched.
#[test]
fn out_of_range_ids_are_rejected_not_panics() {
    let ffc = Ffc::new(2, 5);
    let total = ffc.graph().len();
    let mut maint = RingMaintainer::new();
    maint.reset(&ffc, &[]).expect("in-range");
    let clean = maint.stats();

    assert_eq!(
        maint.add_fault(&ffc, total),
        Err(RepairError::NodeOutOfRange {
            node: total,
            n_nodes: total
        })
    );
    assert_eq!(
        maint.clear_fault(&ffc, total + 7),
        Err(RepairError::NodeOutOfRange {
            node: total + 7,
            n_nodes: total
        })
    );
    // Atomicity: the in-range half of a rejected batch must NOT land.
    let batch = [FaultEvent::NodeDown(0), FaultEvent::NodeDown(total)];
    assert!(maint.apply_batch(&ffc, &batch).is_err());
    assert_eq!(maint.stats(), clean, "rejected batch must be atomic");
    assert!(maint.session().faulty_nodes().is_empty());

    // A rejected reset also leaves state untouched.
    assert!(maint.reset(&ffc, &[total]).is_err());
    assert_eq!(maint.stats(), clean);
}

/// Satellite: a link event naming a non-edge is `NotAnEdge`.
#[test]
fn non_edges_are_rejected() {
    let ffc = Ffc::new(2, 5);
    let mut maint = RingMaintainer::new();
    maint.reset(&ffc, &[]).expect("in-range");
    // Successors of node 0 in B(2,5) are 0 and 1; 5 is not one.
    assert_eq!(
        maint.apply_batch(&ffc, &[FaultEvent::EdgeDown(0, 5)]),
        Err(RepairError::NotAnEdge { from: 0, to: 5 })
    );
    assert_eq!(
        maint.apply_batch(&ffc, &[FaultEvent::EdgeUp(3, 0)]),
        Err(RepairError::NotAnEdge { from: 3, to: 0 })
    );
    // The real edge is accepted.
    maint
        .apply_batch(&ffc, &[FaultEvent::EdgeDown(0, 1)])
        .expect("a real edge");
}

/// Satellite: clearing a never-faulty node is a documented no-op — same
/// outcome, no extra repair work recorded.
#[test]
fn clear_of_never_faulty_node_is_a_noop() {
    let ffc = Ffc::new(2, 5);
    let mut maint = RingMaintainer::new();
    maint.reset(&ffc, &[3]).expect("in-range");
    let before = maint.outcome();
    let repairs = maint.repairs();
    let out = maint.clear_fault(&ffc, 7).expect("in-range no-op");
    assert_eq!(out, before);
    assert_eq!(maint.repairs(), repairs, "no-op must not count as repair");
    assert_eq!(maint.session().faulty_nodes(), &[3]);
    // Same through the batch path.
    let out = maint
        .apply_batch(&ffc, &[FaultEvent::NodeUp(7), FaultEvent::NodeUp(9)])
        .expect("in-range no-op batch");
    assert_eq!(out, before);
    assert_eq!(maint.repairs(), repairs);
}
