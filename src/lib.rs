//! # debruijn-rings
//!
//! Fault-tolerant ring embedding in de Bruijn networks — a full Rust
//! implementation of Rowley & Bose's results (ICPP 1991 / IEEE ToC 1993 and
//! the 1993 OSU thesis of the same title).
//!
//! This facade crate re-exports the workspace so applications can depend on
//! a single crate:
//!
//! * [`algebra`] — number theory, finite fields GF(p^e), polynomials, LFSR
//!   sequences and d-ary words.
//! * [`graph`] — de Bruijn, butterfly, hypercube, shuffle-exchange and Kautz
//!   topologies plus the graph algorithms used by the embeddings.
//! * [`necklace`] — necklace (rotation-class) machinery and the Chapter 4
//!   counting formulas.
//! * [`core`] — the embeddings themselves: the FFC algorithm for node
//!   failures, edge-disjoint Hamiltonian cycles, link-failure-tolerant
//!   Hamiltonian cycles, the modified graph MB(d,n) and butterfly lifting.
//! * [`netsim`] — a synchronous message-passing simulator, the distributed
//!   FFC protocol of Section 2.4 and ring-based collectives.
//! * [`baselines`] — the hypercube ring embedder and a greedy baseline used
//!   for comparisons.
//!
//! ## Quick start
//!
//! ```rust
//! use debruijn_rings::prelude::*;
//!
//! // A 4096-processor network B(4,6) with two failed processors.
//! let ffc = Ffc::new(4, 6);
//! let failed = vec![17, 2048];
//! let ring = ffc.embed(&failed);
//! assert!(ring.cycle.len() >= FfcOutcome::guarantee(4, 6, failed.len())); // ≥ 4084
//!
//! // Steady-state embedding (Monte-Carlo sweeps, reconfiguration services):
//! // hold an EmbedScratch and re-embed with zero heap allocation per call.
//! let mut scratch = EmbedScratch::new();
//! for f in 0..8usize {
//!     let faults: Vec<usize> = (0..f).map(|i| 17 * i + 3).collect();
//!     let stats = ffc.embed_into(&mut scratch, &faults);
//!     assert_eq!(scratch.cycle().len(), stats.component_size);
//! }
//!
//! // Monte-Carlo sweeps: a deterministic plan on the batch engine.
//! // Per-trial seeding makes results bit-identical at any shard count.
//! let mut batch = BatchEmbedder::new(2);
//! let plan = SweepPlan::new(FaultSchedule::Constant(2), 50, 7);
//! let sizes = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<usize>, t| {
//!     acc.push(t.stats.component_size);
//! });
//! assert_eq!(sizes.len(), 50);
//!
//! // Three edge-disjoint Hamiltonian cycles of B(4,2) (ψ(4) = 3).
//! let family = DisjointHamiltonianCycles::construct(4, 2);
//! assert_eq!(family.count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dbg_algebra as algebra;
pub use dbg_baselines as baselines;
pub use dbg_graph as graph;
pub use dbg_necklace as necklace;
pub use dbg_netsim as netsim;
pub use debruijn_core as core;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dbg_algebra::words::WordSpace;
    pub use dbg_algebra::{GField, Lfsr};
    pub use dbg_baselines::HypercubeRingEmbedder;
    pub use dbg_graph::{Butterfly, DeBruijn, FaultSet, Hypercube, Topology, UndirectedDeBruijn};
    pub use dbg_necklace::{Necklace, NecklacePartition};
    pub use dbg_netsim::{
        all_to_all_broadcast, distributed_sweep, split_all_to_all_broadcast, ChaosConfig,
        DistributedFfc, Network, OnlineFfc,
    };
    pub use debruijn_core::{
        edge_fault_tolerance, lift_cycle, phi_edge_bound, psi, replay_churn, BatchEmbedder,
        ButterflyEmbedder, ChurnPlan, ChurnReport, ChurnStep, DisjointHamiltonianCycles,
        EdgeFaultEmbedder, EmbedScratch, EmbedSession, EmbedStats, FaultDrawer, FaultEvent,
        FaultSchedule, Ffc, FfcOutcome, LookupError, MaximalCycleFamily, ModifiedDeBruijn,
        NecklaceAdjacency, NoFaultFreeCycle, ReaderHandle, RepairError, RepairOutcome,
        RingMaintainer, RingService, RingSnapshot, ServeOptions, ServiceReport, SnapshotPublisher,
        SpaceTooLarge, SubmitError, SweepAccumulator, SweepPlan,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let ffc = Ffc::new(3, 3);
        let out = ffc.embed(&[4]);
        assert!(out.cycle.len() >= FfcOutcome::guarantee(3, 3, 1));
        assert_eq!(psi(4), 3);
    }
}
