//! Necklace structure: rotation classes of d-ary words.

use dbg_algebra::words::WordSpace;

/// A necklace `[y]`: the rotation class of a word, named by its minimal
/// rotation `y` (the paper's representative convention, Section 2.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Necklace {
    representative: u64,
    length: u32,
}

impl Necklace {
    /// The necklace containing word `code` in the given space.
    #[must_use]
    pub fn containing(space: WordSpace, code: u64) -> Self {
        Necklace {
            representative: space.canonical_rotation(code),
            length: space.period(code),
        }
    }

    /// The minimal word of the necklace (its name `[y]`).
    #[must_use]
    pub fn representative(&self) -> u64 {
        self.representative
    }

    /// The necklace length (the period of its words); always divides n.
    #[must_use]
    pub fn len(&self) -> usize {
        self.length as usize
    }

    /// Necklaces are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The nodes of the necklace in traversal order
    /// `y, π(y), π²(y), …` — this is exactly the cycle N(y) of B(d,n).
    #[must_use]
    pub fn nodes(&self, space: WordSpace) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.length as usize);
        let mut cur = self.representative;
        for _ in 0..self.length {
            out.push(cur);
            cur = space.rotate_left(cur);
        }
        out
    }

    /// The successor of `code` *within its necklace*: its left rotation.
    /// (For an aperiodic word this is the next node of the cycle N(x).)
    #[must_use]
    pub fn successor_of(space: WordSpace, code: u64) -> u64 {
        space.rotate_left(code)
    }

    /// Whether `code` belongs to this necklace.
    #[must_use]
    pub fn contains(&self, space: WordSpace, code: u64) -> bool {
        space.canonical_rotation(code) == self.representative
    }

    /// Formats the necklace as `[digits]`.
    #[must_use]
    pub fn format(&self, space: WordSpace) -> String {
        format!("[{}]", space.format(self.representative))
    }
}

/// The partition of all d^n words into necklaces, with O(1) lookup from a
/// word to its necklace id and a CSR layout of every necklace's members.
#[derive(Clone, Debug)]
pub struct NecklacePartition {
    space: WordSpace,
    /// For each word code, the id (index into `necklaces`) of its necklace.
    membership: Vec<u32>,
    /// The necklaces, ordered by increasing representative.
    necklaces: Vec<Necklace>,
    /// CSR offsets into [`NecklacePartition::neck_node`] (`len() + 1` entries).
    neck_offset: Vec<u32>,
    /// Necklace members in rotation order starting at the representative.
    neck_node: Vec<u32>,
}

impl NecklacePartition {
    /// Builds the necklace partition of the words of `space` with a single
    /// FKM (Fredricksen–Kessler–Maiorana) necklace-enumeration pass: the
    /// representatives arrive in increasing order with their periods for
    /// free, so no word is ever canonicalised individually.
    #[must_use]
    pub fn new(space: WordSpace) -> Self {
        Self::with_shards(space, 1)
    }

    /// [`NecklacePartition::new`] with the membership/CSR fill sharded
    /// over `shards` scoped threads (clamped to at least 1). The output is
    /// bit-identical at any shard count: shards own disjoint necklace-id
    /// ranges, so every membership slot and CSR entry has exactly one
    /// writer.
    ///
    /// # Panics
    /// Panics if the space has more than `u32::MAX` words (the same node
    /// indexing limit as the embedding engine's tables).
    #[must_use]
    pub fn with_shards(space: WordSpace, shards: usize) -> Self {
        let count = space.count() as usize;
        assert!(
            u32::try_from(count).is_ok(),
            "necklace tables index words with u32; {count} words is too large"
        );
        let necklaces = enumerate_necklaces(space);
        let mut neck_offset = Vec::with_capacity(necklaces.len() + 1);
        neck_offset.push(0u32);
        let mut total = 0u32;
        for neck in &necklaces {
            total += neck.length;
            neck_offset.push(total);
        }
        debug_assert_eq!(total as usize, count, "necklace lengths must tile d^n");

        let shards = shards.max(1).min(necklaces.len().max(1));
        let (membership, neck_node) = if shards == 1 {
            let mut membership = vec![u32::MAX; count];
            let mut neck_node = vec![0u32; count];
            fill_members(
                &necklaces,
                &neck_offset,
                0,
                space,
                &mut neck_node,
                |code, id| membership[code] = id,
            );
            (membership, neck_node)
        } else {
            fill_members_sharded(&necklaces, &neck_offset, space, count, shards)
        };
        NecklacePartition {
            space,
            membership,
            necklaces,
            neck_offset,
            neck_node,
        }
    }

    /// The word space being partitioned.
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// Number of necklaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.necklaces.len()
    }

    /// Never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The necklace id of a word.
    #[must_use]
    pub fn id_of(&self, code: u64) -> usize {
        self.membership[code as usize] as usize
    }

    /// The raw word → necklace-id table, indexed by word code. Exposed so
    /// hot paths (the FFC embedding engine, the distributed protocol) can
    /// do flat-array lookups without going through `id_of`'s `usize`
    /// conversions per call.
    #[must_use]
    pub fn membership(&self) -> &[u32] {
        &self.membership
    }

    /// The necklace with a given id.
    #[must_use]
    pub fn necklace(&self, id: usize) -> &Necklace {
        &self.necklaces[id]
    }

    /// The members of necklace `id` in rotation order starting at its
    /// representative — a slice of the precomputed CSR layout, so hot
    /// paths (fault marking in the embedding engine) never re-rotate.
    #[must_use]
    pub fn members(&self, id: usize) -> &[u32] {
        let lo = self.neck_offset[id] as usize;
        let hi = self.neck_offset[id + 1] as usize;
        &self.neck_node[lo..hi]
    }

    /// The CSR offsets of [`NecklacePartition::members`] (`len() + 1`
    /// entries): necklace `id` owns `neck_node[offset[id]..offset[id+1]]`.
    #[must_use]
    pub fn member_offsets(&self) -> &[u32] {
        &self.neck_offset
    }

    /// All necklaces, ordered by increasing representative.
    #[must_use]
    pub fn necklaces(&self) -> &[Necklace] {
        &self.necklaces
    }

    /// The necklace containing a word.
    #[must_use]
    pub fn necklace_of(&self, code: u64) -> &Necklace {
        &self.necklaces[self.id_of(code)]
    }

    /// Whether two words are on the same necklace.
    #[must_use]
    pub fn same_necklace(&self, a: u64, b: u64) -> bool {
        self.id_of(a) == self.id_of(b)
    }

    /// Marks the necklaces containing any of `faulty_nodes` as faulty and
    /// returns a boolean mask indexed by necklace id. This is the paper's
    /// "a necklace is faulty if it contains a faulty node" rule.
    #[must_use]
    pub fn faulty_necklaces<I: IntoIterator<Item = u64>>(&self, faulty_nodes: I) -> Vec<bool> {
        let mut mask = vec![false; self.necklaces.len()];
        for node in faulty_nodes {
            mask[self.id_of(node)] = true;
        }
        mask
    }

    /// The total number of nodes living on faulty necklaces (the quantity
    /// N_F of Section 2.5, bounded by n·f).
    #[must_use]
    pub fn faulty_node_count(&self, faulty_mask: &[bool]) -> usize {
        self.necklaces
            .iter()
            .enumerate()
            .filter(|(id, _)| faulty_mask[*id])
            .map(|(_, n)| n.len())
            .sum()
    }
}

/// Enumerates every necklace of the space in increasing representative
/// order via the FKM algorithm (Knuth 7.2.1.1, Algorithm F): generate the
/// prenecklaces of length n in lex order; a prenecklace whose Lyndon-prefix
/// length `i` divides n is a necklace with representative `a[1..=n]` and
/// period `i`. Total work is linear in d^n — no per-word canonicalisation.
fn enumerate_necklaces(space: WordSpace) -> Vec<Necklace> {
    let d = space.d();
    let n = space.n() as usize;
    let mut a = vec![0u64; n + 1];
    let code_of = |digits: &[u64]| -> u64 {
        let mut v = 0u64;
        for &x in &digits[1..=n] {
            v = v * d + x;
        }
        v
    };
    let mut out = Vec::new();
    // The all-zero word is the first necklace (period 1).
    out.push(Necklace {
        representative: 0,
        length: 1,
    });
    loop {
        let mut i = n;
        while i > 0 && a[i] == d - 1 {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        a[i] += 1;
        for j in (i + 1)..=n {
            a[j] = a[j - i];
        }
        if n.is_multiple_of(i) {
            out.push(Necklace {
                representative: code_of(&a),
                length: i as u32,
            });
        }
    }
    out
}

/// Walks the members of `necklaces[first_id..]` whose CSR slots fall in
/// `neck_node` (already narrowed to the shard's slice): writes the CSR
/// entries in rotation order ([`WordSpace::rotate_left`] is mask/shift
/// arithmetic for power-of-two alphabets) and reports each `(code, id)`
/// pair to `membership` (a closure so the serial and sharded fills can
/// share the loop while storing into `Vec<u32>` and `Vec<AtomicU32>`
/// respectively).
fn fill_members<F: FnMut(usize, u32)>(
    necklaces: &[Necklace],
    neck_offset: &[u32],
    first_id: usize,
    space: WordSpace,
    neck_node: &mut [u32],
    mut membership: F,
) {
    let base = neck_offset[first_id] as usize;
    for (k, neck) in necklaces.iter().enumerate() {
        let id = (first_id + k) as u32;
        let lo = neck_offset[first_id + k] as usize - base;
        let mut cur = neck.representative;
        for slot in &mut neck_node[lo..lo + neck.length as usize] {
            *slot = cur as u32;
            membership(cur as usize, id);
            cur = space.rotate_left(cur);
        }
    }
}

/// The sharded membership/CSR fill: necklace ids are split into contiguous
/// ranges balanced by member count; each scoped thread writes its own
/// `neck_node` slice (disjoint by construction) and its members' slots of
/// an atomic membership table (every word belongs to exactly one necklace,
/// so the relaxed stores never race on a slot).
///
/// ATOMICS: single-writer Relaxed stores — every membership slot belongs
/// to exactly one necklace and hence to exactly one shard, and the scope
/// join publishes the table to the caller; no cross-thread read happens
/// before the join, so no store needs release semantics.
fn fill_members_sharded(
    necklaces: &[Necklace],
    neck_offset: &[u32],
    space: WordSpace,
    count: usize,
    shards: usize,
) -> (Vec<u32>, Vec<u32>) {
    use std::sync::atomic::{AtomicU32, Ordering};

    let membership: Vec<AtomicU32> = (0..count).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut neck_node = vec![0u32; count];
    // Shard k owns necklace ids [bounds[k], bounds[k+1]): the first id
    // whose CSR offset reaches the k-th equal slice of the node count.
    let bounds: Vec<usize> = (0..=shards)
        .map(|k| neck_offset.partition_point(|&o| (o as usize) < count * k / shards))
        .collect();
    std::thread::scope(|scope| {
        let mut rest = neck_node.as_mut_slice();
        let mut consumed = 0usize;
        for k in 0..shards {
            let (lo, hi) = (bounds[k], bounds[k + 1]);
            let span = neck_offset[hi] as usize - neck_offset[lo] as usize;
            let (mine, tail) = rest.split_at_mut(span);
            rest = tail;
            debug_assert_eq!(neck_offset[lo] as usize, consumed);
            consumed += span;
            let necks = &necklaces[lo..hi];
            let membership = &membership;
            scope.spawn(move || {
                fill_members(necks, neck_offset, lo, space, mine, |code, id| {
                    membership[code].store(id, Ordering::Relaxed);
                });
            });
        }
    });
    let membership = membership
        .into_iter()
        .map(std::sync::atomic::AtomicU32::into_inner)
        .collect();
    (membership, neck_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn necklace_of_1120_matches_paper() {
        // N(1120) = [0112] = (1120, 1201, 2011, 0112) — Section 2.1.
        let s = WordSpace::new(3, 4);
        let x = s.parse("1120").unwrap();
        let neck = Necklace::containing(s, x);
        assert_eq!(neck.representative(), s.parse("0112").unwrap());
        assert_eq!(neck.len(), 4);
        assert_eq!(neck.format(s), "[0112]");
        let nodes = neck.nodes(s);
        assert_eq!(nodes.len(), 4);
        assert!(nodes.contains(&x));
        assert!(neck.contains(s, x));
        assert!(!neck.contains(s, s.parse("0000").unwrap()));
    }

    #[test]
    fn short_necklaces_have_period_length() {
        let s = WordSpace::new(2, 6);
        let neck = Necklace::containing(s, s.parse("010101").unwrap());
        assert_eq!(neck.len(), 2);
        assert_eq!(neck.nodes(s).len(), 2);
        let constant = Necklace::containing(s, 0);
        assert_eq!(constant.len(), 1);
    }

    #[test]
    fn partition_covers_all_words_disjointly() {
        for (d, n) in [(2u64, 6u32), (3, 4), (4, 3)] {
            let s = WordSpace::new(d, n);
            let part = NecklacePartition::new(s);
            let total: usize = part.necklaces().iter().map(Necklace::len).sum();
            assert_eq!(total as u64, s.count(), "d={d} n={n}");
            // Membership is consistent with canonical rotations.
            for code in s.iter() {
                let neck = part.necklace_of(code);
                assert_eq!(neck.representative(), s.canonical_rotation(code));
                assert!(part.same_necklace(code, s.rotate_left(code)));
            }
        }
    }

    #[test]
    fn partition_count_matches_known_values() {
        // B(2,3) has 4 necklaces: [000], [001], [011], [111].
        let part = NecklacePartition::new(WordSpace::new(2, 3));
        assert_eq!(part.len(), 4);
        // B(3,3) has 11 necklaces (used in Example 2.1's figure: 9 nonfaulty + 2 faulty).
        let part33 = NecklacePartition::new(WordSpace::new(3, 3));
        assert_eq!(part33.len(), 11);
    }

    #[test]
    fn representatives_are_sorted_and_minimal() {
        let s = WordSpace::new(3, 4);
        let part = NecklacePartition::new(s);
        let reps: Vec<u64> = part
            .necklaces()
            .iter()
            .map(Necklace::representative)
            .collect();
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        assert_eq!(reps, sorted);
        for neck in part.necklaces() {
            for node in neck.nodes(s) {
                assert!(neck.representative() <= node);
            }
        }
    }

    /// The retired per-node construction, kept as the oracle for the FKM
    /// enumeration pass: scan codes in increasing order, claim each
    /// unvisited code as a representative and rotate through its members.
    fn reference_partition(space: WordSpace) -> (Vec<u32>, Vec<(u64, u32)>) {
        let count = space.count() as usize;
        let mut membership = vec![u32::MAX; count];
        let mut necklaces = Vec::new();
        for code in space.iter() {
            if membership[code as usize] != u32::MAX {
                continue;
            }
            let id = necklaces.len() as u32;
            let period = space.period(code);
            necklaces.push((code, period));
            let mut cur = code;
            for _ in 0..period {
                membership[cur as usize] = id;
                cur = space.rotate_left(cur);
            }
        }
        (membership, necklaces)
    }

    #[test]
    fn fkm_build_matches_per_node_reference() {
        for (d, n) in [
            (2u64, 1u32),
            (2, 8),
            (3, 5),
            (4, 3),
            (5, 2),
            (6, 3),
            (13, 2),
        ] {
            let s = WordSpace::new(d, n);
            let part = NecklacePartition::new(s);
            let (membership, necklaces) = reference_partition(s);
            assert_eq!(part.membership(), &membership[..], "d={d} n={n}");
            assert_eq!(part.len(), necklaces.len(), "d={d} n={n}");
            for (neck, &(rep, period)) in part.necklaces().iter().zip(&necklaces) {
                assert_eq!(neck.representative(), rep, "d={d} n={n}");
                assert_eq!(neck.len() as u32, period, "d={d} n={n}");
            }
        }
    }

    #[test]
    fn sharded_build_is_bit_identical_at_any_shard_count() {
        for (d, n) in [(2u64, 9u32), (3, 4), (4, 3), (5, 2)] {
            let s = WordSpace::new(d, n);
            let serial = NecklacePartition::new(s);
            for shards in [2usize, 3, 5, 16, 1000] {
                let sharded = NecklacePartition::with_shards(s, shards);
                assert_eq!(sharded.membership(), serial.membership(), "shards={shards}");
                assert_eq!(sharded.necklaces(), serial.necklaces(), "shards={shards}");
                assert_eq!(
                    sharded.member_offsets(),
                    serial.member_offsets(),
                    "shards={shards}"
                );
                for id in 0..serial.len() {
                    assert_eq!(sharded.members(id), serial.members(id), "shards={shards}");
                }
            }
        }
    }

    #[test]
    fn members_csr_matches_rotation_order() {
        for (d, n) in [(2u64, 6u32), (3, 4)] {
            let s = WordSpace::new(d, n);
            let part = NecklacePartition::new(s);
            for (id, neck) in part.necklaces().iter().enumerate() {
                let members: Vec<u64> = part.members(id).iter().map(|&v| u64::from(v)).collect();
                assert_eq!(members, neck.nodes(s), "d={d} n={n} id={id}");
                assert_eq!(
                    part.member_offsets()[id + 1] - part.member_offsets()[id],
                    neck.len() as u32
                );
            }
        }
    }

    #[test]
    fn faulty_marking_example_2_1() {
        // Faults at 020 and 112 in B(3,3) make necklaces [002] and [112]
        // faulty; 6 of the 27 nodes are lost.
        let s = WordSpace::new(3, 3);
        let part = NecklacePartition::new(s);
        let faults = [s.parse("020").unwrap(), s.parse("112").unwrap()];
        let mask = part.faulty_necklaces(faults);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
        assert_eq!(part.faulty_node_count(&mask), 6);
        // 21 nodes remain, matching the cycle length of Example 2.1.
        assert_eq!(s.count() as usize - part.faulty_node_count(&mask), 21);
    }
}
