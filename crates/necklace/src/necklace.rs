//! Necklace structure: rotation classes of d-ary words.

use dbg_algebra::words::WordSpace;

/// A necklace `[y]`: the rotation class of a word, named by its minimal
/// rotation `y` (the paper's representative convention, Section 2.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Necklace {
    representative: u64,
    length: u32,
}

impl Necklace {
    /// The necklace containing word `code` in the given space.
    #[must_use]
    pub fn containing(space: WordSpace, code: u64) -> Self {
        Necklace {
            representative: space.canonical_rotation(code),
            length: space.period(code),
        }
    }

    /// The minimal word of the necklace (its name `[y]`).
    #[must_use]
    pub fn representative(&self) -> u64 {
        self.representative
    }

    /// The necklace length (the period of its words); always divides n.
    #[must_use]
    pub fn len(&self) -> usize {
        self.length as usize
    }

    /// Necklaces are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The nodes of the necklace in traversal order
    /// `y, π(y), π²(y), …` — this is exactly the cycle N(y) of B(d,n).
    #[must_use]
    pub fn nodes(&self, space: WordSpace) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.length as usize);
        let mut cur = self.representative;
        for _ in 0..self.length {
            out.push(cur);
            cur = space.rotate_left(cur);
        }
        out
    }

    /// The successor of `code` *within its necklace*: its left rotation.
    /// (For an aperiodic word this is the next node of the cycle N(x).)
    #[must_use]
    pub fn successor_of(space: WordSpace, code: u64) -> u64 {
        space.rotate_left(code)
    }

    /// Whether `code` belongs to this necklace.
    #[must_use]
    pub fn contains(&self, space: WordSpace, code: u64) -> bool {
        space.canonical_rotation(code) == self.representative
    }

    /// Formats the necklace as `[digits]`.
    #[must_use]
    pub fn format(&self, space: WordSpace) -> String {
        format!("[{}]", space.format(self.representative))
    }
}

/// The partition of all d^n words into necklaces, with O(1) lookup from a
/// word to its necklace id.
#[derive(Clone, Debug)]
pub struct NecklacePartition {
    space: WordSpace,
    /// For each word code, the id (index into `necklaces`) of its necklace.
    membership: Vec<u32>,
    /// The necklaces, ordered by increasing representative.
    necklaces: Vec<Necklace>,
}

impl NecklacePartition {
    /// Builds the necklace partition of the words of `space`.
    #[must_use]
    pub fn new(space: WordSpace) -> Self {
        let count = space.count() as usize;
        let mut membership = vec![u32::MAX; count];
        let mut necklaces = Vec::new();
        for code in space.iter() {
            if membership[code as usize] != u32::MAX {
                continue;
            }
            // `code` is the smallest unvisited word, hence the representative.
            let id = necklaces.len() as u32;
            let neck = Necklace {
                representative: code,
                length: space.period(code),
            };
            let mut cur = code;
            for _ in 0..neck.length {
                membership[cur as usize] = id;
                cur = space.rotate_left(cur);
            }
            necklaces.push(neck);
        }
        NecklacePartition {
            space,
            membership,
            necklaces,
        }
    }

    /// The word space being partitioned.
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// Number of necklaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.necklaces.len()
    }

    /// Never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The necklace id of a word.
    #[must_use]
    pub fn id_of(&self, code: u64) -> usize {
        self.membership[code as usize] as usize
    }

    /// The raw word → necklace-id table, indexed by word code. Exposed so
    /// hot paths (the FFC embedding engine, the distributed protocol) can
    /// do flat-array lookups without going through `id_of`'s `usize`
    /// conversions per call.
    #[must_use]
    pub fn membership(&self) -> &[u32] {
        &self.membership
    }

    /// The necklace with a given id.
    #[must_use]
    pub fn necklace(&self, id: usize) -> &Necklace {
        &self.necklaces[id]
    }

    /// All necklaces, ordered by increasing representative.
    #[must_use]
    pub fn necklaces(&self) -> &[Necklace] {
        &self.necklaces
    }

    /// The necklace containing a word.
    #[must_use]
    pub fn necklace_of(&self, code: u64) -> &Necklace {
        &self.necklaces[self.id_of(code)]
    }

    /// Whether two words are on the same necklace.
    #[must_use]
    pub fn same_necklace(&self, a: u64, b: u64) -> bool {
        self.id_of(a) == self.id_of(b)
    }

    /// Marks the necklaces containing any of `faulty_nodes` as faulty and
    /// returns a boolean mask indexed by necklace id. This is the paper's
    /// "a necklace is faulty if it contains a faulty node" rule.
    #[must_use]
    pub fn faulty_necklaces<I: IntoIterator<Item = u64>>(&self, faulty_nodes: I) -> Vec<bool> {
        let mut mask = vec![false; self.necklaces.len()];
        for node in faulty_nodes {
            mask[self.id_of(node)] = true;
        }
        mask
    }

    /// The total number of nodes living on faulty necklaces (the quantity
    /// N_F of Section 2.5, bounded by n·f).
    #[must_use]
    pub fn faulty_node_count(&self, faulty_mask: &[bool]) -> usize {
        self.necklaces
            .iter()
            .enumerate()
            .filter(|(id, _)| faulty_mask[*id])
            .map(|(_, n)| n.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn necklace_of_1120_matches_paper() {
        // N(1120) = [0112] = (1120, 1201, 2011, 0112) — Section 2.1.
        let s = WordSpace::new(3, 4);
        let x = s.parse("1120").unwrap();
        let neck = Necklace::containing(s, x);
        assert_eq!(neck.representative(), s.parse("0112").unwrap());
        assert_eq!(neck.len(), 4);
        assert_eq!(neck.format(s), "[0112]");
        let nodes = neck.nodes(s);
        assert_eq!(nodes.len(), 4);
        assert!(nodes.contains(&x));
        assert!(neck.contains(s, x));
        assert!(!neck.contains(s, s.parse("0000").unwrap()));
    }

    #[test]
    fn short_necklaces_have_period_length() {
        let s = WordSpace::new(2, 6);
        let neck = Necklace::containing(s, s.parse("010101").unwrap());
        assert_eq!(neck.len(), 2);
        assert_eq!(neck.nodes(s).len(), 2);
        let constant = Necklace::containing(s, 0);
        assert_eq!(constant.len(), 1);
    }

    #[test]
    fn partition_covers_all_words_disjointly() {
        for (d, n) in [(2u64, 6u32), (3, 4), (4, 3)] {
            let s = WordSpace::new(d, n);
            let part = NecklacePartition::new(s);
            let total: usize = part.necklaces().iter().map(Necklace::len).sum();
            assert_eq!(total as u64, s.count(), "d={d} n={n}");
            // Membership is consistent with canonical rotations.
            for code in s.iter() {
                let neck = part.necklace_of(code);
                assert_eq!(neck.representative(), s.canonical_rotation(code));
                assert!(part.same_necklace(code, s.rotate_left(code)));
            }
        }
    }

    #[test]
    fn partition_count_matches_known_values() {
        // B(2,3) has 4 necklaces: [000], [001], [011], [111].
        let part = NecklacePartition::new(WordSpace::new(2, 3));
        assert_eq!(part.len(), 4);
        // B(3,3) has 11 necklaces (used in Example 2.1's figure: 9 nonfaulty + 2 faulty).
        let part33 = NecklacePartition::new(WordSpace::new(3, 3));
        assert_eq!(part33.len(), 11);
    }

    #[test]
    fn representatives_are_sorted_and_minimal() {
        let s = WordSpace::new(3, 4);
        let part = NecklacePartition::new(s);
        let reps: Vec<u64> = part
            .necklaces()
            .iter()
            .map(Necklace::representative)
            .collect();
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        assert_eq!(reps, sorted);
        for neck in part.necklaces() {
            for node in neck.nodes(s) {
                assert!(neck.representative() <= node);
            }
        }
    }

    #[test]
    fn faulty_marking_example_2_1() {
        // Faults at 020 and 112 in B(3,3) make necklaces [002] and [112]
        // faulty; 6 of the 27 nodes are lost.
        let s = WordSpace::new(3, 3);
        let part = NecklacePartition::new(s);
        let faults = [s.parse("020").unwrap(), s.parse("112").unwrap()];
        let mask = part.faulty_necklaces(faults);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
        assert_eq!(part.faulty_node_count(&mask), 6);
        // 21 nodes remain, matching the cycle length of Example 2.1.
        assert_eq!(s.count() as usize - part.faulty_node_count(&mask), 21);
    }
}
