//! Necklaces (rotation classes) of d-ary words and their enumeration.
//!
//! The node set of B(d,n) is partitioned by the cycles
//! `N(x) = (x_1…x_n, x_2…x_n x_1, …)` obtained by rotating a word — the
//! paper calls these **necklaces** (Section 2.1). They are simultaneously
//!
//! * the small disjoint cycles the FFC algorithm stitches into a large
//!   fault-free ring (Chapter 2), and
//! * the combinatorial objects counted in Chapter 4.
//!
//! [`necklace`] holds the structural machinery (representatives, periods,
//! the partition of B(d,n), fault marking); [`count`] holds the
//! Möbius-inversion counting formulas (Propositions 4.1 and 4.2) together
//! with the specialisations by length, weight and type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod necklace;

pub use count::{
    count_necklaces_by_length, count_necklaces_by_type, count_necklaces_by_weight,
    count_necklaces_by_weight_and_length, count_necklaces_total, tuples_of_weight,
};
pub use necklace::{Necklace, NecklacePartition};
