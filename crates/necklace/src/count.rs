//! Necklace counting by Möbius inversion (Chapter 4).
//!
//! The paper's Propositions 4.1 and 4.2: for any pair of functions (f, g)
//! satisfying Conditions A and B, the number of necklaces of length t | n
//! whose nodes satisfy `f(x) = g(n)` is
//!
//! ```text
//! (1/t) Σ_{j | t} #Γ(j) · μ(t/j)           (Proposition 4.1)
//! ```
//!
//! and the total number of such necklaces is
//!
//! ```text
//! (1/n) Σ_{j | n} #Γ(j) · φ(n/j)           (Proposition 4.2)
//! ```
//!
//! where `Γ(j) = {x ∈ Z_d^j : f(x) = g(j)}`. The module exposes the general
//! inversion as [`count_by_class_size`] / [`count_total_by_class_size`] and
//! the paper's concrete specialisations: counting by length, by weight (for
//! any alphabet size, using the bounded-composition counts c_d(n,k)), and
//! by type.

use dbg_algebra::num::{divisors, euler_phi, mobius, pow};

/// Binomial coefficient C(n, k) as u128 (exact for the ranges used here).
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * u128::from(n - i) / u128::from(i + 1);
    }
    num
}

/// c_d(n, k): the number of d-ary n-tuples of weight (digit sum) k, i.e.
/// the number of ways to choose k among n objects with each object taken at
/// most d−1 times. Chapter 4 gives the inclusion–exclusion form
/// `Σ_i (−1)^i C(n,i) C(n−1+k−d·i, n−1)`.
#[must_use]
pub fn tuples_of_weight(d: u64, n: u64, k: u64) -> u128 {
    if d == 0 || n == 0 {
        return u128::from(k == 0);
    }
    if k > n * (d - 1) {
        return 0;
    }
    let mut total: i128 = 0;
    for i in 0..=k / d {
        let term = binomial(n, i) as i128 * binomial(n - 1 + k - d * i, n - 1) as i128;
        if i % 2 == 0 {
            total += term;
        } else {
            total -= term;
        }
    }
    debug_assert!(total >= 0);
    total as u128
}

/// The generic Proposition 4.1: the number of necklaces of length `t`
/// (which must divide n) whose nodes lie in the class whose size on
/// j-tuples is `class_size(j)` (= #Γ(j)).
///
/// `class_size(j)` must return 0 whenever the class is empty or undefined
/// for length j (e.g. a fractional target weight).
#[must_use]
pub fn count_by_class_size<F: Fn(u64) -> u128>(t: u64, class_size: F) -> u128 {
    let mut sum: i128 = 0;
    for j in divisors(t) {
        sum += class_size(j) as i128 * i128::from(mobius(t / j));
    }
    debug_assert!(sum >= 0, "Möbius inversion produced a negative count");
    (sum / i128::from(t)) as u128
}

/// The generic Proposition 4.2: the total number of necklaces (over all
/// lengths dividing n) whose nodes lie in the class of size `class_size(j)`.
#[must_use]
pub fn count_total_by_class_size<F: Fn(u64) -> u128>(n: u64, class_size: F) -> u128 {
    let mut sum: u128 = 0;
    for j in divisors(n) {
        sum += class_size(j) * u128::from(euler_phi(n / j));
    }
    sum / u128::from(n)
}

/// The number of necklaces of length `t` in B(d,n) (t must divide n):
/// `(1/t) Σ_{j|t} d^j μ(t/j)`.
#[must_use]
pub fn count_necklaces_by_length(d: u64, n: u64, t: u64) -> u128 {
    assert!(
        t >= 1 && n.is_multiple_of(t),
        "necklace length must divide n"
    );
    count_by_class_size(t, |j| u128::from(pow(d, j as u32)))
}

/// The total number of necklaces in B(d,n): `(1/n) Σ_{j|n} d^j φ(n/j)`.
#[must_use]
pub fn count_necklaces_total(d: u64, n: u64) -> u128 {
    count_total_by_class_size(n, |j| u128::from(pow(d, j as u32)))
}

/// The number of necklaces of length `t` in B(d,n) made up of nodes of
/// weight `k` (t must divide n). The class size for j-tuples is
/// c_d(j, jk/n) when jk/n is an integer and 0 otherwise.
#[must_use]
pub fn count_necklaces_by_weight_and_length(d: u64, n: u64, k: u64, t: u64) -> u128 {
    assert!(
        t >= 1 && n.is_multiple_of(t),
        "necklace length must divide n"
    );
    count_by_class_size(t, |j| {
        if (j * k).is_multiple_of(n) {
            tuples_of_weight(d, j, j * k / n)
        } else {
            0
        }
    })
}

/// The total number of necklaces of weight `k` in B(d,n).
#[must_use]
pub fn count_necklaces_by_weight(d: u64, n: u64, k: u64) -> u128 {
    count_total_by_class_size(n, |j| {
        if (j * k).is_multiple_of(n) {
            tuples_of_weight(d, j, j * k / n)
        } else {
            0
        }
    })
}

/// Multinomial coefficient `(Σ k_i)! / Π k_i!`.
#[must_use]
pub fn multinomial(parts: &[u64]) -> u128 {
    let mut total = 0u64;
    let mut result: u128 = 1;
    for &k in parts {
        total += k;
        result *= binomial(total, k);
    }
    result
}

/// The number of necklaces of length `t` in B(d,n) whose nodes have type
/// `K = [k_0, …, k_{d−1}]` (digit a occurring k_a times, Σ k_a = n).
/// The class size for j-tuples is the multinomial `j!/Π(j·k_a/n)!` when all
/// the scaled counts are integers, else 0.
#[must_use]
pub fn count_necklaces_by_type(d: u64, n: u64, node_type: &[u64], t: u64) -> u128 {
    assert_eq!(node_type.len() as u64, d, "type vector must have d entries");
    assert_eq!(
        node_type.iter().sum::<u64>(),
        n,
        "type entries must sum to n"
    );
    assert!(
        t >= 1 && n.is_multiple_of(t),
        "necklace length must divide n"
    );
    count_by_class_size(t, |j| {
        if node_type.iter().all(|&k| (j * k) % n == 0) {
            let parts: Vec<u64> = node_type.iter().map(|&k| j * k / n).collect();
            multinomial(&parts)
        } else {
            0
        }
    })
}

/// The total number of necklaces of the given type in B(d,n), over all
/// lengths dividing n.
#[must_use]
pub fn count_necklaces_by_type_total(d: u64, n: u64, node_type: &[u64]) -> u128 {
    assert_eq!(node_type.len() as u64, d, "type vector must have d entries");
    assert_eq!(
        node_type.iter().sum::<u64>(),
        n,
        "type entries must sum to n"
    );
    count_total_by_class_size(n, |j| {
        if node_type.iter().all(|&k| (j * k) % n == 0) {
            let parts: Vec<u64> = node_type.iter().map(|&k| j * k / n).collect();
            multinomial(&parts)
        } else {
            0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::necklace::NecklacePartition;
    use dbg_algebra::words::WordSpace;

    #[test]
    fn binomial_and_multinomial() {
        assert_eq!(binomial(6, 2), 15);
        assert_eq!(binomial(12, 4), 495);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(multinomial(&[3, 2, 1]), 60);
        assert_eq!(multinomial(&[0, 0]), 1);
    }

    #[test]
    fn tuples_of_weight_small_cases() {
        // Binary: c_2(n,k) = C(n,k).
        for n in 0..8u64 {
            for k in 0..=n {
                assert_eq!(tuples_of_weight(2, n, k), binomial(n, k));
            }
        }
        // Ternary 4-tuples of weight 4: 19 (used in the paper's B(3,4) example).
        assert_eq!(tuples_of_weight(3, 4, 4), 19);
        assert_eq!(tuples_of_weight(3, 2, 2), 3);
        assert_eq!(tuples_of_weight(3, 1, 1), 1);
        // Out-of-range weights.
        assert_eq!(tuples_of_weight(3, 2, 5), 0);
    }

    #[test]
    fn tuples_of_weight_matches_enumeration() {
        for (d, n) in [(3u64, 4u32), (4, 3), (5, 3)] {
            let s = WordSpace::new(d, n);
            let mut by_weight = std::collections::HashMap::new();
            for code in s.iter() {
                *by_weight.entry(s.weight(code)).or_insert(0u128) += 1;
            }
            for k in 0..=(u64::from(n) * (d - 1)) {
                assert_eq!(
                    tuples_of_weight(d, u64::from(n), k),
                    by_weight.get(&k).copied().unwrap_or(0),
                    "d={d} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn paper_example_length_6_in_b2_12() {
        // (1/6)[2μ(6) + 4μ(3) + 8μ(2) + 64μ(1)] = (2 − 4 − 8 + 64)/6 = 9.
        assert_eq!(count_necklaces_by_length(2, 12, 6), 9);
    }

    #[test]
    fn paper_example_total_in_b2_12() {
        // (1/12)[2φ(12)+4φ(6)+8φ(4)+16φ(3)+64φ(2)+4096φ(1)] = 352.
        assert_eq!(count_necklaces_total(2, 12), 352);
    }

    #[test]
    fn paper_example_weight_4_length_6_in_b2_12() {
        // (1/6)[C(6,2)μ(1) + C(3,1)μ(2)] = (15 − 3)/6 = 2.
        assert_eq!(count_necklaces_by_weight_and_length(2, 12, 4, 6), 2);
    }

    #[test]
    fn paper_example_weight_4_total_in_b2_12() {
        // (1/12)[C(12,4)φ(1) + C(6,2)φ(2) + C(3,1)φ(4)] = (495+15+6)/12 = 43.
        assert_eq!(count_necklaces_by_weight(2, 12, 4), 43);
    }

    #[test]
    fn paper_example_weight_4_length_4_in_b3_4() {
        // (1/4)[c3(4,4)μ(1) + c3(2,2)μ(2) + c3(1,1)μ(4)] = (19 − 3)/4 = 4.
        assert_eq!(count_necklaces_by_weight_and_length(3, 4, 4, 4), 4);
    }

    #[test]
    fn totals_match_explicit_partition() {
        for (d, n) in [(2u64, 8u32), (3, 5), (4, 4), (5, 3)] {
            let part = NecklacePartition::new(WordSpace::new(d, n));
            assert_eq!(
                count_necklaces_total(d, u64::from(n)),
                part.len() as u128,
                "d={d} n={n}"
            );
        }
    }

    #[test]
    fn length_counts_match_explicit_partition() {
        for (d, n) in [(2u64, 12u32), (3, 6), (4, 4)] {
            let part = NecklacePartition::new(WordSpace::new(d, n));
            for t in dbg_algebra::num::divisors(u64::from(n)) {
                let explicit = part
                    .necklaces()
                    .iter()
                    .filter(|x| x.len() as u64 == t)
                    .count();
                assert_eq!(
                    count_necklaces_by_length(d, u64::from(n), t),
                    explicit as u128,
                    "d={d} n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn weight_counts_match_explicit_partition() {
        for (d, n) in [(2u64, 10u32), (3, 5)] {
            let s = WordSpace::new(d, n);
            let part = NecklacePartition::new(s);
            for k in 0..=(u64::from(n) * (d - 1)) {
                let explicit = part
                    .necklaces()
                    .iter()
                    .filter(|x| s.weight(x.representative()) == k)
                    .count();
                assert_eq!(
                    count_necklaces_by_weight(d, u64::from(n), k),
                    explicit as u128,
                    "d={d} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn type_counts_match_explicit_partition() {
        let d = 3u64;
        let n = 4u32;
        let s = WordSpace::new(d, n);
        let part = NecklacePartition::new(s);
        // Check every type vector that sums to n.
        for k0 in 0..=4u64 {
            for k1 in 0..=(4 - k0) {
                let k2 = 4 - k0 - k1;
                let ty = vec![k0, k1, k2];
                let explicit_total = part
                    .necklaces()
                    .iter()
                    .filter(|x| {
                        s.word_type(x.representative())
                            .iter()
                            .map(|&c| u64::from(c))
                            .collect::<Vec<_>>()
                            == ty
                    })
                    .count();
                assert_eq!(
                    count_necklaces_by_type_total(d, u64::from(n), &ty),
                    explicit_total as u128,
                    "type {ty:?}"
                );
            }
        }
    }

    #[test]
    fn binary_type_equals_weight() {
        // For d = 2, type [n−k, k] iff weight k (noted at the end of Ch. 4).
        for n in 2..=10u64 {
            for k in 0..=n {
                assert_eq!(
                    count_necklaces_by_type_total(2, n, &[n - k, k]),
                    count_necklaces_by_weight(2, n, k)
                );
            }
        }
    }
}
