//! Criterion benchmark: disjoint Hamiltonian cycle construction and
//! edge-fault-tolerant embedding (the Chapter 3 machinery behind Tables 3.1
//! and 3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbg_graph::DeBruijn;
use debruijn_core::{DisjointHamiltonianCycles, EdgeFaultEmbedder, MaximalCycleFamily};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_maximal_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_cycle_family");
    group.sample_size(10);
    for (d, n) in [(2u64, 10u32), (4, 5), (8, 3), (9, 3)] {
        group.bench_with_input(BenchmarkId::new(format!("B({d},·)"), n), &n, |b, &n| {
            b.iter(|| MaximalCycleFamily::new(d, n));
        });
    }
    group.finish();
}

fn bench_disjoint_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_hamiltonian_cycles");
    group.sample_size(10);
    for (d, n) in [(4u64, 4u32), (8, 3), (13, 2), (16, 2), (6, 3), (12, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}")),
            &(d, n),
            |b, &(d, n)| {
                b.iter(|| DisjointHamiltonianCycles::construct(d, n));
            },
        );
    }
    group.finish();
}

fn bench_edge_fault_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_fault_embedding");
    group.sample_size(10);
    for (d, n) in [(5u64, 3u32), (8, 3), (9, 2), (12, 2)] {
        let g = DeBruijn::new(d, n);
        let tolerance = EdgeFaultEmbedder::tolerance(d) as usize;
        let mut rng = StdRng::seed_from_u64(d * 1000 + u64::from(n));
        let mut faults = Vec::new();
        while faults.len() < tolerance {
            let u = rng.gen_range(0..g.len());
            let v = g.successor(u, rng.gen_range(0..d));
            if u != v && !faults.contains(&(u, v)) {
                faults.push((u, v));
            }
        }
        let embedder = EdgeFaultEmbedder::new(d, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}_f{tolerance}")),
            &faults,
            |b, faults| {
                b.iter(|| embedder.hamiltonian_avoiding(faults));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maximal_cycle,
    bench_disjoint_family,
    bench_edge_fault_embedding
);
criterion_main!(benches);
