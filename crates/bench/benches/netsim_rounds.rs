//! Criterion benchmark: the distributed FFC protocol and ring collectives on
//! the message-passing simulator (the Section 2.4 implementation and the
//! Chapter 3 all-to-all motivation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbg_netsim::{all_to_all_broadcast, split_all_to_all_broadcast, DistributedFfc};
use debruijn_core::{DisjointHamiltonianCycles, Ffc};

fn bench_distributed_ffc(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_ffc");
    group.sample_size(10);
    for (d, n) in [(2u64, 6u32), (2, 8), (3, 4), (4, 3)] {
        let runner = DistributedFfc::new(d, n);
        let fault = vec![d as usize + 1];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}")),
            &fault,
            |b, fault| {
                b.iter(|| runner.run(fault));
            },
        );
    }
    group.finish();
}

fn bench_ring_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_to_all");
    group.sample_size(10);
    let ffc = Ffc::new(2, 8);
    let ring = ffc.embed(&[]).cycle;
    group.bench_function("single_ring_B(2,8)", |b| {
        b.iter(|| all_to_all_broadcast(ffc.graph(), &ring));
    });
    let dhc = DisjointHamiltonianCycles::construct(4, 4);
    let g = dbg_graph::DeBruijn::new(4, 4);
    group.bench_function("split_3_rings_B(4,4)", |b| {
        b.iter(|| split_all_to_all_broadcast(&g, dhc.cycles()));
    });
    group.finish();
}

criterion_group!(benches, bench_distributed_ffc, bench_ring_broadcast);
criterion_main!(benches);
