//! Criterion benchmark: ablations called out in DESIGN.md.
//!
//! * Necklace-join FFC versus the necklace-oblivious greedy baseline (the
//!   greedy walk is not even faster, and its rings are far shorter — the
//!   achieved lengths are printed once at start-up so the quality gap is
//!   visible next to the timing numbers).
//! * Centralized versus distributed FFC.
//! * Direct prime-power strategy versus Rees-product composition at equal
//!   node counts.

use criterion::{criterion_group, criterion_main, Criterion};
use dbg_baselines::greedy_fault_free_cycle;
use dbg_netsim::DistributedFfc;
use debruijn_core::{DisjointHamiltonianCycles, Ffc};

fn bench_ffc_vs_greedy(c: &mut Criterion) {
    let d = 2u64;
    let n = 9u32;
    let ffc = Ffc::new(d, n);
    let faults = vec![3usize, 77, 200];
    let ffc_len = ffc.embed(&faults).cycle.len();
    let greedy_len = greedy_fault_free_cycle(ffc.graph(), &faults, 1, 8).len();
    eprintln!(
        "[ablation] B({d},{n}) with {} faults: FFC ring length = {ffc_len}, greedy ring length = {greedy_len}",
        faults.len()
    );

    let mut group = c.benchmark_group("ffc_vs_greedy_B(2,9)");
    group.sample_size(10);
    group.bench_function("ffc", |b| b.iter(|| ffc.embed(&faults)));
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_fault_free_cycle(ffc.graph(), &faults, 1, 8))
    });
    group.finish();
}

fn bench_centralized_vs_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_vs_distributed_B(3,4)");
    group.sample_size(10);
    let centralized = Ffc::new(3, 4);
    let distributed = DistributedFfc::new(3, 4);
    let faults = vec![5usize];
    let rounds = distributed.run(&faults).rounds;
    eprintln!(
        "[ablation] distributed FFC on B(3,4): {} total rounds (broadcast depth {})",
        rounds.total, rounds.broadcast_depth
    );
    group.bench_function("centralized", |b| b.iter(|| centralized.embed(&faults)));
    group.bench_function("distributed", |b| b.iter(|| distributed.run(&faults)));
    group.finish();
}

fn bench_prime_power_vs_rees(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_hc_construction_path");
    group.sample_size(10);
    // 64 nodes each: prime power d = 8 (direct strategy) vs d = 6 with 36…
    // closest comparable composite is d = 6, n = 2 (36 nodes) vs d = 8, n = 2.
    group.bench_function("prime_power_d8_n2", |b| {
        b.iter(|| DisjointHamiltonianCycles::construct(8, 2))
    });
    group.bench_function("rees_product_d6_n2", |b| {
        b.iter(|| DisjointHamiltonianCycles::construct(6, 2))
    });
    group.bench_function("rees_product_d12_n2", |b| {
        b.iter(|| DisjointHamiltonianCycles::construct(12, 2))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ffc_vs_greedy,
    bench_centralized_vs_distributed,
    bench_prime_power_vs_rees
);
criterion_main!(benches);
