//! Criterion benchmark: Chapter 4 necklace counting — closed formulas versus
//! explicit enumeration of the partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbg_algebra::words::WordSpace;
use dbg_necklace::{count_necklaces_by_weight, count_necklaces_total, NecklacePartition};

fn bench_formula_vs_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("necklace_total_count");
    for n in [12u32, 16, 20] {
        group.bench_with_input(BenchmarkId::new("formula_B(2,n)", n), &n, |b, &n| {
            b.iter(|| count_necklaces_total(2, u64::from(n)));
        });
    }
    for n in [12u32, 16] {
        group.bench_with_input(BenchmarkId::new("enumeration_B(2,n)", n), &n, |b, &n| {
            b.iter(|| NecklacePartition::new(WordSpace::new(2, n)).len());
        });
    }
    group.finish();
}

fn bench_weight_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("necklace_weight_count");
    for (d, n, k) in [(2u64, 20u64, 10u64), (3, 12, 12), (4, 10, 15)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_n{n}_k{k}")),
            &(d, n, k),
            |b, &(d, n, k)| {
                b.iter(|| count_necklaces_by_weight(d, n, k));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_formula_vs_enumeration, bench_weight_counts);
criterion_main!(benches);
