//! Criterion benchmark: the FFC embedding (Tables 2.1/2.2 workload).
//!
//! Measures the wall-clock cost of one fault-free-cycle embedding as a
//! function of network size and fault count, plus the §2.5.2 simulation
//! loop itself: a full Table 2.1 sweep (B(2,10), f ≤ 8, 1000 trials) run
//! three ways — the textbook reference implementation rebuilt from scratch
//! per trial ("naive"), the engine with a fresh scratch per trial, and the
//! engine with one reused scratch (the production configuration). The
//! naive baseline is kept so every run shows the engine's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use debruijn_core::{EmbedScratch, Ffc};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn random_faults(total: usize, f: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
    chosen.to_vec()
}

/// The Table 2.1 trial schedule: `trials` fault sets with f cycling 0..=8.
fn sweep_fault_sets(total: usize, trials: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    (0..trials)
        .map(|t| {
            let f = t % 9;
            let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
            chosen.to_vec()
        })
        .collect()
}

fn bench_ffc_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_embed_by_size");
    group.sample_size(10);
    for n in [8u32, 10, 12, 14] {
        let ffc = Ffc::new(2, n);
        let faults = random_faults(ffc.graph().len(), 2, 42);
        let mut scratch = EmbedScratch::new();
        group.bench_with_input(BenchmarkId::new("B(2,n)", n), &n, |b, _| {
            b.iter(|| ffc.embed_into(&mut scratch, &faults));
        });
    }
    for (d, n) in [(4u64, 5u32), (4, 6), (8, 4)] {
        let ffc = Ffc::new(d, n);
        let faults = random_faults(ffc.graph().len(), 2, 42);
        let mut scratch = EmbedScratch::new();
        group.bench_with_input(BenchmarkId::new(format!("B({d},n)"), n), &n, |b, _| {
            b.iter(|| ffc.embed_into(&mut scratch, &faults));
        });
    }
    group.finish();
}

fn bench_ffc_by_fault_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_embed_by_faults_B(2,10)");
    group.sample_size(10);
    let ffc = Ffc::new(2, 10);
    let mut scratch = EmbedScratch::new();
    for f in [0usize, 1, 5, 10, 30, 50] {
        let faults = random_faults(ffc.graph().len(), f, 7 + f as u64);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| ffc.embed_into(&mut scratch, &faults));
        });
    }
    group.finish();
}

/// Engine versus reference on a single embedding, at two sizes.
fn bench_engine_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_engine_vs_reference");
    group.sample_size(10);
    for (d, n) in [(2u64, 10u32), (4, 5)] {
        let ffc = Ffc::new(d, n);
        let faults = random_faults(ffc.graph().len(), 4, 13);
        let mut scratch = EmbedScratch::new();
        group.bench_with_input(
            BenchmarkId::new(format!("engine_B({d},·)"), n),
            &n,
            |b, _| b.iter(|| ffc.embed_into(&mut scratch, &faults)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("reference_B({d},·)"), n),
            &n,
            |b, _| b.iter(|| ffc.embed_reference(&faults)),
        );
    }
    group.finish();
}

/// The full Table 2.1 Monte-Carlo sweep (B(2,10), f ≤ 8, 1000 trials):
/// the acceptance workload for the engine. One iteration = one sweep.
fn bench_table_2_1_sweep(c: &mut Criterion) {
    let ffc = Ffc::new(2, 10);
    let sets = sweep_fault_sets(ffc.graph().len(), 1000, 0xB210);
    let mut group = c.benchmark_group("table_2_1_sweep_B(2,10)_1000_trials");
    group.sample_size(10);
    group.bench_function("naive_fresh_embed", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for faults in &sets {
                total += ffc.embed_reference(faults).component_size;
            }
            total
        });
    });
    group.bench_function("engine_fresh_scratch", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for faults in &sets {
                let mut scratch = EmbedScratch::new();
                total += ffc.embed_into(&mut scratch, faults).component_size;
            }
            total
        });
    });
    group.bench_function("engine_reused_scratch", |b| {
        let mut scratch = EmbedScratch::new();
        b.iter(|| {
            let mut total = 0usize;
            for faults in &sets {
                total += ffc.embed_into(&mut scratch, faults).component_size;
            }
            total
        });
    });
    group.finish();
}

fn bench_partition_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_setup");
    group.sample_size(10);
    for n in [10u32, 12, 14] {
        group.bench_with_input(
            BenchmarkId::new("necklace_partition_B(2,n)", n),
            &n,
            |b, &n| {
                b.iter(|| Ffc::new(2, n));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ffc_by_size,
    bench_ffc_by_fault_count,
    bench_engine_vs_reference,
    bench_table_2_1_sweep,
    bench_partition_setup
);
criterion_main!(benches);
