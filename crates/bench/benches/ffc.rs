//! Criterion benchmark: the FFC embedding (Tables 2.1/2.2 workload).
//!
//! Measures the wall-clock cost of one fault-free-cycle embedding as a
//! function of network size and fault count — the §2.5.2 simulation loop is
//! exactly repeated calls to this kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use debruijn_core::Ffc;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn random_faults(total: usize, f: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
    chosen.to_vec()
}

fn bench_ffc_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_embed_by_size");
    group.sample_size(10);
    for n in [8u32, 10, 12, 14] {
        let ffc = Ffc::new(2, n);
        let faults = random_faults(ffc.graph().len(), 2, 42);
        group.bench_with_input(BenchmarkId::new("B(2,n)", n), &n, |b, _| {
            b.iter(|| ffc.embed(&faults));
        });
    }
    for (d, n) in [(4u64, 5u32), (4, 6), (8, 4)] {
        let ffc = Ffc::new(d, n);
        let faults = random_faults(ffc.graph().len(), 2, 42);
        group.bench_with_input(BenchmarkId::new(format!("B({d},n)"), n), &n, |b, _| {
            b.iter(|| ffc.embed(&faults));
        });
    }
    group.finish();
}

fn bench_ffc_by_fault_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_embed_by_faults_B(2,10)");
    group.sample_size(10);
    let ffc = Ffc::new(2, 10);
    for f in [0usize, 1, 5, 10, 30, 50] {
        let faults = random_faults(ffc.graph().len(), f, 7 + f as u64);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| ffc.embed(&faults));
        });
    }
    group.finish();
}

fn bench_partition_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffc_setup");
    group.sample_size(10);
    for n in [10u32, 12, 14] {
        group.bench_with_input(BenchmarkId::new("necklace_partition_B(2,n)", n), &n, |b, &n| {
            b.iter(|| Ffc::new(2, n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ffc_by_size, bench_ffc_by_fault_count, bench_partition_setup);
criterion_main!(benches);
