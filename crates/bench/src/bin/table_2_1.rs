//! Regenerates Table 2.1: size of the component containing R = 0…01 and the
//! eccentricity of R in B(2,10) with f randomly distributed node faults.
//!
//! Usage: `cargo run --release -p dbg-bench --bin table_2_1 [trials]`
//! (default 200 trials per row; the paper does not state its trial count).

#![forbid(unsafe_code)]

use dbg_bench::report::render_component_table;
use dbg_bench::tables::{component_experiment, paper_fault_counts};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let rows = component_experiment(2, 10, &paper_fault_counts(), trials, 0xB210, threads);
    println!(
        "{}",
        render_component_table(
            &format!("Table 2.1 — B(2,10), root R = 0000000001, {trials} trials/row, seed 0xB210"),
            &rows
        )
    );
}
