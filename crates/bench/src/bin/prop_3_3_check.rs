//! Verification sweep for Propositions 3.3 and 3.4: a fault-free Hamiltonian
//! cycle exists under up to MAX{ψ(d)−1, φ(d)} link failures.
//!
//! Every row tallies per-trial outcomes — a trial beyond the guarantee that
//! finds no cycle is *recorded* in the row (the typed `NoFaultFreeCycle`
//! failure), never a reason to abort the sweep. Each (d, n) is swept both at
//! the guaranteed tolerance and one fault past it (marked `+1`, informational:
//! the theory promises nothing there). The process exits non-zero only if a
//! **guaranteed** row missed a cycle.
//!
//! Usage: `cargo run --release -p dbg-bench --bin prop_3_3_check [trials]`

#![forbid(unsafe_code)]

use dbg_bench::props::edge_fault_sweep_at;
use debruijn_core::{edge_fault_tolerance, phi_edge_bound, psi};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);

    println!("Propositions 3.3/3.4: fault-free Hamiltonian cycles under link failures");
    println!(
        "{:>3} {:>3} {:>6} {:>6} {:>10} {:>8} {:>10} {:>10}",
        "d", "n", "psi", "phi", "faults", "within", "trials", "successes"
    );
    let mut violations = Vec::new();
    for (d, n) in [
        (3u64, 3u32),
        (4, 3),
        (5, 2),
        (6, 2),
        (7, 2),
        (8, 2),
        (9, 2),
        (10, 2),
        (12, 2),
        (28, 2),
    ] {
        let tolerance = edge_fault_tolerance(d) as usize;
        for faults in [tolerance, tolerance + 1] {
            let s = edge_fault_sweep_at(d, n, faults, trials, 31 * d + u64::from(n));
            println!(
                "{:>3} {:>3} {:>6} {:>6} {:>9}{} {:>8} {:>10} {:>10}",
                d,
                n,
                psi(d),
                phi_edge_bound(d),
                s.faults,
                if faults > tolerance { "+" } else { " " },
                if s.guaranteed { "yes" } else { "no" },
                s.trials,
                s.successes
            );
            if s.guaranteed && s.successes != s.trials {
                violations.push(format!(
                    "tolerance violated for d={d}, n={n}: {}/{} trials succeeded",
                    s.successes, s.trials
                ));
            }
        }
    }
    if violations.is_empty() {
        println!("\nAll guaranteed rows met the tolerance (over-budget rows are informational).");
    } else {
        for v in &violations {
            eprintln!("FAILED: {v}");
        }
        std::process::exit(1);
    }
}
