//! Verification sweep for Propositions 3.3 and 3.4: a fault-free Hamiltonian
//! cycle exists under up to MAX{ψ(d)−1, φ(d)} link failures.
//!
//! Usage: `cargo run --release -p dbg-bench --bin prop_3_3_check [trials]`

use dbg_bench::props::edge_fault_sweep;
use debruijn_core::{edge_fault_tolerance, phi_edge_bound, psi};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);

    println!("Propositions 3.3/3.4: fault-free Hamiltonian cycles under link failures");
    println!(
        "{:>3} {:>3} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "d", "n", "psi", "phi", "tolerance", "trials", "successes"
    );
    for (d, n) in [
        (3u64, 3u32),
        (4, 3),
        (5, 2),
        (6, 2),
        (7, 2),
        (8, 2),
        (9, 2),
        (10, 2),
        (12, 2),
        (28, 2),
    ] {
        let s = edge_fault_sweep(d, n, trials, 31 * d + u64::from(n));
        println!(
            "{:>3} {:>3} {:>6} {:>6} {:>10} {:>10} {:>10}",
            d,
            n,
            psi(d),
            phi_edge_bound(d),
            edge_fault_tolerance(d),
            s.trials,
            s.successes
        );
        assert_eq!(s.successes, s.trials, "tolerance violated for d={d}, n={n}");
    }
    println!("\nAll sweeps met the guaranteed tolerance.");
}
