//! The Chapter 2 introduction comparison: fault-free ring length in the
//! 4096-node de Bruijn graph B(4,6) versus the 4096-node hypercube Q(12)
//! with two faulty processors, plus a small sweep over fault counts.
//!
//! Usage: `cargo run --release -p dbg-bench --bin hypercube_comparison [trials]`

#![forbid(unsafe_code)]

use dbg_bench::comparison::{compare, paper_headline};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let headline = paper_headline(trials, 0xCAFE);
    println!("Headline instance (paper, Chapter 2 intro): 4096 nodes, f = 2, {trials} trials");
    println!(
        "  B(4,6):  avg cycle {:.1} (guarantee {}), {} directed edges",
        headline.debruijn_cycle_avg, headline.debruijn_guarantee, headline.debruijn_edges
    );
    println!(
        "  Q(12):   avg cycle {:.1} (guarantee {}), {} undirected links",
        headline.hypercube_cycle_avg, headline.hypercube_guarantee, headline.hypercube_links
    );
    println!(
        "  link budget ratio (hypercube / de Bruijn): {:.2}\n",
        headline.hypercube_links as f64 / headline.debruijn_edges as f64
    );

    println!("Sweep at 4096 nodes:");
    println!(
        "{:>3} {:>16} {:>16} {:>16} {:>16}",
        "f", "B(4,6) avg", "B(4,6) bound", "Q(12) avg", "Q(12) bound"
    );
    for f in 1..=4usize {
        let row = compare(4, 6, 12, f, trials, 0xCAFE + f as u64);
        println!(
            "{:>3} {:>16.1} {:>16} {:>16.1} {:>16}",
            f,
            row.debruijn_cycle_avg,
            row.debruijn_guarantee,
            row.hypercube_cycle_avg,
            row.hypercube_guarantee
        );
    }
}
