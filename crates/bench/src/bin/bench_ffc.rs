//! Machine-readable FFC engine benchmark: writes `BENCH_ffc.json` at the
//! repository root so successive PRs can track the perf trajectory.
//!
//! For each of B(2,10), B(2,14), B(4,5) and B(4,7) it measures
//!
//! * `setup_ns` — one `Ffc::new` (partition + engine tables);
//! * `embed_ns` — mean wall time of one `embed_into` on a reused scratch
//!   over a Table 2.1-style trial schedule (f cycles 0..=8);
//! * `embeds_per_sec` — the reciprocal throughput of the same loop;
//! * `reference_embed_ns` — the retained textbook implementation on the
//!   same fault sets (fewer trials; it is the slow baseline);
//! * `speedup` — reference / engine.
//!
//! Usage: `cargo run --release -p dbg-bench --bin bench_ffc [out.json]`
//! (default output: `<repo root>/BENCH_ffc.json`).

use std::fmt::Write as _;
use std::time::Instant;

use debruijn_core::{EmbedScratch, Ffc};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One benchmarked configuration.
struct Config {
    d: u64,
    n: u32,
    /// Engine trials (reference runs `trials / 20`, at least 20).
    trials: usize,
}

/// A Table 2.1-style trial schedule: fault sets with f cycling 0..=8.
fn fault_sets(total: usize, trials: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    (0..trials)
        .map(|t| {
            let f = t % 9;
            let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
            chosen.to_vec()
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/../../BENCH_ffc.json", env!("CARGO_MANIFEST_DIR")));
    let configs = [
        Config {
            d: 2,
            n: 10,
            trials: 4000,
        },
        Config {
            d: 2,
            n: 14,
            trials: 400,
        },
        Config {
            d: 4,
            n: 5,
            trials: 4000,
        },
        Config {
            d: 4,
            n: 7,
            trials: 400,
        },
    ];

    let mut entries = Vec::new();
    for cfg in &configs {
        let setup_start = Instant::now();
        let ffc = Ffc::new(cfg.d, cfg.n);
        let setup_ns = setup_start.elapsed().as_nanos();

        let total = ffc.graph().len();
        let sets = fault_sets(total, cfg.trials, 0xB * u64::from(cfg.n) + cfg.d);
        let mut scratch = EmbedScratch::new();
        // Warm-up sizes every scratch buffer.
        let mut checksum = ffc.embed_into(&mut scratch, &sets[0]).component_size;

        let start = Instant::now();
        for faults in &sets {
            checksum ^= ffc.embed_into(&mut scratch, faults).component_size;
        }
        let engine = start.elapsed();
        let embed_ns = engine.as_nanos() as f64 / sets.len() as f64;
        let embeds_per_sec = sets.len() as f64 / engine.as_secs_f64();

        let ref_trials = (cfg.trials / 20).max(20).min(sets.len());
        let start = Instant::now();
        for faults in sets.iter().take(ref_trials) {
            checksum ^= ffc.embed_reference(faults).component_size;
        }
        let reference = start.elapsed();
        let reference_embed_ns = reference.as_nanos() as f64 / ref_trials as f64;

        let label = format!("B({},{})", cfg.d, cfg.n);
        eprintln!(
            "{label}: setup {:.2} ms, embed {:.1} µs ({embeds_per_sec:.0} embeds/s), \
             reference {:.1} µs, speedup {:.1}x  [checksum {checksum}]",
            setup_ns as f64 / 1e6,
            embed_ns / 1e3,
            reference_embed_ns / 1e3,
            reference_embed_ns / embed_ns,
        );

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
             \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
             \"embed_ns\": {embed_ns:.1},\n      \"embeds_per_sec\": {embeds_per_sec:.1},\n      \
             \"reference_trials\": {ref_trials},\n      \
             \"reference_embed_ns\": {reference_embed_ns:.1},\n      \
             \"speedup\": {:.2}\n    }}",
            sets.len(),
            reference_embed_ns / embed_ns,
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"ffc_embed\",\n  \"schedule\": \"f cycles 0..=8, random fault sets\",\n  \
         \"unit_note\": \"embed_ns is mean wall time per embed_into on a reused scratch\",\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_ffc.json");
    eprintln!("wrote {out_path}");
}
