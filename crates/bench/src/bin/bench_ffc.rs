//! Machine-readable FFC engine benchmark: writes `BENCH_ffc.json` at the
//! repository root so successive PRs can track the perf trajectory.
//!
//! For each of B(2,10), B(2,14), B(4,5) and B(4,7) it measures
//!
//! * `setup_ns` — one `Ffc::new` (partition + engine tables);
//! * `embed_ns` — mean wall time of one `embed_into` on a reused scratch
//!   over a Table 2.1-style trial schedule (f cycles 0..=8);
//! * `embeds_per_sec` — the reciprocal throughput of the same loop;
//! * `reference_embed_ns` — the retained textbook implementation on the
//!   same fault sets (fewer trials; it is the slow baseline);
//! * `speedup` — reference / engine;
//! * `batch` — the batch sweep engine (`Ffc::embed_batch`, stats-only
//!   plan) at 1, 2, 4 and 8 shards: embeds/sec and the speedup over the
//!   serial `embed_into` loop above. The stats-only fast path plus shard
//!   parallelism is what the Monte-Carlo tables run on.
//!
//! Usage: `cargo run --release -p dbg-bench --bin bench_ffc [out.json]
//! [--smoke] [--check]`
//!
//! * default output: `<repo root>/BENCH_ffc.json`;
//! * `--smoke`: CI-sized trial counts (20× fewer trials, minimum 60);
//! * `--check`: after writing, re-read and validate the file — exits
//!   non-zero if the JSON is malformed or any `speedup` is below 1.0.

use std::fmt::Write as _;
use std::time::Instant;

use debruijn_core::{BatchEmbedder, EmbedScratch, FaultSchedule, Ffc, SweepAccumulator, SweepPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One benchmarked configuration.
struct Config {
    d: u64,
    n: u32,
    /// Engine trials (reference runs `trials / 20`, at least 20).
    trials: usize,
}

/// Shard counts the batch engine is measured at.
const BATCH_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per measurement; the fastest is reported.
const REPS: usize = 3;

/// A Table 2.1-style trial schedule: fault sets with f cycling 0..=8.
fn fault_sets(total: usize, trials: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    (0..trials)
        .map(|t| {
            let f = t % 9;
            let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
            chosen.to_vec()
        })
        .collect()
}

/// XOR-checksum accumulator: keeps the optimiser honest and is
/// merge-order-independent.
#[derive(Clone, Copy, Debug, Default)]
struct Checksum(u64);

impl SweepAccumulator for Checksum {
    fn merge(&mut self, other: Self) {
        self.0 ^= other.0;
    }
}

/// Validates a written benchmark file: structural JSON sanity (balanced
/// brackets, the expected top-level keys) and every `"speedup"` value at
/// least 1.0. Returns the list of problems found.
fn validate(contents: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in contents.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    problems.push("unbalanced brackets".into());
                    return problems;
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        problems.push("unbalanced brackets or unterminated string".into());
    }
    for key in [
        "\"benchmark\"",
        "\"configs\"",
        "\"batch\"",
        "\"embeds_per_sec\"",
    ] {
        if !contents.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    let mut speedups = 0usize;
    let mut rest = contents;
    while let Some(pos) = rest.find("\"speedup\":") {
        rest = &rest[pos + "\"speedup\":".len()..];
        let num: String = rest
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        match num.parse::<f64>() {
            Ok(v) if v >= 1.0 => speedups += 1,
            Ok(v) => problems.push(format!("speedup regressed below 1.0: {v}")),
            Err(_) => problems.push(format!("unparseable speedup value: {num:?}")),
        }
    }
    if speedups == 0 && problems.is_empty() {
        problems.push("no speedup values found".into());
    }
    problems
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; usage: bench_ffc [out.json] [--smoke] [--check]");
                std::process::exit(2);
            }
            path => out_path = Some(path.to_string()),
        }
    }
    let out_path =
        out_path.unwrap_or_else(|| format!("{}/../../BENCH_ffc.json", env!("CARGO_MANIFEST_DIR")));
    let scale = |trials: usize| {
        if smoke {
            (trials / 20).max(60)
        } else {
            trials
        }
    };
    let configs = [
        Config {
            d: 2,
            n: 10,
            trials: scale(4000),
        },
        Config {
            d: 2,
            n: 14,
            trials: scale(400),
        },
        Config {
            d: 4,
            n: 5,
            trials: scale(4000),
        },
        Config {
            d: 4,
            n: 7,
            trials: scale(400),
        },
    ];

    let mut entries = Vec::new();
    for cfg in &configs {
        let setup_start = Instant::now();
        let ffc = Ffc::new(cfg.d, cfg.n);
        let setup_ns = setup_start.elapsed().as_nanos();

        let total = ffc.graph().len();
        let seed = 0xB * u64::from(cfg.n) + cfg.d;
        let sets = fault_sets(total, cfg.trials, seed);
        let mut scratch = EmbedScratch::new();
        // Warm-up sizes every scratch buffer.
        let mut checksum = ffc.embed_into(&mut scratch, &sets[0]).component_size;

        // Best of REPS timed repetitions, to damp scheduler noise.
        let mut engine = std::time::Duration::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            for faults in &sets {
                checksum ^= ffc.embed_into(&mut scratch, faults).component_size;
            }
            engine = engine.min(start.elapsed());
        }
        let embed_ns = engine.as_nanos() as f64 / sets.len() as f64;
        let embeds_per_sec = sets.len() as f64 / engine.as_secs_f64();

        let ref_trials = (cfg.trials / 20).max(20).min(sets.len());
        let start = Instant::now();
        for faults in sets.iter().take(ref_trials) {
            checksum ^= ffc.embed_reference(faults).component_size;
        }
        let reference = start.elapsed();
        let reference_embed_ns = reference.as_nanos() as f64 / ref_trials as f64;

        let label = format!("B({},{})", cfg.d, cfg.n);
        eprintln!(
            "{label}: setup {:.2} ms, embed {:.1} µs ({embeds_per_sec:.0} embeds/s), \
             reference {:.1} µs, speedup {:.1}x  [checksum {checksum}]",
            setup_ns as f64 / 1e6,
            embed_ns / 1e3,
            reference_embed_ns / 1e3,
            reference_embed_ns / embed_ns,
        );

        // Batch sweep engine: the same f 0..=8 schedule as a stats-only
        // plan, at increasing shard counts.
        let plan = SweepPlan::new(FaultSchedule::Cycling((0..=8).collect()), cfg.trials, seed);
        let mut batch_rows = Vec::new();
        for &shards in &BATCH_SHARDS {
            let mut batch = BatchEmbedder::new(shards);
            // Warm up every shard's scratch before timing.
            let warm = SweepPlan::new(FaultSchedule::Cycling((0..=8).collect()), 2 * shards, seed);
            let _ = ffc.embed_batch(&mut batch, &warm, |acc: &mut Checksum, trial| {
                acc.0 ^= trial.stats.component_size as u64;
            });
            let mut elapsed = std::time::Duration::MAX;
            let mut sum = Checksum::default();
            for _ in 0..REPS {
                let start = Instant::now();
                sum = ffc.embed_batch(&mut batch, &plan, |acc: &mut Checksum, trial| {
                    acc.0 ^= trial.stats.component_size as u64;
                });
                elapsed = elapsed.min(start.elapsed());
            }
            let batch_eps = plan.trials() as f64 / elapsed.as_secs_f64();
            let speedup = batch_eps / embeds_per_sec;
            eprintln!(
                "{label}: batch x{shards}: {batch_eps:.0} embeds/s \
                 ({speedup:.2}x serial engine)  [checksum {}]",
                sum.0
            );
            batch_rows.push(format!(
                "        {{ \"shards\": {shards}, \"embeds_per_sec\": {batch_eps:.1}, \
                 \"speedup\": {speedup:.2} }}"
            ));
        }

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
             \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
             \"embed_ns\": {embed_ns:.1},\n      \"embeds_per_sec\": {embeds_per_sec:.1},\n      \
             \"reference_trials\": {ref_trials},\n      \
             \"reference_embed_ns\": {reference_embed_ns:.1},\n      \
             \"speedup\": {:.2},\n      \"batch\": [\n{}\n      ]\n    }}",
            sets.len(),
            reference_embed_ns / embed_ns,
            batch_rows.join(",\n"),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"ffc_embed\",\n  \"schedule\": \"f cycles 0..=8, random fault sets\",\n  \
         \"unit_note\": \"embed_ns is mean wall time per embed_into on a reused scratch; \
         batch rows are the stats-only sweep engine (embed_batch), speedup vs the serial engine loop\",\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_ffc.json");
    eprintln!("wrote {out_path}");

    if check {
        let contents = std::fs::read_to_string(&out_path).expect("re-read benchmark file");
        let problems = validate(&contents);
        if problems.is_empty() {
            eprintln!("check passed: JSON well-formed, all speedups >= 1.0");
        } else {
            for p in &problems {
                eprintln!("check FAILED: {p}");
            }
            std::process::exit(1);
        }
    }
}
