//! Machine-readable FFC engine benchmark: writes `BENCH_ffc.json` at the
//! repository root so successive PRs can track the perf trajectory.
//!
//! Two kinds of configuration are measured:
//!
//! * **Full tiers** — B(2,10), B(2,14), B(4,5) and B(4,7):
//!   - `setup_ns` — one `Ffc::new` (FKM partition build + engine tables);
//!   - `embed_ns` / `embeds_per_sec` — the full `embed_into` pipeline on a
//!     reused scratch over a Table 2.1-style trial schedule (f cycles
//!     0..=8);
//!   - `reference_embed_ns` / `speedup` — the retained textbook
//!     implementation on the same fault sets (fewer trials);
//!   - `stats_only` — the stats-only paths head to head: the PR 2
//!     u8-stamp engine (`embed_stats_into_u8`) vs the bit-parallel engine
//!     (`embed_stats_into`), with `speedup` = u8 / bit;
//!   - `batch` — the batch sweep engine (`Ffc::embed_batch`, stats-only
//!     plan, bit-parallel path) at 1, 2, 4 and 8 shards; `speedup` is vs
//!     the serial `embed_into` loop above.
//! * **Stats-only tiers** (`"mode": "stats_only"`) — B(2,18), B(2,20),
//!   B(2,22) and B(2,24), the million-node scale the bit-parallel engine
//!   exists for (the top two tiers are what the PR 10 compact-level +
//!   summary engine buys back in footprint). The full pipeline and the
//!   textbook reference are far too slow to sweep here, so the row
//!   records `setup_ns`, the `stats_only` comparison, and `batch` rows
//!   whose `speedup` is vs the serial **u8-stamp** loop (the PR 2 engine
//!   this PR replaces).
//! * **Full-ring tiers** (`"mode": "full"`) — B(2,16), B(2,18), B(2,20)
//!   and B(2,22): the serial `embed_into` pipeline vs the parallel engine
//!   (`embed_into_parallel`) at 1, 2, 4 and 8 shards, with the **cycle
//!   bytes checksummed and asserted identical** between the two engines
//!   at every shard count. The row's `best_vs_serial` is the best
//!   parallel configuration over the serial full-embed loop; per-shard
//!   rows carry `vs_serial`. Both engines share the streaming readoff,
//!   so on few-core hosts (where `effective_shards` folds every request
//!   to the same pipeline) these ratios sit at parity by design — the
//!   gate is the **no-regret floor 0.9**, not a speedup: asking for
//!   shards must never cost more than 10% over serial, on any host (and
//!   the CI bench-smoke job runs the B(2,16) tier).
//! * **Incremental tiers** (`"mode": "incremental"`) — B(2,16), B(2,18),
//!   B(2,20) and B(2,22): single-fault repair on the `RingMaintainer`
//!   (`add_fault` + `clear_fault` events over random single faults)
//!   against the from-scratch serial `embed_into` loop (`speedup`, the CI
//!   gate) and the from-scratch `embed_into_parallel` loop
//!   (`vs_parallel`) on the same fault schedule. The per-event stats are
//!   checksummed and asserted identical to the serial loop's, and the
//!   row records how many events repaired incrementally vs rebuilt.
//! * **Serve tiers** (`"mode": "serve"`) — B(2,16), B(2,18) and B(2,20):
//!   the ring-as-a-service read path. A `RingService` writer thread drains
//!   a PR 6 `ChurnPlan` trace (paced over the measurement window) while
//!   1, 2 and 4 reader threads walk the ring in `ring_segment` strides of
//!   256 through epoch-refreshing `ReaderHandle`s. Each configuration is
//!   measured twice with identical writer-side work: **live** readers
//!   refresh to every published snapshot, **frozen** readers stay pinned
//!   to the initial snapshot (the no-publication baseline). The row
//!   records `lookups_per_sec` / `frozen_lookups_per_sec` / `vs_frozen`
//!   per reader count, the snapshot-publication latency
//!   `publish_p50_ns` / `publish_p99_ns`, and the gated `best_vs_frozen`
//!   = best `vs_frozen` across reader counts — the CI floor that keeps
//!   epoch publication free for readers (PR 10 unified the field name:
//!   serve tiers used to overload `speedup`, which named a different
//!   baseline on every other mode). Every run's final published snapshot
//!   is asserted bit-identical (stats + ring bytes) to a from-scratch
//!   `embed_into` of the trace's cumulative fault set.
//! * **Churn tiers** (`"mode": "churn"`) — B(2,16), B(2,18) and B(2,20):
//!   a deterministic churn trace (Poisson arrivals, correlated 4-bursts,
//!   20% link faults, bounded repair times) replayed through the
//!   `RingMaintainer` via `replay_churn`. The row records
//!   `p50_repair_ns` / `p99_repair_ns` (per-batch repair latency),
//!   `degraded_fraction` (share of trace time spent past tolerance) and
//!   `worst_excluded`, plus the batched-vs-sequential gate: one
//!   `apply_batch` of k = 8 simultaneous faults timed against k
//!   sequential `add_fault` calls on the same nodes (`speedup` =
//!   sequential / batched, component-size checksums asserted identical —
//!   a CI-gated floor of 1.0 like every other `speedup`).
//!
//! A `--kernels` micro-tier additionally races the two dense sweep
//! kernels word for word — the retained two-phase scalar reference
//! (`BitReach::kernel_step_scalar`: fold pass, then expand pass) against
//! the fused kernel the engine runs (`BitReach::kernel_step_fused`) —
//! over warm bitmaps at B(2,16), B(2,18) and B(2,20) shapes, forward
//! and backward. Rows report words/sec per kernel and `speedup` =
//! scalar / fused, gated at ≥ 1.0 by `--check` like every other
//! speedup: the fusion must never lose on the engine's hot shapes. The
//! same flag emits `"kind": "skip_scan"` rows racing the full-bitmap
//! extraction (`extract_bits`) against the two-level summary skip-scan
//! (`extract_bits_skip`) over sparse frontiers at the same shapes —
//! outputs asserted identical, `speedup` = full / skip, gated ≥ 1.0.
//!
//! Every tier also reports `allocated_bytes` — the warm steady-state
//! footprint of the structure the tier exercises (the embed scratch, or
//! the maintainer session on incremental/churn tiers); incremental tiers
//! additionally break out the compact level arrays (`level_bytes`)
//! against the u32 storage they replaced (`level_bytes_u32`), with the
//! gated ratio `level_compaction` ≥ 3.0.
//!
//! Usage: `cargo run --release -p dbg-bench --bin bench_ffc [out.json]
//! [--smoke] [--check] [--trials N] [--filter GRAPH] [--kernels]`
//!
//! * default output: `<repo root>/BENCH_ffc.json`;
//! * `--smoke`: CI-sized trial counts (20× fewer trials, minimum 60) and
//!   the B(2,20) tier skipped, so the job stays bounded;
//! * `--trials N`: hard cap on every configuration's trial count (applied
//!   after `--smoke` scaling) — the CI knob for bounding total job time;
//! * `--filter GRAPH`: run only the configurations whose label contains
//!   `GRAPH` (e.g. `--filter "B(2,20)"` or `--filter 2,2`) — a single
//!   tier without editing the config list. A filter matching nothing is
//!   an error;
//! * `--kernels`: also run the scalar-vs-fused kernel micro-tier and
//!   emit it as the top-level `"kernels"` array;
//! * `--check`: after writing, re-read and validate the file — exits
//!   non-zero if the JSON is malformed, any `speedup` / `best_vs_frozen`
//!   (or incremental `vs_parallel`) is below 1.0, any full-ring
//!   `vs_serial` / `best_vs_serial` is below 0.9 (the no-regret floor
//!   for oversubscribed shard requests), or any incremental
//!   `level_compaction` is below 3.0 (the compact-level footprint gate).
//!
//! ATOMICS: the serve tier's `go`/`stop` flags are single-writer
//! booleans — the driver thread alone stores them. `go` is
//! store-Release / spin-load-Acquire so a reader's first lookup is
//! ordered after the driver's setup; `stop` is polled with Relaxed
//! (and stored Release) because readers only use it to exit their loop,
//! never to receive data.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use debruijn_core::bitreach::{extract_bits, extract_bits_skip, sum_words, summarize_bits};
use debruijn_core::{
    replay_churn, BatchEmbedder, BitReach, ChurnPlan, ChurnReport, ChurnStep, EmbedScratch,
    FaultEvent, FaultSchedule, Ffc, RingMaintainer, RingService, RingSnapshot, ServeOptions,
    ServiceReport, SweepAccumulator, SweepPlan,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

/// What a configuration measures.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Small tiers: full `embed_into` + textbook reference + stats-only
    /// engines + batch rows.
    Small,
    /// Large tiers, stats-only engines and batch rows (no cycles).
    StatsOnly,
    /// Large tiers, full-ring construction: serial `embed_into` vs the
    /// parallel engine, cycle bytes asserted identical.
    FullRing,
    /// Large tiers, online repair: single-fault `RingMaintainer` events vs
    /// the from-scratch serial and parallel pipelines, stats checksums
    /// asserted identical to the serial loop.
    Incremental,
    /// Large tiers, fault churn: a timed arrival/departure trace replayed
    /// through the maintainer (p50/p99 time-to-repair, degraded-time
    /// fraction) plus the batched-vs-sequential k-fault repair gate.
    Churn,
    /// Large tiers, the serving read path: reader threads walking the ring
    /// through epoch-refreshing handles while a churn trace streams through
    /// the `RingService` writer, vs the same run with readers pinned to a
    /// frozen snapshot.
    Serve,
}

/// One benchmarked configuration.
struct Config {
    d: u64,
    n: u32,
    /// Engine trials (reference runs `trials / 20`, at least 20).
    trials: usize,
    /// What this tier measures.
    mode: Mode,
    /// Skipped under `--smoke` (the biggest tiers).
    skip_in_smoke: bool,
}

/// Shard counts the batch engine and the parallel full-ring engine are
/// measured at.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per measurement; the fastest is reported.
const REPS: usize = 3;

/// Interleaved rounds for the full-ring tier. Its serial and per-shard
/// rows run the same streaming pipeline and sit near parity on few-core
/// hosts, so the `vs_serial >= 0.9` no-regret floor needs a tighter
/// best-of estimate than the order-of-magnitude speedups elsewhere —
/// more rounds are cheap because one round is a few milliseconds.
const FULL_RING_REPS: usize = 7;

/// A Table 2.1-style trial schedule: fault sets with f cycling 0..=8.
fn fault_sets(total: usize, trials: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    (0..trials)
        .map(|t| {
            let f = t % 9;
            let (chosen, _) = nodes.partial_shuffle(&mut rng, f);
            chosen.to_vec()
        })
        .collect()
}

/// XOR-checksum accumulator: keeps the optimiser honest and is
/// merge-order-independent.
#[derive(Clone, Copy, Debug, Default)]
struct Checksum(u64);

impl SweepAccumulator for Checksum {
    fn merge(&mut self, other: Self) {
        self.0 ^= other.0;
    }
}

/// Times `body` over the trial schedule, best of [`REPS`], returning
/// (mean ns per trial, trials per second, checksum). The checksum is the
/// XOR over **one** repetition (every rep produces the same value, so it
/// is independent of `REPS`) — callers compare it across engines to keep
/// the optimiser honest and the paths provably in agreement.
fn time_loop<F: FnMut(&[usize]) -> usize>(sets: &[Vec<usize>], mut body: F) -> (f64, f64, usize) {
    let mut best = std::time::Duration::MAX;
    let mut checksum = 0usize;
    for _ in 0..REPS {
        let mut rep_checksum = 0usize;
        let start = Instant::now();
        for faults in sets {
            rep_checksum ^= body(faults);
        }
        best = best.min(start.elapsed());
        checksum = rep_checksum;
    }
    let ns = best.as_nanos() as f64 / sets.len() as f64;
    (ns, sets.len() as f64 / best.as_secs_f64(), checksum)
}

/// Nodes returned per `ring_segment` walk in the serve tier: one epoch
/// check amortised over this many lookups.
const SEGMENT: usize = 256;

/// Reader thread counts the serve tier is measured at.
const READER_COUNTS: [usize; 3] = [1, 2, 4];

/// Timed repetitions per serve-tier configuration (frozen and live each):
/// the live-vs-frozen ratio is a wash by design, so it needs more samples
/// than the order-of-magnitude speedups elsewhere to beat scheduler noise.
const SERVE_REPS: usize = 5;

/// The exclusion set a fault-event stream accumulates to: explicitly
/// faulty nodes plus the source endpoints of still-faulty links — the
/// model the session maintains (pinned by the PR 6 batch tests).
fn exclusion_of(events: &[FaultEvent]) -> Vec<usize> {
    let mut node_down: Vec<usize> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for &ev in events {
        match ev {
            FaultEvent::NodeDown(v) => {
                if !node_down.contains(&v) {
                    node_down.push(v);
                }
            }
            FaultEvent::NodeUp(v) => {
                if let Some(i) = node_down.iter().position(|&x| x == v) {
                    node_down.swap_remove(i);
                }
            }
            FaultEvent::EdgeDown(u, w) => {
                if !edges.contains(&(u, w)) {
                    edges.push((u, w));
                }
            }
            FaultEvent::EdgeUp(u, w) => {
                if let Some(i) = edges.iter().position(|&e| e == (u, w)) {
                    edges.swap_remove(i);
                }
            }
        }
    }
    let mut excl = node_down;
    excl.extend(edges.iter().map(|&(u, _)| u));
    excl.sort_unstable();
    excl.dedup();
    excl
}

/// FNV over ring bytes — order-sensitive, so two rings hash equal only
/// when they are byte-identical.
fn ring_hash(ring: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in ring {
        h = (h ^ v as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One serve-tier measurement run: starts a fault-free `RingService`,
/// spawns `readers` threads walking the ring in [`SEGMENT`] strides, and
/// streams the churn trace through the writer paced over `window`.
/// `frozen` pins every reader to the initial snapshot (the baseline);
/// otherwise readers refresh to each published generation. Writer-side
/// work is identical either way. Returns (lookups/sec summed across
/// readers, the writer's report, the final published snapshot).
fn serve_run(
    ffc: &Arc<Ffc>,
    steps: &[ChurnStep],
    readers: usize,
    frozen: bool,
    window: Duration,
) -> (f64, ServiceReport, Arc<RingSnapshot>) {
    let svc = RingService::start(Arc::clone(ffc), &[], ServeOptions::default())
        .expect("fault-free start is embeddable");
    let go = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(readers);
    for _ in 0..readers {
        let mut reader = svc.reader();
        let go = Arc::clone(&go);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut buf: Vec<usize> = Vec::with_capacity(SEGMENT);
            let pinned = frozen.then(|| Arc::clone(reader.pinned()));
            while !go.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let mut count = 0u64;
            if let Some(snap) = pinned {
                let mut at = snap.root().expect("fault-free ring");
                while !stop.load(Ordering::Relaxed) {
                    let wrote = snap
                        .ring_segment(at, SEGMENT, &mut buf)
                        .expect("frozen walk stays on ring");
                    count += wrote as u64;
                    at = buf[wrote - 1];
                }
            } else {
                let mut at = reader.snapshot().root().expect("fault-free ring");
                while !stop.load(Ordering::Relaxed) {
                    match reader.ring_segment(at, SEGMENT, &mut buf) {
                        Ok(wrote) if wrote > 0 => {
                            count += wrote as u64;
                            at = buf[wrote - 1];
                        }
                        // The walk start fell off the ring when a repair
                        // was published: restart from the fresh root.
                        _ => at = reader.snapshot().root().expect("serving ring"),
                    }
                }
            }
            count
        }));
    }
    let pace = window.div_f64(steps.len().max(1) as f64);
    let start = Instant::now();
    go.store(true, Ordering::Release);
    for step in steps {
        for &ev in &step.batch {
            svc.submit(ev).expect("churn events are valid");
        }
        std::thread::sleep(pace);
    }
    let mut fin = svc.reader();
    let report = svc.shutdown();
    while start.elapsed() < window {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    let elapsed = start.elapsed();
    let total: u64 = threads
        .into_iter()
        .map(|t| t.join().expect("reader panicked"))
        .sum();
    (total as f64 / elapsed.as_secs_f64(), report, fin.snapshot())
}

/// Dense-capable shapes the `--kernels` micro-tier measures: the d=2
/// specialisation at B(2,16), B(2,18) and B(2,20) word counts — the
/// engine's hot shapes and the ones the full-ring gates sweep. The
/// generic-d fused path runs at parity with the two-phase reference
/// (its only saving is the small fold buffer), so it is pinned by unit
/// tests rather than raced under a ≥ 1.0 gate.
const KERNEL_SHAPES: [(usize, usize); 3] = [(2, 1 << 16), (2, 1 << 18), (2, 1 << 20)];

/// Races the two dense kernels over warm bitmaps and returns one JSON
/// row per (shape, direction): words/sec for the retained two-phase
/// scalar reference and the fused single-pass kernel, plus `speedup` =
/// scalar ns / fused ns. Both kernels start from identical bitmaps and
/// their newly-visited checksums are asserted equal, so the race also
/// re-pins bit-equality on every measured shape.
fn kernel_tier(smoke: bool) -> Vec<String> {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x4EC7);
    for &(d, n_nodes) in &KERNEL_SHAPES {
        let reach = BitReach::new(d, n_nodes);
        assert!(reach.dense_capable(), "kernel tier shape must be dense");
        let words = n_nodes / 64;
        let sw = words / d;
        // ~4M word visits per repetition (÷8 under --smoke): large enough
        // to beat timer noise, small enough to keep CI bounded.
        let iters = ((1usize << 22) / words).max(16) / if smoke { 8 } else { 1 };
        let iters = iters.max(4);
        for backward in [false, true] {
            let cur: Vec<u64> = (0..words).map(|_| rng.next_u64()).collect();
            // A half-warm visited set: the kernels' work is
            // data-independent, so saturation across iterations does not
            // skew the comparison.
            let vis0: Vec<u64> = (0..words)
                .map(|_| rng.next_u64() & rng.next_u64())
                .collect();
            let mut nxt = vec![0u64; words];
            let mut fold = vec![0u64; sw];
            let mut time_kernel = |fused: bool| -> (f64, usize) {
                let mut best = Duration::MAX;
                let mut sink = 0usize;
                for _ in 0..REPS {
                    let mut vis = vis0.clone();
                    let mut rep_sink = 0usize;
                    let start = Instant::now();
                    for _ in 0..iters {
                        rep_sink ^= if fused {
                            reach.kernel_step_fused(backward, &cur, &mut vis, &mut nxt)
                        } else {
                            reach.kernel_step_scalar(backward, &cur, &mut vis, &mut nxt, &mut fold)
                        };
                    }
                    best = best.min(start.elapsed());
                    sink = rep_sink;
                }
                let wps = (words * iters) as f64 / best.as_secs_f64();
                (wps, sink)
            };
            let (scalar_wps, scalar_sum) = time_kernel(false);
            let (fused_wps, fused_sum) = time_kernel(true);
            assert_eq!(
                scalar_sum, fused_sum,
                "kernels diverge on d={d} words={words} bwd={backward}"
            );
            let speedup = fused_wps / scalar_wps;
            let dir = if backward { "bwd" } else { "fwd" };
            eprintln!(
                "kernels d={d} words={words} {dir}: scalar {:.0} Mwords/s vs fused {:.0} \
                 Mwords/s ({speedup:.2}x) [checksum {scalar_sum}]",
                scalar_wps / 1e6,
                fused_wps / 1e6,
            );
            rows.push(format!(
                "    {{ \"d\": {d}, \"nodes\": {n_nodes}, \"words\": {words}, \
                 \"dir\": \"{dir}\", \"scalar_words_per_sec\": {scalar_wps:.0}, \
                 \"fused_words_per_sec\": {fused_wps:.0}, \"speedup\": {speedup:.2} }}"
            ));
        }
        // Skip-scan micro row: extracting a sparse frontier (the shape of
        // delta-pass seeds and early/late BFS levels — about one occupied
        // word per 64-word summary block) with the full-bitmap scan vs the
        // two-level summary skip-scan. Outputs asserted identical; the
        // gated speedup is full / skip.
        let set_bits = (words / 64).max(16);
        let mut bits = vec![0u64; words];
        for _ in 0..set_bits {
            let v = rng.gen_range(0..n_nodes);
            bits[v / 64] |= 1u64 << (v % 64);
        }
        let mut sum = vec![0u64; sum_words(words)];
        summarize_bits(&bits, &mut sum);
        let iters = (if smoke { 200 } else { 2000 }).max(1);
        let mut out: Vec<u32> = Vec::with_capacity(64 * set_bits);
        let mut time_extract = |skip: bool| -> (f64, usize) {
            let mut best = Duration::MAX;
            let mut sink = 0usize;
            for _ in 0..REPS {
                let mut rep_sink = 0usize;
                let start = Instant::now();
                for _ in 0..iters {
                    out.clear();
                    if skip {
                        extract_bits_skip(&bits, &sum, &mut out);
                    } else {
                        extract_bits(&bits, &mut out);
                    }
                    rep_sink ^= out.len() ^ out.last().map_or(0, |&v| v as usize) << 32;
                }
                best = best.min(start.elapsed());
                sink = rep_sink;
            }
            ((words * iters) as f64 / best.as_secs_f64(), sink)
        };
        let (full_wps, full_sink) = time_extract(false);
        let (skip_wps, skip_sink) = time_extract(true);
        assert_eq!(
            full_sink, skip_sink,
            "skip-scan extraction diverges on d={d} words={words}"
        );
        let speedup = skip_wps / full_wps;
        eprintln!(
            "skip_scan d={d} words={words} set_bits={set_bits}: full {:.0} Mwords/s vs skip \
             {:.0} Mwords/s ({speedup:.2}x)",
            full_wps / 1e6,
            skip_wps / 1e6,
        );
        rows.push(format!(
            "    {{ \"kind\": \"skip_scan\", \"d\": {d}, \"nodes\": {n_nodes}, \
             \"words\": {words}, \"set_bits\": {set_bits}, \
             \"full_words_per_sec\": {full_wps:.0}, \
             \"skip_words_per_sec\": {skip_wps:.0}, \"speedup\": {speedup:.2} }}"
        ));
    }
    rows
}

/// Validates a written benchmark file: structural JSON sanity (balanced
/// brackets, the expected top-level keys), every `"speedup"` /
/// `"vs_parallel"` / `"best_vs_frozen"` value at least 1.0 (the serve
/// tier's gated field — best frozen-vs-live read throughput across its
/// reader counts), every `"level_compaction"` at least 3.0 (the compact
/// u8 level arrays must stay ≥3× under the u32 storage they replaced),
/// and every full-ring
/// `"vs_serial"` / `"best_vs_serial"` at least 0.9 — the no-regret
/// floor: an oversubscribed shard request may cost a little
/// coordination, never a regression (on few-core hosts the clamp folds
/// every request to the serial pipeline, so parity is the expectation,
/// not a speedup).
/// `filtered` skips the required-key checks (a `--filter` run only
/// writes one tier's shape). Returns the list of problems found.
fn validate(contents: &str, filtered: bool) -> Vec<String> {
    let mut problems = Vec::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in contents.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    problems.push("unbalanced brackets".into());
                    return problems;
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        problems.push("unbalanced brackets or unterminated string".into());
    }
    if !filtered {
        for key in [
            "\"benchmark\"",
            "\"configs\"",
            "\"batch\"",
            "\"embeds_per_sec\"",
            "\"stats_only\"",
            "\"parallel\"",
            "\"repair_ns\"",
            "\"p50_repair_ns\"",
            "\"publish_p50_ns\"",
            "\"vs_frozen\"",
            "\"allocated_bytes\"",
            "\"level_compaction\"",
        ] {
            if !contents.contains(key) {
                problems.push(format!("missing key {key}"));
            }
        }
    }
    let mut speedups = 0usize;
    for (key, floor) in [
        ("\"speedup\":", 1.0),
        ("\"vs_parallel\":", 1.0),
        ("\"best_vs_frozen\":", 1.0),
        ("\"level_compaction\":", 3.0),
        ("\"vs_serial\":", 0.9),
        ("\"best_vs_serial\":", 0.9),
    ] {
        let mut rest = contents;
        while let Some(pos) = rest.find(key) {
            rest = &rest[pos + key.len()..];
            let num: String = rest
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            match num.parse::<f64>() {
                Ok(v) if v >= floor => speedups += 1,
                Ok(v) => problems.push(format!("{key} regressed below {floor}: {v}")),
                Err(_) => problems.push(format!("unparseable {key} value: {num:?}")),
            }
        }
    }
    if speedups == 0 && problems.is_empty() {
        problems.push("no speedup values found".into());
    }
    problems
}

#[allow(clippy::too_many_lines)] // one linear measurement script
fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut check = false;
    let mut kernels = false;
    let mut trial_cap: Option<usize> = None;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--kernels" => kernels = true,
            "--trials" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--trials needs a positive integer");
                        std::process::exit(2);
                    });
                trial_cap = Some(n);
            }
            "--filter" => {
                let pat = args.next().filter(|p| !p.is_empty()).unwrap_or_else(|| {
                    eprintln!("--filter needs a graph label substring, e.g. \"B(2,20)\"");
                    std::process::exit(2);
                });
                filter = Some(pat);
            }
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag {flag}; usage: bench_ffc [out.json] [--smoke] [--check] \
                     [--trials N] [--filter GRAPH] [--kernels]"
                );
                std::process::exit(2);
            }
            path => out_path = Some(path.to_string()),
        }
    }
    let out_path =
        out_path.unwrap_or_else(|| format!("{}/../../BENCH_ffc.json", env!("CARGO_MANIFEST_DIR")));
    let scale = |trials: usize| {
        // The floor never raises a tier above its configured count: the
        // biggest smoke-visible tiers (B(2,22) stats) set trials < 60 and
        // must stay time-bounded in CI.
        let t = if smoke {
            (trials / 20).max(60).min(trials)
        } else {
            trials
        };
        t.min(trial_cap.unwrap_or(usize::MAX)).max(1)
    };
    let full = |d, n, trials| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::Small,
        skip_in_smoke: false,
    };
    let stats_tier = |d, n, trials, skip_in_smoke| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::StatsOnly,
        skip_in_smoke,
    };
    let ring_tier = |d, n, trials, skip_in_smoke| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::FullRing,
        skip_in_smoke,
    };
    let incr_tier = |d, n, trials, skip_in_smoke| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::Incremental,
        skip_in_smoke,
    };
    let churn_tier = |d, n, trials, skip_in_smoke| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::Churn,
        skip_in_smoke,
    };
    let serve_tier = |d, n, trials, skip_in_smoke| Config {
        d,
        n,
        trials: scale(trials),
        mode: Mode::Serve,
        skip_in_smoke,
    };
    let configs = [
        full(2, 10, 4000),
        full(2, 14, 400),
        full(4, 5, 4000),
        full(4, 7, 400),
        stats_tier(2, 18, 60, false),
        stats_tier(2, 20, 20, true),
        stats_tier(2, 22, 12, false),
        stats_tier(2, 24, 8, true),
        ring_tier(2, 16, 60, false),
        ring_tier(2, 18, 16, true),
        ring_tier(2, 20, 6, true),
        ring_tier(2, 22, 4, true),
        incr_tier(2, 16, 60, false),
        incr_tier(2, 18, 16, true),
        incr_tier(2, 20, 6, true),
        incr_tier(2, 22, 4, true),
        churn_tier(2, 16, 120, false),
        churn_tier(2, 18, 40, true),
        churn_tier(2, 20, 16, true),
        serve_tier(2, 16, 60, false),
        serve_tier(2, 18, 24, true),
        serve_tier(2, 20, 10, true),
    ];

    let mut matched = 0usize;
    let mut entries = Vec::new();
    for cfg in &configs {
        if smoke && cfg.skip_in_smoke {
            continue;
        }
        if let Some(pat) = &filter {
            if !format!("B({},{})", cfg.d, cfg.n).contains(pat.as_str()) {
                continue;
            }
        }
        matched += 1;
        let setup_start = Instant::now();
        let ffc = Ffc::new(cfg.d, cfg.n);
        let setup_ns = setup_start.elapsed().as_nanos();

        let total = ffc.graph().len();
        let seed = 0xB * u64::from(cfg.n) + cfg.d;
        let sets = fault_sets(total, cfg.trials, seed);
        let mut scratch = EmbedScratch::new();
        let label = format!("B({},{})", cfg.d, cfg.n);

        if cfg.mode == Mode::Serve {
            // Serve tier: the ring-as-a-service read path. The same churn
            // trace streams through the RingService writer in every run;
            // live readers refresh to each published snapshot while frozen
            // readers stay pinned to the initial one, so the ratio isolates
            // what epoch publication costs the read path.
            let ffc = Arc::new(ffc);
            let plan = ChurnPlan::new(seed ^ 0x5E)
                .arrivals(cfg.trials)
                .bursts(4, 0.25)
                .edge_fault_prob(0.2);
            let steps = plan.generate(&ffc);
            let events: Vec<FaultEvent> =
                steps.iter().flat_map(|s| s.batch.iter().copied()).collect();
            // From-scratch oracle of the trace's end state: every run's
            // final published snapshot must match it bit-for-bit.
            let excl = exclusion_of(&events);
            let want = ffc.embed_into(&mut scratch, &excl);
            let want_hash = ring_hash(scratch.cycle());
            // The big tiers pace fewer, heavier repairs through the same
            // window; give them a longer one so the bursty writer work
            // averages out of the reader-throughput ratio.
            let window = Duration::from_millis(if cfg.skip_in_smoke { 500 } else { 250 });
            let mut reader_rows = Vec::new();
            let mut best_overall = 0.0f64;
            let mut gate_report: Option<ServiceReport> = None;
            let mut ring_buf = Vec::new();
            for &readers in &READER_COUNTS {
                let mut frozen_best = 0.0f64;
                let mut live_best = 0.0f64;
                for _ in 0..SERVE_REPS {
                    // Interleave frozen/live so machine drift hits both
                    // sides of the ratio equally.
                    for &frozen in &[true, false] {
                        let (lps, report, snap) = serve_run(&ffc, &steps, readers, frozen, window);
                        assert_eq!(
                            report.events,
                            events.len() as u64,
                            "writer dropped events on {label}"
                        );
                        assert_eq!(snap.applied_events(), report.events);
                        assert_eq!(
                            snap.stats(),
                            want,
                            "served snapshot diverges from the from-scratch embed on {label}"
                        );
                        snap.ring_into(&mut ring_buf);
                        assert_eq!(
                            ring_hash(&ring_buf),
                            want_hash,
                            "served ring bytes diverge on {label}"
                        );
                        if frozen {
                            frozen_best = frozen_best.max(lps);
                        } else if lps > live_best {
                            live_best = lps;
                            gate_report = Some(report);
                        }
                    }
                }
                let vs_frozen = live_best / frozen_best;
                best_overall = best_overall.max(vs_frozen);
                eprintln!(
                    "{label}: serve x{readers} readers: live {live_best:.0} lookups/s vs frozen \
                     {frozen_best:.0} ({vs_frozen:.2}x)"
                );
                reader_rows.push(format!(
                    "        {{ \"threads\": {readers}, \"lookups_per_sec\": {live_best:.1}, \
                     \"frozen_lookups_per_sec\": {frozen_best:.1}, \"vs_frozen\": {vs_frozen:.2} }}"
                ));
            }
            let report = gate_report.expect("at least one live run");
            let p50 = report.publish_quantile_ns(0.5);
            let p99 = report.publish_quantile_ns(0.99);
            let rp50 = report.repair_quantile_ns(0.5);
            let rp99 = report.repair_quantile_ns(0.99);
            eprintln!(
                "{label}: serve publish p50 {:.1} µs p99 {:.1} µs over {} publications \
                 ({} events coalesced into {} batches)",
                p50 as f64 / 1e3,
                p99 as f64 / 1e3,
                report.publications,
                report.events,
                report.batches,
            );
            let mut entry = String::new();
            write!(
                entry,
                "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
                 \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
                 \"mode\": \"serve\",\n      \
                 \"churn_steps\": {},\n      \"churn_events\": {},\n      \
                 \"batches\": {},\n      \"publications\": {},\n      \
                 \"publish_p50_ns\": {p50},\n      \"publish_p99_ns\": {p99},\n      \
                 \"repair_p50_ns\": {rp50},\n      \"repair_p99_ns\": {rp99},\n      \
                 \"allocated_bytes\": {},\n      \
                 \"readers\": [\n{}\n      ],\n      \
                 \"best_vs_frozen\": {best_overall:.2}\n    }}",
                cfg.trials,
                steps.len(),
                events.len(),
                report.batches,
                report.publications,
                scratch.allocated_bytes(),
                reader_rows.join(",\n"),
            )
            .expect("writing to a String cannot fail");
            entries.push(entry);
            continue;
        }

        if cfg.mode == Mode::Churn {
            // Churn tier: a deterministic arrival/departure trace (Poisson
            // arrivals, correlated 4-bursts, 20% link faults, bounded
            // repair times) replayed through the maintainer — the
            // service-level picture of an evolving fault environment.
            let plan = ChurnPlan::new(seed ^ 0xC4)
                .arrivals(cfg.trials)
                .bursts(4, 0.25)
                .edge_fault_prob(0.2);
            let steps = plan.generate(&ffc);
            let mut maint = RingMaintainer::new();
            let mut best_report: Option<ChurnReport> = None;
            // First replay warms the session buffers; best of REPS after.
            for rep in 0..=REPS {
                let report = replay_churn(&ffc, &mut maint, &steps, |_, _, _| {})
                    .expect("generated trace is valid");
                if rep == 0 {
                    continue;
                }
                let total_ns: u64 = report.repair_ns.iter().sum();
                let keep = best_report
                    .as_ref()
                    .is_none_or(|b| total_ns < b.repair_ns.iter().sum::<u64>());
                if keep {
                    best_report = Some(report);
                }
            }
            let report = best_report.expect("REPS >= 1");
            let p50 = report.p50_ns();
            let p99 = report.p99_ns();

            // The CI gate: one batched k-fault repair must never be slower
            // than k sequential single-fault repairs of the same nodes
            // (down + up round trips, stats asserted identical). The burst
            // is *correlated* — k contiguous node ids, the rack-failure
            // shape churn traces model — so the k repair cones overlap and
            // the fused delta pass has real sharing to exploit; scattered
            // faults have disjoint cones, where batching can only save
            // per-event bookkeeping.
            let k = 8usize;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let octets: Vec<Vec<usize>> = (0..cfg.trials)
                .map(|_| {
                    let base = rng.gen_range(0..total - k);
                    (base..base + k).collect()
                })
                .collect();
            maint.reset(&ffc, &[]).expect("in-range");
            let mut downs: Vec<FaultEvent> = Vec::with_capacity(k);
            let mut ups: Vec<FaultEvent> = Vec::with_capacity(k);
            let load = |o: &[usize], downs: &mut Vec<FaultEvent>, ups: &mut Vec<FaultEvent>| {
                downs.clear();
                downs.extend(o.iter().map(|&v| FaultEvent::NodeDown(v)));
                ups.clear();
                ups.extend(o.iter().map(|&v| FaultEvent::NodeUp(v)));
            };
            // Warm-up pass.
            load(&octets[0], &mut downs, &mut ups);
            maint.apply_batch(&ffc, &downs).expect("in-range");
            maint.apply_batch(&ffc, &ups).expect("in-range");
            let mut batched_best = std::time::Duration::MAX;
            let mut batched_sum = 0usize;
            for _ in 0..REPS {
                let mut sum = 0usize;
                let start = Instant::now();
                for o in &octets {
                    load(o, &mut downs, &mut ups);
                    sum ^= maint
                        .apply_batch(&ffc, &downs)
                        .expect("in-range")
                        .stats()
                        .component_size;
                    maint.apply_batch(&ffc, &ups).expect("in-range");
                }
                batched_best = batched_best.min(start.elapsed());
                batched_sum = sum;
            }
            let mut seq_best = std::time::Duration::MAX;
            let mut seq_sum = 0usize;
            for _ in 0..REPS {
                let mut sum = 0usize;
                let start = Instant::now();
                for o in &octets {
                    for &v in o {
                        maint.add_fault(&ffc, v).expect("in-range");
                    }
                    sum ^= maint.stats().component_size;
                    for &v in o {
                        maint.clear_fault(&ffc, v).expect("in-range");
                    }
                }
                seq_best = seq_best.min(start.elapsed());
                seq_sum = sum;
            }
            assert_eq!(
                batched_sum, seq_sum,
                "batched and sequential repair diverge on {label}"
            );
            let batched_ns = batched_best.as_nanos() as f64 / octets.len() as f64;
            let sequential_ns = seq_best.as_nanos() as f64 / octets.len() as f64;
            let speedup = sequential_ns / batched_ns;
            eprintln!(
                "{label}: churn {} steps / {} events, repair p50 {:.1} µs p99 {:.1} µs, \
                 degraded {:.2}%; batched {k}-fault {:.1} µs vs {k} sequential {:.1} µs \
                 ({speedup:.2}x) [checksum {batched_sum}]",
                report.steps,
                report.events,
                p50 as f64 / 1e3,
                p99 as f64 / 1e3,
                report.degraded_fraction() * 100.0,
                batched_ns / 1e3,
                sequential_ns / 1e3,
            );
            let mut entry = String::new();
            write!(
                entry,
                "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
                 \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
                 \"mode\": \"churn\",\n      \
                 \"churn_arrivals\": {},\n      \"churn_steps\": {},\n      \
                 \"churn_events\": {},\n      \
                 \"p50_repair_ns\": {p50},\n      \"p99_repair_ns\": {p99},\n      \
                 \"degraded_fraction\": {:.4},\n      \"worst_excluded\": {},\n      \
                 \"batch_k\": {k},\n      \
                 \"batched_event_ns\": {batched_ns:.1},\n      \
                 \"sequential_event_ns\": {sequential_ns:.1},\n      \
                 \"allocated_bytes\": {},\n      \
                 \"speedup\": {speedup:.2}\n    }}",
                steps.len(),
                cfg.trials,
                report.steps,
                report.events,
                report.degraded_fraction(),
                report.worst_excluded,
                maint.allocated_bytes(),
            )
            .expect("writing to a String cannot fail");
            entries.push(entry);
            continue;
        }

        if cfg.mode == Mode::Incremental {
            // Incremental tier: single-fault repair events on the
            // RingMaintainer vs from-scratch serial and parallel embeds of
            // the same faults. Stats checksums keep the three loops
            // provably in agreement (rare root-necklace faults force the
            // maintainer through its rebuild fallback and stay in the
            // mean, which is the honest service-level number).
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1EC);
            let mut nodes: Vec<usize> = (0..total).collect();
            let singles: Vec<Vec<usize>> = (0..cfg.trials)
                .map(|_| {
                    let (one, _) = nodes.partial_shuffle(&mut rng, 1);
                    one.to_vec()
                })
                .collect();
            let _ = ffc.embed_into(&mut scratch, &singles[0]);
            let (serial_ns, _serial_eps, serial_sum) =
                time_loop(&singles, |f| ffc.embed_into(&mut scratch, f).component_size);
            let _ = ffc.embed_into_parallel(&mut scratch, &singles[0], 1);
            let (par_ns, _par_eps, par_sum) = time_loop(&singles, |f| {
                ffc.embed_into_parallel(&mut scratch, f, 1).component_size
            });
            assert_eq!(par_sum, serial_sum, "parallel embeds diverge on {label}");
            let mut maint = RingMaintainer::new();
            maint.reset(&ffc, &[]).expect("in-range");
            let _ = maint.add_fault(&ffc, singles[0][0]);
            let _ = maint.clear_fault(&ffc, singles[0][0]);
            let before = maint.repairs();
            let mut best = std::time::Duration::MAX;
            let mut repair_sum = 0usize;
            for _ in 0..REPS {
                let mut rep_sum = 0usize;
                let start = Instant::now();
                for f in &singles {
                    rep_sum ^= maint
                        .add_fault(&ffc, f[0])
                        .expect("in-range")
                        .stats()
                        .component_size;
                    let _ = maint.clear_fault(&ffc, f[0]);
                }
                best = best.min(start.elapsed());
                repair_sum = rep_sum;
            }
            assert_eq!(
                repair_sum, serial_sum,
                "incremental repairs diverge from the serial engine on {label}"
            );
            let events = 2 * singles.len();
            let repair_ns = best.as_nanos() as f64 / events as f64;
            let after = maint.repairs();
            let (incr, rebuilds) = (
                after.incremental - before.incremental,
                after.rebuilds - before.rebuilds,
            );
            let speedup = serial_ns / repair_ns;
            let vs_parallel = par_ns / repair_ns;
            // The compact-level footprint gate: the session's three level
            // arrays in one byte per node vs the 3 × 4 × n_nodes bytes of
            // the u32 storage they replaced (PR 10).
            let level_bytes = maint.level_bytes();
            let level_bytes_u32 = 3 * 4 * total;
            let level_compaction = level_bytes_u32 as f64 / level_bytes as f64;
            eprintln!(
                "{label}: repair {:.1} µs/event vs serial {:.2} ms ({speedup:.1}x) / parallel \
                 {:.2} ms ({vs_parallel:.1}x), {incr} delta + {rebuilds} rebuilds per rep, \
                 levels {level_bytes} B vs u32 {level_bytes_u32} B ({level_compaction:.2}x) \
                 [checksum {repair_sum}]",
                repair_ns / 1e3,
                serial_ns / 1e6,
                par_ns / 1e6,
            );
            let mut entry = String::new();
            write!(
                entry,
                "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
                 \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
                 \"mode\": \"incremental\",\n      \
                 \"embed_ns\": {serial_ns:.1},\n      \
                 \"parallel_embed_ns\": {par_ns:.1},\n      \
                 \"repair_ns\": {repair_ns:.1},\n      \
                 \"repairs_per_sec\": {:.1},\n      \
                 \"delta_events\": {},\n      \"rebuild_events\": {},\n      \
                 \"allocated_bytes\": {},\n      \
                 \"level_bytes\": {level_bytes},\n      \
                 \"level_bytes_u32\": {level_bytes_u32},\n      \
                 \"level_compaction\": {level_compaction:.2},\n      \
                 \"vs_parallel\": {vs_parallel:.2},\n      \
                 \"speedup\": {speedup:.2}\n    }}",
                singles.len(),
                1e9 / repair_ns,
                incr / REPS,
                rebuilds.div_ceil(REPS),
                maint.allocated_bytes(),
            )
            .expect("writing to a String cannot fail");
            entries.push(entry);
            continue;
        }

        if cfg.mode == Mode::FullRing {
            // Full-ring tiers: the serial embed_into pipeline vs the
            // parallel engine, cycle bytes checksummed and asserted
            // identical at every shard count. Both engines share the
            // streaming readoff, so on few-core hosts the rows sit near
            // parity — the configurations are therefore measured
            // *interleaved* (every rep times serial plus each shard count
            // back-to-back) so clock/thermal drift across the tier lands
            // on every row equally instead of penalising whichever
            // configuration happens to run last.
            fn cycle_hash(scratch: &EmbedScratch) -> usize {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &v in scratch.cycle() {
                    h = (h ^ v as u64).wrapping_mul(0x0100_0000_01b3);
                }
                h as usize
            }
            const ROWS: usize = 1 + SHARD_COUNTS.len();
            let mut times = [[std::time::Duration::ZERO; ROWS]; FULL_RING_REPS];
            let mut sums = [0usize; ROWS];
            let _ = ffc.embed_into(&mut scratch, &sets[0]);
            for &shards in &SHARD_COUNTS {
                let _ = ffc.embed_into_parallel(&mut scratch, &sets[0], shards);
            }
            for (round, round_times) in times.iter_mut().enumerate() {
                // Rotate the starting row per round: position within a
                // round is itself a bias (the first sweep runs on the
                // freshest quantum), so every row gets each slot.
                for k in 0..ROWS {
                    let row = (round + k) % ROWS;
                    let mut rep_sum = 0usize;
                    let start = Instant::now();
                    for faults in &sets {
                        let _ = if row == 0 {
                            ffc.embed_into(&mut scratch, faults)
                        } else {
                            ffc.embed_into_parallel(&mut scratch, faults, SHARD_COUNTS[row - 1])
                        };
                        rep_sum ^= cycle_hash(&scratch);
                    }
                    round_times[row] = start.elapsed();
                    sums[row] = rep_sum;
                }
            }
            // Throughputs are best-of-rounds as everywhere else; the
            // gated vs_serial ratios are **paired medians** — each row's
            // sweep over its own round's serial sweep, median across
            // rounds — because the rows sit at parity by design and an
            // unpaired best-of comparison lets one lucky serial round
            // (scheduler noise on a shared host) poison every ratio.
            let row_best =
                |row: usize| -> std::time::Duration { times.iter().map(|r| r[row]).min().unwrap() };
            let vs_serial = |row: usize| -> f64 {
                let mut ratios = times.map(|r| r[0].as_secs_f64() / r[row].as_secs_f64());
                ratios.sort_by(f64::total_cmp);
                ratios[FULL_RING_REPS / 2]
            };
            let serial_best = row_best(0);
            let serial_ns = serial_best.as_nanos() as f64 / sets.len() as f64;
            let serial_eps = sets.len() as f64 / serial_best.as_secs_f64();
            let serial_sum = sums[0];
            eprintln!(
                "{label}: full-ring serial {:.2} ms ({serial_eps:.1} embeds/s) \
                 [checksum {serial_sum}]",
                serial_ns / 1e6,
            );
            let mut par_rows = Vec::new();
            let mut best_vs = 0.0f64;
            let mut best_shards = 1usize;
            for (k, &shards) in SHARD_COUNTS.iter().enumerate() {
                let par_best = row_best(k + 1);
                let par_ns = par_best.as_nanos() as f64 / sets.len() as f64;
                let par_eps = sets.len() as f64 / par_best.as_secs_f64();
                let par_sum = sums[k + 1];
                assert_eq!(
                    par_sum, serial_sum,
                    "parallel cycles diverge from serial on {label} x{shards}"
                );
                let vs = vs_serial(k + 1);
                eprintln!(
                    "{label}: full-ring parallel x{shards}: {:.2} ms ({vs:.2}x serial) \
                     [checksum {par_sum}]",
                    par_ns / 1e6,
                );
                if vs > best_vs {
                    best_vs = vs;
                    best_shards = shards;
                }
                par_rows.push(format!(
                    "        {{ \"shards\": {shards}, \"embeds_per_sec\": {par_eps:.2}, \
                     \"vs_serial\": {vs:.2} }}"
                ));
            }
            let speedup = best_vs;
            let mut entry = String::new();
            write!(
                entry,
                "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
                 \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
                 \"mode\": \"full\",\n      \
                 \"embed_ns\": {serial_ns:.1},\n      \
                 \"embeds_per_sec\": {serial_eps:.2},\n      \
                 \"parallel\": [\n{}\n      ],\n      \
                 \"parallel_best_shards\": {best_shards},\n      \
                 \"allocated_bytes\": {},\n      \
                 \"best_vs_serial\": {speedup:.2}\n    }}",
                sets.len(),
                par_rows.join(",\n"),
                scratch.allocated_bytes(),
            )
            .expect("writing to a String cannot fail");
            entries.push(entry);
            continue;
        }

        // Stats-only paths head to head: PR 2's u8-stamp engine vs the
        // bit-parallel engine (warm-up sizes every buffer first).
        let _ = ffc.embed_stats_into_u8(&mut scratch, &sets[0]);
        let _ = ffc.embed_stats_into(&mut scratch, &sets[0]);
        let (u8_ns, u8_eps, c1) = time_loop(&sets, |f| {
            ffc.embed_stats_into_u8(&mut scratch, f).component_size
        });
        let (bit_ns, bit_eps, c2) = time_loop(&sets, |f| {
            ffc.embed_stats_into(&mut scratch, f).component_size
        });
        assert_eq!(c1, c2, "stats engines disagree on {label}");
        let stats_speedup = u8_ns / bit_ns;
        eprintln!(
            "{label}: setup {:.2} ms, stats u8 {:.1} µs vs bit {:.1} µs ({stats_speedup:.2}x) \
             [checksum {c1}]",
            setup_ns as f64 / 1e6,
            u8_ns / 1e3,
            bit_ns / 1e3,
        );
        let stats_block = format!(
            "      \"stats_only\": {{ \"u8_embeds_per_sec\": {u8_eps:.1}, \
             \"bit_embeds_per_sec\": {bit_eps:.1}, \"speedup\": {stats_speedup:.2} }}"
        );

        // Full tiers additionally run the whole pipeline and the textbook
        // reference; their batch rows compare against the serial
        // `embed_into` loop. Stats tiers compare batch against the serial
        // u8 loop (the engine this PR replaces).
        let (serial_block, batch_baseline_eps) = if cfg.mode == Mode::Small {
            let _ = ffc.embed_into(&mut scratch, &sets[0]);
            let (embed_ns, embeds_per_sec, mut checksum) =
                time_loop(&sets, |f| ffc.embed_into(&mut scratch, f).component_size);

            let ref_trials = (cfg.trials / 20).max(20).min(sets.len());
            let start = Instant::now();
            for faults in sets.iter().take(ref_trials) {
                checksum ^= ffc.embed_reference(faults).component_size;
            }
            let reference = start.elapsed();
            let reference_embed_ns = reference.as_nanos() as f64 / ref_trials as f64;
            eprintln!(
                "{label}: embed {:.1} µs ({embeds_per_sec:.0} embeds/s), reference {:.1} µs, \
                 speedup {:.1}x  [checksum {checksum}]",
                embed_ns / 1e3,
                reference_embed_ns / 1e3,
                reference_embed_ns / embed_ns,
            );
            let block = format!(
                "      \"embed_ns\": {embed_ns:.1},\n      \
                 \"embeds_per_sec\": {embeds_per_sec:.1},\n      \
                 \"reference_trials\": {ref_trials},\n      \
                 \"reference_embed_ns\": {reference_embed_ns:.1},\n      \
                 \"speedup\": {:.2},\n",
                reference_embed_ns / embed_ns,
            );
            (block, embeds_per_sec)
        } else {
            (
                format!(
                    "      \"mode\": \"stats_only\",\n      \"embeds_per_sec\": {bit_eps:.1},\n"
                ),
                u8_eps,
            )
        };

        // Batch sweep engine: the same f 0..=8 schedule as a stats-only
        // plan, at increasing shard counts.
        let plan = SweepPlan::new(FaultSchedule::Cycling((0..=8).collect()), cfg.trials, seed);
        let mut batch_rows = Vec::new();
        for &shards in &SHARD_COUNTS {
            let mut batch = BatchEmbedder::new(shards);
            // Warm up every shard's scratch before timing.
            let warm = SweepPlan::new(FaultSchedule::Cycling((0..=8).collect()), 2 * shards, seed);
            let _ = ffc.embed_batch(&mut batch, &warm, |acc: &mut Checksum, trial| {
                acc.0 ^= trial.stats.component_size as u64;
            });
            let mut elapsed = std::time::Duration::MAX;
            let mut sum = Checksum::default();
            for _ in 0..REPS {
                let start = Instant::now();
                sum = ffc.embed_batch(&mut batch, &plan, |acc: &mut Checksum, trial| {
                    acc.0 ^= trial.stats.component_size as u64;
                });
                elapsed = elapsed.min(start.elapsed());
            }
            let batch_eps = plan.trials() as f64 / elapsed.as_secs_f64();
            let speedup = batch_eps / batch_baseline_eps;
            eprintln!(
                "{label}: batch x{shards}: {batch_eps:.0} embeds/s \
                 ({speedup:.2}x serial baseline)  [checksum {}]",
                sum.0
            );
            batch_rows.push(format!(
                "        {{ \"shards\": {shards}, \"embeds_per_sec\": {batch_eps:.1}, \
                 \"speedup\": {speedup:.2} }}"
            ));
        }

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"graph\": \"{label}\",\n      \"nodes\": {total},\n      \
             \"trials\": {},\n      \"setup_ns\": {setup_ns},\n      \
             \"allocated_bytes\": {},\n\
             {serial_block}{stats_block},\n      \"batch\": [\n{}\n      ]\n    }}",
            sets.len(),
            scratch.allocated_bytes(),
            batch_rows.join(",\n"),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    if filter.is_some() && matched == 0 {
        eprintln!("--filter matched no configuration");
        std::process::exit(2);
    }
    let kernels_block = if kernels {
        format!(
            "  \"kernels\": [\n{}\n  ],\n",
            kernel_tier(smoke).join(",\n")
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"benchmark\": \"ffc_embed\",\n  \"schedule\": \"f cycles 0..=8, random fault sets\",\n  \
         \"unit_note\": \"timed loops take the best of {REPS} repetitions; embed_ns is the mean \
         wall time per embed_into within that best repetition, on a reused scratch; \
         stats_only compares the u8-stamp stats engine (PR 2) against the bit-parallel engine \
         (speedup = u8/bit); batch rows are the stats-only sweep engine (embed_batch) — \
         speedup vs the serial embed_into loop on full tiers, vs the serial u8-stamp loop on \
         mode=stats_only tiers; mode=full tiers compare the serial embed_into pipeline against \
         embed_into_parallel (cycle checksums asserted identical; speedup = best parallel \
         configuration / serial, per-shard rows carry vs_serial); mode=incremental tiers time \
         single-fault RingMaintainer repair events (add_fault + clear_fault) against \
         from-scratch embeds of the same faults — speedup = serial embed_into / repair event, \
         vs_parallel = embed_into_parallel / repair event, stats checksums asserted identical \
         to the serial loop, and level_bytes / level_bytes_u32 / level_compaction report the \
         compact u8 level-array footprint against the 3 x 4 bytes/node u32 storage it \
         replaced (gated >= 3.0); mode=churn tiers replay a deterministic arrival/departure trace \
         (Poisson arrivals, correlated 4-bursts, 20% link faults) through the maintainer — \
         p50/p99_repair_ns are per-batch repair latencies and degraded_fraction is the time \
         share spent past tolerance — and time one batched k-fault repair against k sequential \
         single-fault repairs of the same nodes (speedup = sequential/batched, component-size \
         checksums asserted identical); mode=serve tiers stream the churn trace through a \
         RingService writer while 1/2/4 reader threads walk the ring in 256-node ring_segment \
         strides — lookups_per_sec is the live (epoch-refreshing) read path, \
         frozen_lookups_per_sec the same run with readers pinned to the initial snapshot \
         (identical writer-side work), best_vs_frozen = best vs_frozen across reader counts \
         (gated >= 1.0), \
         publish_p50/p99_ns the snapshot-publication latency, and every run's final snapshot \
         is asserted bit-identical to a from-scratch embed of the trace's fault set; \
         every tier's allocated_bytes is the audited steady-state footprint of its scratch \
         or maintainer after warmup; \
         the optional kernels array races the two-phase scalar dense kernel against the fused \
         single-pass kernel over warm bitmaps (speedup = scalar/fused, newly-visited checksums \
         asserted identical) and, in kind=skip_scan rows, full-bitmap sparse-frontier \
         extraction against the hierarchical-summary skip-scan (speedup = skip/full \
         words per second, outputs asserted identical, gated >= 1.0)\",\n{kernels_block}  \
         \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_ffc.json");
    eprintln!("wrote {out_path}");

    if check {
        let contents = std::fs::read_to_string(&out_path).expect("re-read benchmark file");
        let problems = validate(&contents, filter.is_some());
        if problems.is_empty() {
            eprintln!("check passed: JSON well-formed, all speedups >= 1.0");
        } else {
            for p in &problems {
                eprintln!("check FAILED: {p}");
            }
            std::process::exit(1);
        }
    }
}
