//! Regenerates the paper's figures and worked examples as DOT/annotated text.
//!
//! Usage: `cargo run -p dbg-bench --bin figures [chapter]`
//! where `chapter` is 1, 2, 3 or omitted for everything.

#![forbid(unsafe_code)]

use dbg_bench::figures;

fn main() {
    let chapter: Option<u32> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let want = |c: u32| chapter.is_none() || chapter == Some(c);

    if want(1) {
        println!("==== Figure 1.1 ====\n{}", figures::figure_1_1());
        println!("==== Figure 1.2 ====\n{}", figures::figure_1_2());
    }
    if want(2) {
        println!(
            "==== Figure 2.3 + Example 2.1 ====\n{}",
            figures::figure_2_3_and_example_2_1()
        );
        println!(
            "==== Figure 2.2 (modified tree, concrete) ====\n{}",
            figures::figure_2_2_modified_tree()
        );
    }
    if want(3) {
        println!(
            "==== Examples 3.1-3.4 ====\n{}",
            figures::examples_3_1_to_3_4()
        );
        println!("==== Figure 3.2 ====\n{}", figures::figure_3_2());
        println!(
            "==== Figure 3.3 / Example 3.6 ====\n{}",
            figures::figure_3_3()
        );
        println!(
            "==== Figures 3.4 / 3.5 ====\n{}",
            figures::figures_3_4_and_3_5()
        );
    }
}
