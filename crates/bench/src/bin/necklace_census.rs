//! Regenerates the Chapter 4 necklace-census examples (counts by length,
//! weight and type) and cross-checks the formulas against enumeration.

#![forbid(unsafe_code)]

use dbg_bench::census::chapter_4_census;

fn main() {
    println!("Chapter 4 necklace census");
    println!("{:>60} {:>14} {:>14}", "count", "formula", "enumerated");
    for line in chapter_4_census() {
        let enumerated = line
            .enumerated
            .map_or_else(|| "-".to_string(), |v| v.to_string());
        println!(
            "{:>60} {:>14} {:>14}",
            line.description, line.formula, enumerated
        );
    }
}
