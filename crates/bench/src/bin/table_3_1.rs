//! Regenerates Table 3.1: ψ(d), the guaranteed number of edge-disjoint
//! Hamiltonian cycles in B(d,n), for 2 ≤ d ≤ 38.

#![forbid(unsafe_code)]

use dbg_bench::report::render_psi_table;
use dbg_bench::tables::bounds_table;

fn main() {
    let rows = bounds_table(2..=38);
    println!("{}", render_psi_table(&rows));
}
