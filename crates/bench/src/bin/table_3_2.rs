//! Regenerates Table 3.2: MAX{ψ(d) − 1, φ(d)}, the number of link failures
//! B(d,n) tolerates while retaining a Hamiltonian cycle, for 2 ≤ d ≤ 35.
//!
//! With `--verify [trials]` each tabulated d is additionally swept on
//! B(d,2): `trials` random fault sets of the guaranteed size are embedded
//! and the per-row success count printed. A row whose trials all succeed
//! confirms the bound; a row that misses a cycle is *reported* (and fails
//! the process at the end) rather than aborting the sweep mid-run — the
//! per-trial failures are the typed `NoFaultFreeCycle` outcome, not a
//! panic.
//!
//! Usage: `cargo run --release -p dbg-bench --bin table_3_2 [--verify [trials]]`

#![forbid(unsafe_code)]

use dbg_bench::props::edge_fault_sweep;
use dbg_bench::report::render_tolerance_table;
use dbg_bench::tables::bounds_table;

fn main() {
    let mut verify = false;
    let mut trials = 5usize;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verify" => verify = true,
            other => match other.parse::<usize>() {
                Ok(n) if n > 0 => trials = n,
                _ => {
                    eprintln!("unknown argument {other}; usage: table_3_2 [--verify] [trials]");
                    std::process::exit(2);
                }
            },
        }
    }

    let rows = bounds_table(2..=35);
    println!("{}", render_tolerance_table(&rows));

    if !verify {
        return;
    }
    println!("Verification sweep on B(d,2), {trials} trials per row:");
    println!(
        "{:>3} {:>10} {:>8} {:>10}",
        "d", "tolerance", "trials", "successes"
    );
    let mut violations = Vec::new();
    for row in &rows {
        let s = edge_fault_sweep(row.d, 2, trials, 97 * row.d + 2);
        println!(
            "{:>3} {:>10} {:>8} {:>10}",
            row.d, row.tolerance, s.trials, s.successes
        );
        if s.successes != s.trials {
            violations.push(format!(
                "d={}: only {}/{} trials found a fault-free Hamiltonian cycle \
                 within the guaranteed tolerance {}",
                row.d, s.successes, s.trials, row.tolerance
            ));
        }
    }
    if violations.is_empty() {
        println!("\nEvery row met its guaranteed tolerance.");
    } else {
        for v in &violations {
            eprintln!("FAILED: {v}");
        }
        std::process::exit(1);
    }
}
