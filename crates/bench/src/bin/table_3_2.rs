//! Regenerates Table 3.2: MAX{ψ(d) − 1, φ(d)}, the number of link failures
//! B(d,n) tolerates while retaining a Hamiltonian cycle, for 2 ≤ d ≤ 35.

use dbg_bench::report::render_tolerance_table;
use dbg_bench::tables::bounds_table;

fn main() {
    let rows = bounds_table(2..=35);
    println!("{}", render_tolerance_table(&rows));
}
