//! Exploration of the Chapter 5 open questions on the *undirected* de Bruijn
//! graph UB(d,n), by exact search on instances small enough to brute-force:
//!
//! * Question 3: does UB(d,n) admit a fault-free cycle of length at least
//!   d^n − n·f with f < 2(d−1) node failures?
//! * Question 4: does UB(d,n) admit a fault-free Hamiltonian cycle with
//!   2(d−2) edge failures?
//!
//! This binary does not settle the questions — it reports exact optima on
//! tiny instances so a researcher can see where the directed bounds do and
//! do not carry over. Usage:
//! `cargo run --release -p dbg-bench --bin future_work [trials]`

#![forbid(unsafe_code)]

use dbg_graph::algo::cycles::longest_cycle_brute_force;
use dbg_graph::{DeBruijn, DiGraph};
use dbg_necklace::NecklacePartition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds the undirected de Bruijn graph as a symmetric digraph so the
/// brute-force cycle search can run on it, with the given nodes removed.
fn undirected_minus(d: u64, n: u32, removed: &[usize]) -> DiGraph {
    let b = DeBruijn::new(d, n);
    let ub = b.to_undirected();
    let mut g = DiGraph::new(ub.len());
    for (u, v) in ub.edges() {
        if removed.contains(&u) || removed.contains(&v) || u == v {
            continue;
        }
        g.add_edge(u, v);
        g.add_edge(v, u);
    }
    g
}

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!(
        "Chapter 5, Question 3: longest fault-free cycle in UB(d,n) with f < 2(d-1) faulty nodes"
    );
    println!(
        "{:>3} {:>3} {:>3} {:>12} {:>12} {:>8}",
        "d", "n", "f", "longest(UB)", "d^n - n*f", "holds?"
    );
    let mut rng = StdRng::seed_from_u64(55);
    for (d, n) in [(2u64, 3u32), (2, 4), (3, 2)] {
        let b = DeBruijn::new(d, n);
        let part = NecklacePartition::new(b.space());
        let total = b.len();
        let max_f = (2 * (d - 1) - 1) as usize;
        for f in 1..=max_f {
            let mut worst = usize::MAX;
            for _ in 0..trials {
                let mut nodes: Vec<usize> = (0..total).collect();
                let (faulty, _) = nodes.partial_shuffle(&mut rng, f);
                let faulty: Vec<usize> = faulty.to_vec();
                // Remove whole necklaces, as in the directed algorithm.
                let dead: Vec<usize> = (0..total)
                    .filter(|&v| {
                        faulty
                            .iter()
                            .any(|&x| part.same_necklace(v as u64, x as u64))
                    })
                    .collect();
                let g = undirected_minus(d, n, &dead);
                let cycle = longest_cycle_brute_force(&g, 16);
                worst = worst.min(cycle.len());
            }
            let bound = total as i64 - (n as i64) * (f as i64);
            println!(
                "{:>3} {:>3} {:>3} {:>12} {:>12} {:>8}",
                d,
                n,
                f,
                worst,
                bound,
                worst as i64 >= bound
            );
        }
    }

    println!();
    println!("Chapter 5, Question 2 (small cases): does B(d,n) admit d-1 disjoint HCs for non-2-power d?");
    println!("(The construction guarantees psi(d); exhaustive search of the gap is future work.)");
    for d in [3u64, 5, 6, 7, 9] {
        println!(
            "  d = {d}: psi(d) = {} constructed, upper bound d-1 = {}",
            debruijn_core::psi(d),
            d - 1
        );
    }
}
