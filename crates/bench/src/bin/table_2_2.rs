//! Regenerates Table 2.2: size of the component containing R = 00001 and the
//! eccentricity of R in B(4,5) with f randomly distributed node faults.
//!
//! Usage: `cargo run --release -p dbg-bench --bin table_2_2 [trials]`

#![forbid(unsafe_code)]

use dbg_bench::report::render_component_table;
use dbg_bench::tables::{component_experiment, paper_fault_counts};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let rows = component_experiment(4, 5, &paper_fault_counts(), trials, 0xB45, threads);
    println!(
        "{}",
        render_component_table(
            &format!("Table 2.2 — B(4,5), root R = 00001, {trials} trials/row, seed 0xB45"),
            &rows
        )
    );
}
