//! Verification sweep for Propositions 2.2 and 2.3: cycle length and
//! eccentricity bounds of the FFC algorithm under node faults.
//!
//! Usage: `cargo run --release -p dbg-bench --bin prop_2_2_check [trials]`

#![forbid(unsafe_code)]

use dbg_bench::props::node_fault_sweep;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    println!("Proposition 2.2: f <= d-2 node faults leave a cycle of length >= d^n - n*f");
    println!(
        "{:>3} {:>3} {:>3} {:>10} {:>10} {:>8} {:>6}",
        "d", "n", "f", "min cycle", "guarantee", "max ecc", "ok"
    );
    for (d, n) in [(3u64, 4u32), (4, 4), (5, 3), (6, 3), (8, 2), (4, 6)] {
        for f in 1..=(d - 2).max(1) as usize {
            let s = node_fault_sweep(d, n, f, trials, 2024 + d + u64::from(n));
            println!(
                "{:>3} {:>3} {:>3} {:>10} {:>10} {:>8} {:>6}",
                d, n, f, s.min_cycle, s.guarantee, s.max_eccentricity, s.all_meet_guarantee
            );
        }
    }

    println!("\nProposition 2.3: a single fault in B(2,n) leaves a cycle of length >= 2^n - (n+1)");
    println!(
        "{:>3} {:>3} {:>10} {:>10} {:>8} {:>6}",
        "n", "f", "min cycle", "guarantee", "max ecc", "ok"
    );
    for n in 6..=12u32 {
        let s = node_fault_sweep(2, n, 1, trials, 4096 + u64::from(n));
        println!(
            "{:>3} {:>3} {:>10} {:>10} {:>8} {:>6}",
            n, 1, s.min_cycle, s.guarantee, s.max_eccentricity, s.all_meet_guarantee
        );
    }
}
