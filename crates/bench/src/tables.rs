//! Regeneration of the paper's tables.
//!
//! * Tables 2.1 and 2.2: Monte-Carlo simulation of the surviving component
//!   of B(2,10) and B(4,5) under f randomly placed node faults — average,
//!   maximum and minimum component size (= fault-free cycle length) and
//!   eccentricity of the root R = 0…01, next to the analytic d^n − n·f
//!   column.
//! * Table 3.1: ψ(d) for 2 ≤ d ≤ 38.
//! * Table 3.2: MAX{ψ(d) − 1, φ(d)} for 2 ≤ d ≤ 35.
//!
//! The Monte-Carlo sweep runs on the core batch engine: each row is a
//! [`SweepPlan`] (constant fault count, deterministic per-trial seeding)
//! executed by [`Ffc::embed_batch`] over a shared [`BatchEmbedder`], whose
//! sharded scratches and fault drawers make the steady-state loop
//! allocation-free and the results bit-identical at any shard count. The
//! rows only tabulate component sizes and eccentricities, so every trial
//! takes the engine's stats-only fast path (no cycle materialisation).

use serde::Serialize;

use debruijn_core::{BatchEmbedder, FaultSchedule, Ffc, SweepAccumulator, SweepPlan};

/// One row of Table 2.1 / 2.2.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ComponentRow {
    /// Number of random node faults injected.
    pub faults: usize,
    /// Number of Monte-Carlo trials actually executed behind the row.
    pub trials: usize,
    /// Average size of the component containing R (= average fault-free
    /// cycle length found by the FFC algorithm).
    pub avg_size: f64,
    /// Maximum component size observed.
    pub max_size: usize,
    /// Minimum component size observed.
    pub min_size: usize,
    /// The analytic column d^n − n·f.
    pub guarantee: i64,
    /// Average eccentricity of R within its component (broadcast rounds).
    pub avg_ecc: f64,
    /// Maximum eccentricity observed.
    pub max_ecc: usize,
    /// Minimum eccentricity observed.
    pub min_ecc: usize,
}

/// The fault counts tabulated by the paper: 0–10, then 20, 30, 40, 50.
#[must_use]
pub fn paper_fault_counts() -> Vec<usize> {
    let mut v: Vec<usize> = (0..=10).collect();
    v.extend([20, 30, 40, 50]);
    v
}

/// The per-row accumulator of the component experiment: running sums and
/// extrema, merged across shards by the batch engine.
#[derive(Clone, Copy, Debug)]
struct ComponentAcc {
    trials: usize,
    sum_size: u64,
    max_size: usize,
    min_size: usize,
    sum_ecc: u64,
    max_ecc: usize,
    min_ecc: usize,
}

impl Default for ComponentAcc {
    fn default() -> Self {
        ComponentAcc {
            trials: 0,
            sum_size: 0,
            max_size: 0,
            min_size: usize::MAX,
            sum_ecc: 0,
            max_ecc: 0,
            min_ecc: usize::MAX,
        }
    }
}

impl SweepAccumulator for ComponentAcc {
    fn merge(&mut self, other: Self) {
        self.trials += other.trials;
        self.sum_size += other.sum_size;
        self.max_size = self.max_size.max(other.max_size);
        self.min_size = self.min_size.min(other.min_size);
        self.sum_ecc += other.sum_ecc;
        self.max_ecc = self.max_ecc.max(other.max_ecc);
        self.min_ecc = self.min_ecc.min(other.min_ecc);
    }
}

/// Runs the Table 2.1/2.2 experiment for B(d,n): for each fault count,
/// `trials` random fault sets are drawn (seeded, reproducible — the draw of
/// trial t depends only on the seed and t, so results are independent of
/// `shards`) and the component containing R = 0…01 is measured.
///
/// `trials == 0` yields a well-defined empty row: all statistics are zero
/// and the row's `trials` field is 0 (no NaN averages, no `usize::MAX`
/// minima).
#[must_use]
pub fn component_experiment(
    d: u64,
    n: u32,
    fault_counts: &[usize],
    trials: usize,
    seed: u64,
    shards: usize,
) -> Vec<ComponentRow> {
    let ffc = Ffc::new(d, n);
    let total_nodes = ffc.graph().len();
    let mut batch = BatchEmbedder::new(shards);

    fault_counts
        .iter()
        .map(|&f| {
            let plan = SweepPlan::new(
                FaultSchedule::Constant(f),
                trials,
                seed ^ (f as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let acc = ffc.embed_batch(&mut batch, &plan, |acc: &mut ComponentAcc, trial| {
                acc.trials += 1;
                acc.sum_size += trial.stats.component_size as u64;
                acc.max_size = acc.max_size.max(trial.stats.component_size);
                acc.min_size = acc.min_size.min(trial.stats.component_size);
                acc.sum_ecc += trial.stats.eccentricity as u64;
                acc.max_ecc = acc.max_ecc.max(trial.stats.eccentricity);
                acc.min_ecc = acc.min_ecc.min(trial.stats.eccentricity);
            });
            assert_eq!(
                acc.trials, trials,
                "the accumulator must reflect the trials actually executed"
            );
            let guarantee = total_nodes as i64 - (n as i64) * (f as i64);
            if acc.trials == 0 {
                return ComponentRow {
                    faults: f,
                    trials: 0,
                    avg_size: 0.0,
                    max_size: 0,
                    min_size: 0,
                    guarantee,
                    avg_ecc: 0.0,
                    max_ecc: 0,
                    min_ecc: 0,
                };
            }
            ComponentRow {
                faults: f,
                trials: acc.trials,
                avg_size: acc.sum_size as f64 / acc.trials as f64,
                max_size: acc.max_size,
                min_size: acc.min_size,
                guarantee,
                avg_ecc: acc.sum_ecc as f64 / acc.trials as f64,
                max_ecc: acc.max_ecc,
                min_ecc: acc.min_ecc,
            }
        })
        .collect()
}

/// One row of Table 3.1 / 3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct BoundRow {
    /// Alphabet size d.
    pub d: u64,
    /// ψ(d): guaranteed number of disjoint Hamiltonian cycles.
    pub psi: u64,
    /// φ(d): the direct edge-fault tolerance of Proposition 3.3.
    pub phi: u64,
    /// MAX{ψ(d) − 1, φ(d)} (Table 3.2).
    pub tolerance: u64,
}

/// Regenerates Table 3.1 (and simultaneously Table 3.2) for the range of d.
#[must_use]
pub fn bounds_table(d_range: std::ops::RangeInclusive<u64>) -> Vec<BoundRow> {
    d_range
        .map(|d| BoundRow {
            d,
            psi: debruijn_core::psi(d),
            phi: debruijn_core::phi_edge_bound(d),
            tolerance: debruijn_core::edge_fault_tolerance(d),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_row_is_exact() {
        let rows = component_experiment(2, 6, &[0], 5, 1, 2);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert_eq!(r.trials, 5);
        assert_eq!(r.avg_size, 64.0);
        assert_eq!(r.max_size, 64);
        assert_eq!(r.min_size, 64);
        assert_eq!(r.guarantee, 64);
        assert_eq!(r.avg_ecc, 6.0);
    }

    #[test]
    fn zero_trials_gives_a_well_defined_empty_row() {
        // Regression: trials == 0 used to divide by zero (NaN averages) and
        // report usize::MAX minima.
        let rows = component_experiment(2, 6, &[0, 3, 7], 0, 1, 4);
        assert_eq!(rows.len(), 3);
        for r in rows {
            assert_eq!(r.trials, 0, "f={}", r.faults);
            assert_eq!(r.avg_size, 0.0);
            assert!(r.avg_size.is_finite());
            assert_eq!(r.avg_ecc, 0.0);
            assert!(r.avg_ecc.is_finite());
            assert_eq!(r.max_size, 0);
            assert_eq!(r.min_size, 0);
            assert_eq!(r.max_ecc, 0);
            assert_eq!(r.min_ecc, 0);
        }
    }

    #[test]
    fn rows_are_shard_count_invariant() {
        // The per-trial seeding makes a row's statistics bit-identical for
        // any shard count.
        let one = component_experiment(2, 7, &[2, 5], 60, 9, 1);
        for shards in [2usize, 3, 8] {
            let many = component_experiment(2, 7, &[2, 5], 60, 9, shards);
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.trials, b.trials, "shards={shards}");
                assert_eq!(a.avg_size, b.avg_size, "shards={shards}");
                assert_eq!(a.max_size, b.max_size);
                assert_eq!(a.min_size, b.min_size);
                assert_eq!(a.avg_ecc, b.avg_ecc);
                assert_eq!(a.max_ecc, b.max_ecc);
                assert_eq!(a.min_ecc, b.min_ecc);
            }
        }
    }

    #[test]
    fn fault_rows_track_the_guarantee() {
        // Small-scale version of Table 2.2: within the f ≤ d − 2 regime the
        // component size is exactly d^n minus the removed necklace nodes, so
        // the average never drops below d^n − n·f.
        let rows = component_experiment(4, 4, &[1, 2], 40, 7, 4);
        for r in rows {
            assert!(
                r.avg_size >= r.guarantee as f64,
                "f={}: {} < {}",
                r.faults,
                r.avg_size,
                r.guarantee
            );
            assert!(r.min_size as i64 >= r.guarantee);
            assert!(r.min_ecc <= r.max_ecc);
            assert!(r.max_ecc <= 8, "diameter of B* is at most 2n when f <= d-2");
        }
        // Beyond the guarantee (binary graph): sizes stay close to, but may
        // dip slightly below, the analytic column (cf. Table 2.1).
        let binary = component_experiment(2, 8, &[1, 2, 3], 40, 11, 4);
        for r in binary {
            assert!(r.avg_size >= (r.guarantee - 2 * r.faults as i64) as f64);
        }
    }

    #[test]
    fn bounds_rows_match_core() {
        let rows = bounds_table(2..=10);
        assert_eq!(rows.len(), 9);
        assert_eq!(
            rows[0],
            BoundRow {
                d: 2,
                psi: 1,
                phi: 0,
                tolerance: 0
            }
        );
        assert_eq!(rows[6].d, 8);
        assert_eq!(rows[6].psi, 7);
    }

    #[test]
    fn paper_fault_counts_match_tables() {
        assert_eq!(paper_fault_counts().len(), 15);
        assert_eq!(paper_fault_counts()[14], 50);
    }
}
