//! Regeneration of the paper's tables.
//!
//! * Tables 2.1 and 2.2: Monte-Carlo simulation of the surviving component
//!   of B(2,10) and B(4,5) under f randomly placed node faults — average,
//!   maximum and minimum component size (= fault-free cycle length) and
//!   eccentricity of the root R = 0…01, next to the analytic d^n − n·f
//!   column.
//! * Table 3.1: ψ(d) for 2 ≤ d ≤ 38.
//! * Table 3.2: MAX{ψ(d) − 1, φ(d)} for 2 ≤ d ≤ 35.
//!
//! The Monte-Carlo sweep fans trials out over scoped threads (crossbeam)
//! and merges the per-thread accumulators under a parking_lot mutex. Each
//! worker owns one [`EmbedScratch`] reused across all of its trials, so the
//! steady-state loop is allocation-free: drawing a fault set shuffles a
//! preallocated id array in place and `embed_into` runs entirely on the
//! scratch. The 1024-node sweeps regenerate in milliseconds.

use crossbeam::thread;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

use debruijn_core::{EmbedScratch, Ffc};

/// One row of Table 2.1 / 2.2.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ComponentRow {
    /// Number of random node faults injected.
    pub faults: usize,
    /// Number of Monte-Carlo trials behind the row.
    pub trials: usize,
    /// Average size of the component containing R (= average fault-free
    /// cycle length found by the FFC algorithm).
    pub avg_size: f64,
    /// Maximum component size observed.
    pub max_size: usize,
    /// Minimum component size observed.
    pub min_size: usize,
    /// The analytic column d^n − n·f.
    pub guarantee: i64,
    /// Average eccentricity of R within its component (broadcast rounds).
    pub avg_ecc: f64,
    /// Maximum eccentricity observed.
    pub max_ecc: usize,
    /// Minimum eccentricity observed.
    pub min_ecc: usize,
}

/// The fault counts tabulated by the paper: 0–10, then 20, 30, 40, 50.
#[must_use]
pub fn paper_fault_counts() -> Vec<usize> {
    let mut v: Vec<usize> = (0..=10).collect();
    v.extend([20, 30, 40, 50]);
    v
}

/// Runs the Table 2.1/2.2 experiment for B(d,n): for each fault count,
/// `trials` random fault sets are drawn (seeded, reproducible) and the
/// component containing R = 0…01 is measured.
#[must_use]
pub fn component_experiment(
    d: u64,
    n: u32,
    fault_counts: &[usize],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<ComponentRow> {
    let ffc = Ffc::new(d, n);
    let total_nodes = ffc.graph().len();
    let threads = threads.max(1);

    fault_counts
        .iter()
        .map(|&f| {
            // (sum_size, max, min, sum_ecc, max_ecc, min_ecc)
            let acc = Mutex::new((0u64, 0usize, usize::MAX, 0u64, 0usize, usize::MAX));
            let per_thread = trials.div_ceil(threads);
            thread::scope(|scope| {
                for t in 0..threads {
                    let ffc = &ffc;
                    let acc = &acc;
                    scope.spawn(move |_| {
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ (f as u64).wrapping_mul(0x9e37_79b9) ^ (t as u64) << 32,
                        );
                        let count = per_thread.min(trials.saturating_sub(t * per_thread));
                        let mut local = (0u64, 0usize, usize::MAX, 0u64, 0usize, usize::MAX);
                        let mut nodes: Vec<usize> = (0..total_nodes).collect();
                        let mut scratch = EmbedScratch::new();
                        for _ in 0..count {
                            let (faults, _) = nodes.partial_shuffle(&mut rng, f);
                            let out = ffc.embed_into(&mut scratch, faults);
                            local.0 += out.component_size as u64;
                            local.1 = local.1.max(out.component_size);
                            local.2 = local.2.min(out.component_size);
                            local.3 += out.eccentricity as u64;
                            local.4 = local.4.max(out.eccentricity);
                            local.5 = local.5.min(out.eccentricity);
                        }
                        let mut shared = acc.lock();
                        shared.0 += local.0;
                        shared.1 = shared.1.max(local.1);
                        shared.2 = shared.2.min(local.2);
                        shared.3 += local.3;
                        shared.4 = shared.4.max(local.4);
                        shared.5 = shared.5.min(local.5);
                    });
                }
            })
            .expect("worker threads do not panic");

            let (sum_size, max_size, min_size, sum_ecc, max_ecc, min_ecc) = acc.into_inner();
            ComponentRow {
                faults: f,
                trials,
                avg_size: sum_size as f64 / trials as f64,
                max_size,
                min_size,
                guarantee: total_nodes as i64 - (n as i64) * (f as i64),
                avg_ecc: sum_ecc as f64 / trials as f64,
                max_ecc,
                min_ecc,
            }
        })
        .collect()
}

/// One row of Table 3.1 / 3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct BoundRow {
    /// Alphabet size d.
    pub d: u64,
    /// ψ(d): guaranteed number of disjoint Hamiltonian cycles.
    pub psi: u64,
    /// φ(d): the direct edge-fault tolerance of Proposition 3.3.
    pub phi: u64,
    /// MAX{ψ(d) − 1, φ(d)} (Table 3.2).
    pub tolerance: u64,
}

/// Regenerates Table 3.1 (and simultaneously Table 3.2) for the range of d.
#[must_use]
pub fn bounds_table(d_range: std::ops::RangeInclusive<u64>) -> Vec<BoundRow> {
    d_range
        .map(|d| BoundRow {
            d,
            psi: debruijn_core::psi(d),
            phi: debruijn_core::phi_edge_bound(d),
            tolerance: debruijn_core::edge_fault_tolerance(d),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_row_is_exact() {
        let rows = component_experiment(2, 6, &[0], 5, 1, 2);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert_eq!(r.avg_size, 64.0);
        assert_eq!(r.max_size, 64);
        assert_eq!(r.min_size, 64);
        assert_eq!(r.guarantee, 64);
        assert_eq!(r.avg_ecc, 6.0);
    }

    #[test]
    fn fault_rows_track_the_guarantee() {
        // Small-scale version of Table 2.2: within the f ≤ d − 2 regime the
        // component size is exactly d^n minus the removed necklace nodes, so
        // the average never drops below d^n − n·f.
        let rows = component_experiment(4, 4, &[1, 2], 40, 7, 4);
        for r in rows {
            assert!(
                r.avg_size >= r.guarantee as f64,
                "f={}: {} < {}",
                r.faults,
                r.avg_size,
                r.guarantee
            );
            assert!(r.min_size as i64 >= r.guarantee);
            assert!(r.min_ecc <= r.max_ecc);
            assert!(r.max_ecc <= 8, "diameter of B* is at most 2n when f <= d-2");
        }
        // Beyond the guarantee (binary graph): sizes stay close to, but may
        // dip slightly below, the analytic column (cf. Table 2.1).
        let binary = component_experiment(2, 8, &[1, 2, 3], 40, 11, 4);
        for r in binary {
            assert!(r.avg_size >= (r.guarantee - 2 * r.faults as i64) as f64);
        }
    }

    #[test]
    fn bounds_rows_match_core() {
        let rows = bounds_table(2..=10);
        assert_eq!(rows.len(), 9);
        assert_eq!(
            rows[0],
            BoundRow {
                d: 2,
                psi: 1,
                phi: 0,
                tolerance: 0
            }
        );
        assert_eq!(rows[6].d, 8);
        assert_eq!(rows[6].psi, 7);
    }

    #[test]
    fn paper_fault_counts_match_tables() {
        assert_eq!(paper_fault_counts().len(), 15);
        assert_eq!(paper_fault_counts()[14], 50);
    }
}
