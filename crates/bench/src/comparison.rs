//! The hypercube comparison from the Chapter 2 introduction.
//!
//! "It is known that a fault-free cycle of length 2^n − 2f exists in the
//! 2^n-node hypercube when f ≤ n − 2. For example, a fault-free cycle of
//! length 4092 can be found in the 4096-node hypercube when f = 2. By
//! comparison, when there are two faults in the 4096-node De Bruijn graph
//! B(4,6), a fault-free cycle of length at least 4084 can be found. It is
//! worth mentioning that the hypercube has 50% more edges (24,576) than the
//! De Bruijn graph (16,384) in this instance."
//!
//! This module runs both embeddings on equal node counts and reports the
//! achieved cycle lengths, the guarantees and the hardware (link) budgets.

use dbg_baselines::HypercubeRingEmbedder;
use dbg_graph::{Hypercube, Topology};
use debruijn_core::{BatchEmbedder, FaultSchedule, Ffc, FfcOutcome, SweepAccumulator, SweepPlan};
use serde::Serialize;

/// One head-to-head comparison row.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ComparisonRow {
    /// Number of processors in both networks.
    pub nodes: usize,
    /// Number of faults injected (same count in both networks).
    pub faults: usize,
    /// Directed edge count of the de Bruijn graph B(d,n).
    pub debruijn_edges: usize,
    /// Undirected link count of the hypercube Q(log2 nodes).
    pub hypercube_links: usize,
    /// Cycle length achieved by the FFC algorithm (averaged over trials).
    pub debruijn_cycle_avg: f64,
    /// The paper's de Bruijn guarantee d^n − n·f.
    pub debruijn_guarantee: usize,
    /// Cycle length achieved by the hypercube embedder (averaged).
    pub hypercube_cycle_avg: f64,
    /// The hypercube guarantee 2^n − 2f.
    pub hypercube_guarantee: usize,
}

/// The per-shard accumulator of the head-to-head comparison.
#[derive(Clone, Copy, Debug, Default)]
struct CompareAcc {
    trials: usize,
    db_sum: u64,
    hc_sum: u64,
}

impl SweepAccumulator for CompareAcc {
    fn merge(&mut self, other: Self) {
        self.trials += other.trials;
        self.db_sum += other.db_sum;
        self.hc_sum += other.hc_sum;
    }
}

/// Runs the comparison for a hypercube dimension `m` (2^m nodes) against
/// B(d,n) with d^n = 2^m, averaging over `trials` random fault placements.
/// Both embedders see the identical per-trial fault sets: the de Bruijn
/// side runs on the batch sweep engine and the hypercube embedder consumes
/// each trial's drawn faults inside the sweep's `record` hook.
///
/// # Panics
/// Panics if `d^n != 2^m`.
#[must_use]
pub fn compare(d: u64, n: u32, m: u32, faults: usize, trials: usize, seed: u64) -> ComparisonRow {
    let ffc = Ffc::new(d, n);
    let cube = Hypercube::new(m);
    let embedder = HypercubeRingEmbedder::new(m);
    assert_eq!(
        ffc.graph().len(),
        cube.len(),
        "node counts must match for a fair comparison"
    );

    let mut batch = BatchEmbedder::new(1);
    let plan = SweepPlan::new(FaultSchedule::Constant(faults), trials, seed);
    let acc = ffc.embed_batch(&mut batch, &plan, |acc: &mut CompareAcc, trial| {
        acc.trials += 1;
        acc.db_sum += trial.stats.component_size as u64;
        acc.hc_sum += embedder.embed(trial.faults).map_or(0, |c| c.len()) as u64;
    });
    let denom = acc.trials.max(1) as f64;

    ComparisonRow {
        nodes: cube.len(),
        faults,
        debruijn_edges: ffc.graph().edge_count(),
        hypercube_links: cube.link_count(),
        debruijn_cycle_avg: acc.db_sum as f64 / denom,
        debruijn_guarantee: FfcOutcome::guarantee(d, n, faults),
        hypercube_cycle_avg: acc.hc_sum as f64 / denom,
        hypercube_guarantee: HypercubeRingEmbedder::guaranteed_length(m, faults),
    }
}

/// The exact instance quoted by the paper: 4096 nodes, two faults.
#[must_use]
pub fn paper_headline(trials: usize, seed: u64) -> ComparisonRow {
    compare(4, 6, 12, 2, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_comparison_matches_paper_shape() {
        // 256 nodes: B(4,4) vs Q(8), two faults. The de Bruijn ring loses at
        // most n·f = 8 nodes, the hypercube at least 2f = 4; both embedders
        // must meet their guarantees, and the hypercube needs more links.
        let row = compare(4, 4, 8, 2, 5, 3);
        assert_eq!(row.nodes, 256);
        assert!(row.debruijn_cycle_avg >= row.debruijn_guarantee as f64);
        assert!(row.hypercube_cycle_avg >= row.hypercube_guarantee as f64);
        assert_eq!(row.debruijn_edges, 1024);
        assert_eq!(row.hypercube_links, 1024);
        assert_eq!(row.debruijn_guarantee, 256 - 8);
        assert_eq!(row.hypercube_guarantee, 256 - 4);
    }
}
