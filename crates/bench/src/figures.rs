//! Regeneration of the paper's structural figures and worked examples.
//!
//! Each function returns plain text (Graphviz DOT where the original is a
//! drawing, annotated listings where it is a cycle or a table of labels) so
//! the `figures` binary can write them to stdout or to files for visual
//! comparison against the thesis.

use dbg_algebra::gf::GField;
use dbg_algebra::polygf::PolyGf;
use dbg_graph::dot::{digraph_to_dot, ungraph_to_dot};
use dbg_graph::{Butterfly, DeBruijn};
use dbg_necklace::NecklacePartition;
use debruijn_core::disjoint::{MaximalCycleFamily, Strategy};
use debruijn_core::{
    lift_cycle, DisjointHamiltonianCycles, Ffc, ModifiedDeBruijn, NecklaceAdjacency,
};

/// Figure 1.1: the binary de Bruijn graphs B(2,3) and B(2,4), as DOT.
#[must_use]
pub fn figure_1_1() -> String {
    let mut out = String::new();
    for n in [3u32, 4] {
        let g = DeBruijn::new(2, n);
        out.push_str(&digraph_to_dot(
            &g.to_digraph(),
            &format!("B(2,{n})"),
            |v| g.label(v),
        ));
        out.push('\n');
    }
    out
}

/// Figure 1.2: the undirected binary de Bruijn graph UB(2,3), as DOT.
#[must_use]
pub fn figure_1_2() -> String {
    let g = DeBruijn::new(2, 3);
    ungraph_to_dot(&g.to_undirected(), "UB(2,3)", |v| g.label(v))
}

/// Figure 2.3 and Example 2.1: the necklace adjacency graph of
/// B(3,3) − {N(020), N(112)} as DOT, followed by the fault-free cycle the
/// FFC algorithm finds.
#[must_use]
pub fn figure_2_3_and_example_2_1() -> String {
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
    let mask = ffc.faulty_necklace_mask(&faults);
    let part = NecklacePartition::new(g.space());
    let adjacency = NecklaceAdjacency::build(g, &part, |id| !mask[id]);
    let mut out = adjacency.to_dot(&part);
    let outcome = ffc.embed(&faults);
    out.push_str(&format!(
        "\n# Example 2.1: faults at 020 and 112 remove {} nodes; the FFC cycle has length {}:\n# H = ({})\n",
        outcome.removed_nodes,
        outcome.cycle.len(),
        outcome
            .cycle
            .iter()
            .map(|&v| g.label(v))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out
}

/// Examples 3.1–3.4: maximal cycles and disjoint Hamiltonian cycles in
/// B(5,2) and B(4,2), printed as circular sequences.
#[must_use]
pub fn examples_3_1_to_3_4() -> String {
    let mut out = String::new();

    // Example 3.1: the maximal cycle of B(5,2) from x^2 - x - 3.
    let field5 = GField::new(5);
    let poly = PolyGf::new(&[2, 4, 1]);
    let family = MaximalCycleFamily::with_polynomial(field5, poly);
    out.push_str(&format!(
        "# Example 3.1: maximal cycle in B(5,2) from x^2 - x - 3 over GF(5)\nC = {:?}\n\n",
        family.base_symbols()
    ));

    // Example 3.2: three disjoint Hamiltonian cycles in B(4,2).
    let dhc4 = DisjointHamiltonianCycles::construct(4, 2);
    out.push_str("# Example 3.2: disjoint Hamiltonian cycles in B(4,2) (Strategy 1)\n");
    for (i, seq) in dhc4.symbol_sequences().iter().enumerate() {
        out.push_str(&format!("H{} = {:?}\n", i + 1, seq));
    }
    out.push('\n');

    // Example 3.4: two disjoint Hamiltonian cycles in B(5,2).
    let dhc5 = DisjointHamiltonianCycles::construct(5, 2);
    out.push_str("# Example 3.4: disjoint Hamiltonian cycles in B(5,2) (Strategy 3)\n");
    for (i, seq) in dhc5.symbol_sequences().iter().enumerate() {
        out.push_str(&format!("H{} = {:?}\n", i + 1, seq));
    }
    out
}

/// Figure 3.2: the conflict structure of the Hamiltonian cycles H_x in
/// B(13,n) under Strategy 2 (vertices x, y joined when H_x and H_y may share
/// an edge).
#[must_use]
pub fn figure_3_2() -> String {
    let field = GField::new(13);
    let strategy = Strategy::select(13);
    let mut out = String::from("graph \"Figure 3.2: conflicts of H_x in B(13,n)\" {\n");
    for x in 0..13u64 {
        for y in strategy.conflict_partners(&field, x) {
            if x < y {
                out.push_str(&format!("  x{x} -- x{y};\n"));
            }
        }
    }
    out.push_str("}\n");
    out.push_str(&format!(
        "# selected translates (pairwise conflict-free): {:?}\n",
        strategy.selected_translates(&field)
    ));
    out
}

/// Figure 3.3 / Example 3.6: the Hamiltonian decomposition of UMB(2,3).
#[must_use]
pub fn figure_3_3() -> String {
    let m = ModifiedDeBruijn::construct(2, 3);
    let space = m.space();
    let mut out = String::from("# Figure 3.3: Hamiltonian decomposition of UMB(2,3)\n");
    for (i, cycle) in m.cycles().iter().enumerate() {
        out.push_str(&format!(
            "cycle {} = ({})\n",
            i + 1,
            cycle
                .iter()
                .map(|&v| space.format(v as u64))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str(&format!(
        "extra (non-de-Bruijn) directed edges: {:?}\n",
        m.extra_edges()
            .iter()
            .map(|&(u, v)| format!("{}->{}", space.format(u as u64), space.format(v as u64)))
            .collect::<Vec<_>>()
    ));
    out
}

/// Figures 3.4 / 3.5: the butterfly F(2,3) and its partition into de Bruijn
/// classes, plus a lifted Hamiltonian cycle (Proposition 3.6 in action).
#[must_use]
pub fn figures_3_4_and_3_5() -> String {
    let f = Butterfly::new(2, 3);
    let b = DeBruijn::new(2, 3);
    let mut out = digraph_to_dot(&f.to_digraph(), "F(2,3)", |v| f.label(v));
    out.push_str("\n# Figure 3.5: the de Bruijn classes S_x partitioning F(2,3)\n");
    for x in 0..b.len() {
        let class: Vec<String> = f
            .debruijn_class(x as u64)
            .into_iter()
            .map(|v| f.label(v))
            .collect();
        out.push_str(&format!("S_{} = {{{}}}\n", b.label(x), class.join(", ")));
    }
    let dhc = DisjointHamiltonianCycles::construct(2, 3);
    let lifted = lift_cycle(&f, &dhc.cycles()[0]);
    out.push_str(&format!(
        "\n# A Hamiltonian cycle of B(2,3) lifted to a {}-node Hamiltonian cycle of F(2,3):\n# ({})\n",
        lifted.len(),
        lifted.iter().map(|&v| f.label(v)).collect::<Vec<_>>().join(", ")
    ));
    out
}

/// Figures 2.1 / 2.2 are generic schematics (how w-edges join necklaces and
/// how a tree is modified); this regenerates them concretely for the
/// Example 2.1 instance by listing, for each w-group of the modified tree D,
/// its member necklaces in cycle order.
#[must_use]
pub fn figure_2_2_modified_tree() -> String {
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
    let outcome = ffc.embed(&faults);
    let space = g.space();
    let part = ffc.partition();
    // Recover the w-groups from the cycle: an edge that leaves a necklace is
    // a w-edge of D.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let cycle = &outcome.cycle;
    for i in 0..cycle.len() {
        let u = cycle[i];
        let v = cycle[(i + 1) % cycle.len()];
        if !part.same_necklace(u as u64, v as u64) {
            let w = u as u64 % space.msd_place();
            let label_space = dbg_algebra::words::WordSpace::new(space.d(), space.n() - 1);
            groups.entry(w).or_default().push(format!(
                "{} --{}--> {}",
                part.necklace_of(u as u64).format(space),
                label_space.format(w),
                part.necklace_of(v as u64).format(space)
            ));
        }
    }
    let mut out = String::from("# Modified tree D for Example 2.1 (w-edges actually used by H)\n");
    for (_, edges) in groups {
        for e in edges {
            out.push_str(&e);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_nonempty_and_mention_key_labels() {
        assert!(figure_1_1().contains("B(2,3)"));
        assert!(figure_1_2().contains("graph"));
        let f23 = figure_2_3_and_example_2_1();
        assert!(f23.contains("[000]") && f23.contains("length 21"));
        let ex3 = examples_3_1_to_3_4();
        assert!(ex3.contains("Example 3.1") && ex3.contains("H1"));
        assert!(figure_3_2().contains("x0 -- x7") || figure_3_2().contains("x7"));
        assert!(figure_3_3().contains("cycle 2"));
        assert!(figures_3_4_and_3_5().contains("S_000"));
        assert!(figure_2_2_modified_tree().contains("-->"));
    }

    #[test]
    fn example_3_1_sequence_matches_paper() {
        let s = examples_3_1_to_3_4();
        assert!(
            s.contains("[0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2]")
        );
    }
}
