//! Exhaustive/randomised verification sweeps for the paper's propositions.
//!
//! These are the "does the shape of the theory hold in the code?" harnesses:
//! * Proposition 2.2 — cycle length ≥ d^n − n·f and root eccentricity ≤ 2n
//!   under every fault set of size ≤ d − 2 (sampled when the space is too
//!   large to enumerate);
//! * Proposition 2.3 — binary single-fault bound 2^n − (n+1);
//! * Propositions 3.3 / 3.4 — a fault-free Hamiltonian cycle under up to
//!   MAX{ψ(d) − 1, φ(d)} random link faults.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use dbg_graph::DeBruijn;
use debruijn_core::{EdgeFaultEmbedder, Ffc, FfcOutcome};

/// Result of a node-fault sweep (Propositions 2.2 / 2.3).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NodeFaultSweep {
    /// Alphabet size.
    pub d: u64,
    /// Word length.
    pub n: u32,
    /// Number of faults per trial.
    pub faults: usize,
    /// Number of fault sets examined.
    pub trials: usize,
    /// Shortest cycle observed.
    pub min_cycle: usize,
    /// The guarantee d^n − n·f.
    pub guarantee: usize,
    /// Largest eccentricity observed.
    pub max_eccentricity: usize,
    /// Whether every trial met the guarantee.
    pub all_meet_guarantee: bool,
}

/// Sweeps random fault sets of size `faults` through B(d,n) and records the
/// worst outcome (Proposition 2.2 check; with d = 2 and one fault this is
/// the Proposition 2.3 check against 2^n − (n+1)).
#[must_use]
pub fn node_fault_sweep(d: u64, n: u32, faults: usize, trials: usize, seed: u64) -> NodeFaultSweep {
    let ffc = Ffc::new(d, n);
    let total = ffc.graph().len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..total).collect();
    let mut min_cycle = usize::MAX;
    let mut max_ecc = 0usize;
    let guarantee = if d == 2 && faults == 1 {
        total - (n as usize + 1)
    } else {
        FfcOutcome::guarantee(d, n, faults)
    };
    let mut all_ok = true;
    for _ in 0..trials {
        let (chosen, _) = nodes.partial_shuffle(&mut rng, faults);
        let chosen: Vec<usize> = chosen.to_vec();
        let out = ffc.embed(&chosen);
        min_cycle = min_cycle.min(out.cycle.len());
        max_ecc = max_ecc.max(out.eccentricity);
        if out.cycle.len() < guarantee {
            all_ok = false;
        }
    }
    NodeFaultSweep {
        d,
        n,
        faults,
        trials,
        min_cycle,
        guarantee,
        max_eccentricity: max_ecc,
        all_meet_guarantee: all_ok,
    }
}

/// Result of a link-fault sweep (Propositions 3.3 / 3.4).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EdgeFaultSweep {
    /// Alphabet size.
    pub d: u64,
    /// Word length.
    pub n: u32,
    /// Number of faulty links per trial.
    pub faults: usize,
    /// Whether that count is within the guaranteed tolerance
    /// MAX{ψ(d)−1, φ(d)} — a failed trial of a guaranteed row is a bug, a
    /// failed trial of an over-budget row is an expected outcome the row
    /// simply records.
    pub guaranteed: bool,
    /// Number of fault sets examined.
    pub trials: usize,
    /// How many trials produced a (validated) fault-free Hamiltonian
    /// cycle. The remaining `trials - successes` returned the typed
    /// [`debruijn_core::NoFaultFreeCycle`] failure — the sweep records
    /// them instead of aborting the run.
    pub successes: usize,
}

/// Sweeps random link-fault sets of the guaranteed size MAX{ψ(d)−1, φ(d)}
/// through B(d,n) and counts how often a fault-free Hamiltonian cycle is
/// found (the answer must be: always).
#[must_use]
pub fn edge_fault_sweep(d: u64, n: u32, trials: usize, seed: u64) -> EdgeFaultSweep {
    edge_fault_sweep_at(d, n, EdgeFaultEmbedder::tolerance(d) as usize, trials, seed)
}

/// [`edge_fault_sweep`] at an explicit per-trial fault count, which may
/// exceed the guarantee: every trial's outcome — success or the typed
/// [`debruijn_core::NoFaultFreeCycle`] failure — is tallied into the row,
/// so over-budget inputs degrade a row's `successes` count instead of
/// panicking out of the whole sweep (the regression the over-budget tests
/// pin down).
#[must_use]
pub fn edge_fault_sweep_at(
    d: u64,
    n: u32,
    faults_per_trial: usize,
    trials: usize,
    seed: u64,
) -> EdgeFaultSweep {
    let embedder = EdgeFaultEmbedder::new(d, n);
    let g = DeBruijn::new(d, n);
    // A trial draws distinct non-loop edges; the graph only has so many.
    let non_loop_edges = g.len() * d as usize - d as usize;
    let faults_per_trial = faults_per_trial.min(non_loop_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0usize;
    for _ in 0..trials {
        let mut faults = Vec::new();
        while faults.len() < faults_per_trial {
            let u = rng.gen_range(0..g.len());
            let v = g.successor(u, rng.gen_range(0..d));
            if u != v && !faults.contains(&(u, v)) {
                faults.push((u, v));
            }
        }
        if let Ok(cycle) = embedder.try_hamiltonian_avoiding(&faults) {
            let valid = cycle.len() == g.len()
                && (0..cycle.len()).all(|i| {
                    let e = (cycle[i], cycle[(i + 1) % cycle.len()]);
                    g.is_edge(e.0, e.1) && !faults.contains(&e)
                });
            if valid {
                successes += 1;
            }
        }
    }
    EdgeFaultSweep {
        d,
        n,
        faults: faults_per_trial,
        guaranteed: faults_per_trial as u64 <= EdgeFaultEmbedder::tolerance(d),
        trials,
        successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition_2_2_sweep() {
        let sweep = node_fault_sweep(4, 3, 2, 30, 5);
        assert!(sweep.all_meet_guarantee);
        assert!(sweep.max_eccentricity <= 6);
        assert_eq!(sweep.guarantee, 64 - 6);
    }

    #[test]
    fn proposition_2_3_sweep_uses_binary_bound() {
        let sweep = node_fault_sweep(2, 7, 1, 30, 5);
        assert_eq!(sweep.guarantee, 128 - 8);
        assert!(sweep.all_meet_guarantee);
    }

    #[test]
    fn proposition_3_4_sweep() {
        for d in [4u64, 5, 6] {
            let sweep = edge_fault_sweep(d, 2, 10, 9);
            assert_eq!(sweep.successes, sweep.trials, "d={d}");
            assert!(sweep.guaranteed);
        }
    }

    /// Satellite regression: a sweep row whose fault count exceeds the
    /// guarantee must complete and *report* its failures — the old
    /// table-driver pattern panicked out of the whole run on the first
    /// over-budget fault set that found no cycle.
    #[test]
    fn over_budget_sweep_rows_report_failures_without_panicking() {
        // φ(4) = ψ(4) − 1 = 2; at 7 of B(4,2)'s 12 non-loop links the
        // guarantee is far behind and some draws genuinely defeat the
        // embedder (e.g. all three in-edges of a node among the seven).
        let sweep = edge_fault_sweep_at(4, 2, 7, 40, 1234);
        assert!(!sweep.guaranteed);
        assert_eq!(sweep.faults, 7);
        assert_eq!(sweep.trials, 40);
        assert!(
            sweep.successes < sweep.trials,
            "expected at least one over-budget failure to be recorded \
             (got {}/{})",
            sweep.successes,
            sweep.trials
        );
        // And the guaranteed count on the same graph still never fails.
        let guaranteed = edge_fault_sweep_at(4, 2, 2, 40, 1234);
        assert!(guaranteed.guaranteed);
        assert_eq!(guaranteed.successes, guaranteed.trials);
    }
}
