//! Plain-text table rendering for the experiment binaries.

use crate::tables::{BoundRow, ComponentRow};

/// Renders Table 2.1/2.2 rows in the paper's column layout.
#[must_use]
pub fn render_component_table(title: &str, rows: &[ComponentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8}\n",
        "f", "Avg.Size", "Max.Size", "Min.Size", "d^n-nf", "Avg.Ecc", "Max.Ecc", "Min.Ecc"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>10.2} {:>10} {:>10} {:>10} {:>9.2} {:>8} {:>8}\n",
            r.faults,
            r.avg_size,
            r.max_size,
            r.min_size,
            r.guarantee,
            r.avg_ecc,
            r.max_ecc,
            r.min_ecc
        ));
    }
    out
}

/// Renders Table 3.1 (ψ) in the paper's layout.
#[must_use]
pub fn render_psi_table(rows: &[BoundRow]) -> String {
    let mut out = String::from("Table 3.1: psi(d)\n   d: ");
    for r in rows {
        out.push_str(&format!("{:>4}", r.d));
    }
    out.push_str("\n psi: ");
    for r in rows {
        out.push_str(&format!("{:>4}", r.psi));
    }
    out.push('\n');
    out
}

/// Renders Table 3.2 (MAX{ψ−1, φ}) in the paper's layout.
#[must_use]
pub fn render_tolerance_table(rows: &[BoundRow]) -> String {
    let mut out = String::from("Table 3.2: MAX{psi(d)-1, phi(d)}\n   d: ");
    for r in rows {
        out.push_str(&format!("{:>4}", r.d));
    }
    out.push_str("\n tol: ");
    for r in rows {
        out.push_str(&format!("{:>4}", r.tolerance));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::bounds_table;

    #[test]
    fn renderers_produce_aligned_rows() {
        let rows = bounds_table(2..=6);
        let psi = render_psi_table(&rows);
        assert!(psi.contains("psi"));
        assert_eq!(psi.lines().count(), 3);
        let tol = render_tolerance_table(&rows);
        assert!(tol.contains("MAX"));
        let comp = render_component_table(
            "Table X",
            &[ComponentRow {
                faults: 1,
                trials: 2,
                avg_size: 10.0,
                max_size: 12,
                min_size: 8,
                guarantee: 9,
                avg_ecc: 3.5,
                max_ecc: 4,
                min_ecc: 3,
            }],
        );
        assert!(comp.contains("Avg.Size"));
        assert!(comp.lines().count() >= 3);
    }
}
