//! The Chapter 4 necklace census.
//!
//! Regenerates every worked number of Section 4.3 (counts by length, by
//! weight and by type) and cross-checks the closed formulas against an
//! explicit enumeration on a graph small enough to enumerate.

use dbg_algebra::words::WordSpace;
use dbg_necklace::{
    count_necklaces_by_length, count_necklaces_by_weight, count_necklaces_by_weight_and_length,
    count_necklaces_total, NecklacePartition,
};
use serde::Serialize;

/// A single census line: a described count and its value.
#[derive(Clone, Debug, Serialize)]
pub struct CensusLine {
    /// Human-readable description of what is being counted.
    pub description: String,
    /// The count from the Möbius-inversion formula.
    pub formula: u128,
    /// The count from explicit enumeration (`None` when the graph is too
    /// large to enumerate in a census run).
    pub enumerated: Option<u128>,
}

/// Regenerates the Section 4.3 examples plus enumeration cross-checks.
#[must_use]
#[allow(clippy::vec_init_then_push)] // a literal list, kept as sequential pushes for diffability
pub fn chapter_4_census() -> Vec<CensusLine> {
    let mut lines = Vec::new();

    lines.push(CensusLine {
        description: "necklaces of length 6 in B(2,12)".into(),
        formula: count_necklaces_by_length(2, 12, 6),
        enumerated: Some(enumerate_by_length(2, 12, 6)),
    });
    lines.push(CensusLine {
        description: "total necklaces in B(2,12)".into(),
        formula: count_necklaces_total(2, 12),
        enumerated: Some(enumerate_total(2, 12)),
    });
    lines.push(CensusLine {
        description: "necklaces of weight 4 and length 6 in B(2,12)".into(),
        formula: count_necklaces_by_weight_and_length(2, 12, 4, 6),
        enumerated: Some(enumerate_by_weight_and_length(2, 12, 4, 6)),
    });
    lines.push(CensusLine {
        description: "total necklaces of weight 4 in B(2,12)".into(),
        formula: count_necklaces_by_weight(2, 12, 4),
        enumerated: Some(enumerate_by_weight(2, 12, 4)),
    });
    lines.push(CensusLine {
        description: "necklaces of weight 4 and length 4 in B(3,4)".into(),
        formula: count_necklaces_by_weight_and_length(3, 4, 4, 4),
        enumerated: Some(enumerate_by_weight_and_length(3, 4, 4, 4)),
    });
    // A couple of larger instances where only the formula is practical.
    lines.push(CensusLine {
        description: "total necklaces in B(2,24)".into(),
        formula: count_necklaces_total(2, 24),
        enumerated: None,
    });
    lines.push(CensusLine {
        description: "total necklaces in B(4,12)".into(),
        formula: count_necklaces_total(4, 12),
        enumerated: None,
    });
    lines
}

fn enumerate_total(d: u64, n: u32) -> u128 {
    NecklacePartition::new(WordSpace::new(d, n)).len() as u128
}

fn enumerate_by_length(d: u64, n: u32, t: u64) -> u128 {
    NecklacePartition::new(WordSpace::new(d, n))
        .necklaces()
        .iter()
        .filter(|x| x.len() as u64 == t)
        .count() as u128
}

fn enumerate_by_weight(d: u64, n: u32, k: u64) -> u128 {
    let space = WordSpace::new(d, n);
    NecklacePartition::new(space)
        .necklaces()
        .iter()
        .filter(|x| space.weight(x.representative()) == k)
        .count() as u128
}

fn enumerate_by_weight_and_length(d: u64, n: u32, k: u64, t: u64) -> u128 {
    let space = WordSpace::new(d, n);
    NecklacePartition::new(space)
        .necklaces()
        .iter()
        .filter(|x| x.len() as u64 == t && space.weight(x.representative()) == k)
        .count() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_paper_and_enumeration() {
        let lines = chapter_4_census();
        let expected_formulas: Vec<u128> = vec![9, 352, 2, 43, 4];
        for (line, want) in lines.iter().zip(expected_formulas) {
            assert_eq!(line.formula, want, "{}", line.description);
            if let Some(enumerated) = line.enumerated {
                assert_eq!(line.formula, enumerated, "{}", line.description);
            }
        }
    }
}
