//! Experiment harness for the Rowley–Bose reproduction.
//!
//! Every table and figure of the thesis' evaluation has a regeneration
//! entry point here, shared between the command-line binaries
//! (`cargo run -p dbg-bench --bin table_2_1`, …) and the Criterion
//! benchmarks (`cargo bench`). The functions return plain serde-serialisable
//! structs so results can be both pretty-printed and archived.
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Tables 2.1 / 2.2 (component size & eccentricity under random faults) | [`tables`] |
//! | Tables 3.1 / 3.2 (ψ(d) and MAX{ψ−1, φ}) | [`tables`] |
//! | Chapter 2 intro hypercube comparison | [`comparison`] |
//! | Propositions 2.2 / 2.3 / 3.3 / 3.4 sweeps | [`props`] |
//! | Figures 1.1–3.5 and the worked examples | [`figures`] |
//! | Chapter 4 necklace-census examples | [`census`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod comparison;
pub mod figures;
pub mod props;
pub mod report;
pub mod tables;
