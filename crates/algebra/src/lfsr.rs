//! Linear recurrences (LFSRs) over GF(q) and maximal sequences.
//!
//! Section 3.1 of the paper: a sequence C defined by the recurrence
//!
//! ```text
//! c_{n+i} = a_{n−1} c_{n−1+i} + … + a_0 c_i          (Equation 3.1)
//! ```
//!
//! over GF(d) with non-zero initial conditions corresponds to a cycle of
//! length `period(C)` in B(d,n). When the characteristic polynomial
//! (Equation 3.2) is *primitive*, the period is d^n − 1 and the cycle is a
//! **maximal cycle**: it visits every node of B(d,n) except 0^n. These are
//! the raw material of every disjoint-Hamiltonian-cycle construction in
//! Chapter 3.

use crate::gf::GField;
use crate::num::checked_pow;
use crate::polygf::PolyGf;

/// A linear-feedback shift register over GF(q).
#[derive(Clone, Debug)]
pub struct Lfsr {
    field: GField,
    /// Recurrence coefficients `[a_0, …, a_{n−1}]` of Equation 3.1.
    recurrence: Vec<u64>,
    /// Current window `c_i … c_{i+n−1}` (oldest first).
    state: Vec<u64>,
}

impl Lfsr {
    /// Creates an LFSR with the given recurrence coefficients
    /// `[a_0, …, a_{n−1}]` and initial conditions `[c_0, …, c_{n−1}]`.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths, are empty, or
    /// contain values outside the field.
    #[must_use]
    pub fn new(field: GField, recurrence: &[u64], initial: &[u64]) -> Self {
        assert!(
            !recurrence.is_empty(),
            "the recurrence order must be at least 1"
        );
        assert_eq!(
            recurrence.len(),
            initial.len(),
            "recurrence/initial length mismatch"
        );
        let q = field.order();
        assert!(
            recurrence.iter().all(|&a| a < q),
            "recurrence coefficient outside GF({q})"
        );
        assert!(
            initial.iter().all(|&c| c < q),
            "initial condition outside GF({q})"
        );
        Lfsr {
            field,
            recurrence: recurrence.to_vec(),
            state: initial.to_vec(),
        }
    }

    /// Creates the LFSR whose characteristic polynomial is `poly`
    /// (monic, degree n ≥ 1), with the given initial conditions.
    #[must_use]
    pub fn from_characteristic(field: GField, poly: &PolyGf, initial: &[u64]) -> Self {
        let rec = poly.to_recurrence(&field);
        Self::new(field, &rec, initial)
    }

    /// The field this register runs over.
    #[must_use]
    pub fn field(&self) -> &GField {
        &self.field
    }

    /// The recurrence order n.
    #[must_use]
    pub fn order(&self) -> usize {
        self.recurrence.len()
    }

    /// The recurrence coefficients `[a_0, …, a_{n−1}]`.
    #[must_use]
    pub fn recurrence(&self) -> &[u64] {
        &self.recurrence
    }

    /// The current state window (oldest element first).
    #[must_use]
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// ω = a_0 + … + a_{n−1}, the sum of the recurrence coefficients
    /// (Lemma 3.2 writes it as the constant that couples translated cycles).
    #[must_use]
    pub fn coefficient_sum(&self) -> u64 {
        self.field.sum(self.recurrence.iter().copied())
    }

    /// The characteristic polynomial of the recurrence (Equation 3.2).
    #[must_use]
    pub fn characteristic_polynomial(&self) -> PolyGf {
        PolyGf::from_recurrence(&self.recurrence, &self.field)
    }

    /// Advances one step and returns the element that was shifted out
    /// (the oldest element of the window).
    pub fn step(&mut self) -> u64 {
        let f = &self.field;
        let next = self
            .recurrence
            .iter()
            .zip(self.state.iter())
            .fold(0u64, |acc, (&a, &c)| f.add(acc, f.mul(a, c)));
        let out = self.state[0];
        self.state.rotate_left(1);
        let n = self.state.len();
        self.state[n - 1] = next;
        out
    }

    /// Generates the next `k` sequence elements `c_i, c_{i+1}, …`.
    pub fn generate(&mut self, k: usize) -> Vec<u64> {
        (0..k).map(|_| self.step()).collect()
    }

    /// The period of the sequence from the *current* state: the least k > 0
    /// returning the state window to its present value. Returns `None` if
    /// the state is all-zero with a period of 1 (degenerate) — in that case
    /// 1 is still returned, so in practice this is always `Some`.
    #[must_use]
    pub fn period(&self) -> u64 {
        let start = self.state.clone();
        let mut probe = self.clone();
        let limit =
            checked_pow(self.field.order(), self.order() as u32).expect("q^n overflows u64");
        for k in 1..=limit {
            probe.step();
            if probe.state == start {
                return k;
            }
        }
        unreachable!("an LFSR state always recurs within q^n steps")
    }

    /// Produces one full period of the sequence starting from the current
    /// state (the state is left unchanged). The result, read circularly,
    /// is exactly the cycle notation `[c_0, c_1, …, c_{k−1}]` of Section 3.1.
    #[must_use]
    pub fn full_period(&self) -> Vec<u64> {
        let start = self.state.clone();
        let mut probe = self.clone();
        let mut out = Vec::new();
        loop {
            out.push(probe.step());
            if probe.state == start {
                return out;
            }
        }
    }
}

/// Constructs a maximal sequence (maximal cycle) of length d^n − 1 over
/// GF(d): finds a primitive polynomial of degree n over GF(d), runs the
/// recurrence from the initial conditions `0, 0, …, 0, 1`, and returns the
/// field together with the full period.
///
/// # Panics
/// Panics if `d` is not a prime power.
#[must_use]
pub fn maximal_sequence(d: u64, n: usize) -> (GField, Vec<u64>) {
    let field = GField::new(d);
    let poly = PolyGf::find_primitive(&field, n);
    let mut initial = vec![0u64; n];
    initial[n - 1] = 1;
    let lfsr = Lfsr::from_characteristic(field.clone(), &poly, &initial);
    let seq = lfsr.full_period();
    (field, seq)
}

/// Constructs a maximal sequence from an explicit primitive characteristic
/// polynomial and initial conditions — used to reproduce the paper's worked
/// examples verbatim (Examples 3.1, 3.2, 3.6).
#[must_use]
pub fn maximal_sequence_with(field: &GField, poly: &PolyGf, initial: &[u64]) -> Vec<u64> {
    let lfsr = Lfsr::from_characteristic(field.clone(), poly, initial);
    lfsr.full_period()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_1_maximal_cycle_in_b52() {
        // Recurrence s_{2+i} = s_{1+i} + 3 s_i over GF(5), initial 0, 1.
        // Expected period-24 cycle from the paper:
        let expected = vec![
            0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2,
        ];
        let field = GField::new(5);
        let poly = PolyGf::new(&[2, 4, 1]); // x^2 - x - 3
        let seq = maximal_sequence_with(&field, &poly, &[0, 1]);
        assert_eq!(seq, expected);
    }

    #[test]
    fn example_3_6_binary_maximal_cycle() {
        // c_{i+3} = c_{i+2} + c_i over GF(2), initial 0,0,1 → [0,0,1,1,1,0,1].
        let field = GField::new(2);
        let poly = PolyGf::from_recurrence(&[1, 0, 1], &field); // a_0=1, a_1=0, a_2=1
        let seq = maximal_sequence_with(&field, &poly, &[0, 0, 1]);
        assert_eq!(seq, vec![0, 0, 1, 1, 1, 0, 1]);
    }

    #[test]
    fn maximal_sequence_lengths() {
        for (d, n) in [
            (2u64, 3usize),
            (2, 5),
            (3, 3),
            (4, 2),
            (5, 2),
            (8, 2),
            (9, 2),
        ] {
            let (field, seq) = maximal_sequence(d, n);
            assert_eq!(field.order(), d);
            assert_eq!(seq.len() as u64, crate::num::pow(d, n as u32) - 1);
        }
    }

    #[test]
    fn maximal_sequence_is_de_bruijn_minus_zero() {
        // Every n-window of the circular sequence is distinct, and together
        // they cover all d^n - 1 nonzero-state windows.
        let (_, seq) = maximal_sequence(3, 3);
        let k = seq.len();
        let mut seen = std::collections::HashSet::new();
        for i in 0..k {
            let window: Vec<u64> = (0..3).map(|j| seq[(i + j) % k]).collect();
            assert_ne!(window, vec![0, 0, 0]);
            assert!(seen.insert(window), "repeated window at {i}");
        }
        assert_eq!(seen.len(), 26);
    }

    #[test]
    fn period_divides_order_of_characteristic_polynomial() {
        let field = GField::new(3);
        // x^2 + 1 has order 4 over GF(3) (irreducible, not primitive).
        let poly = PolyGf::new(&[1, 0, 1]);
        let lfsr = Lfsr::from_characteristic(field, &poly, &[0, 1]);
        assert_eq!(lfsr.period(), 4);
    }

    #[test]
    fn zero_state_has_period_one() {
        let field = GField::new(5);
        let lfsr = Lfsr::new(field, &[3, 1], &[0, 0]);
        assert_eq!(lfsr.period(), 1);
        assert_eq!(lfsr.full_period(), vec![0]);
    }

    #[test]
    fn step_preserves_recurrence_law() {
        let field = GField::new(7);
        let mut lfsr = Lfsr::new(field.clone(), &[2, 0, 5], &[1, 3, 6]);
        let seq = lfsr.generate(50);
        for i in 0..seq.len() - 3 {
            let expect = field.add(
                field.add(field.mul(2, seq[i]), field.mul(0, seq[i + 1])),
                field.mul(5, seq[i + 2]),
            );
            assert_eq!(seq[i + 3], expect, "recurrence violated at {i}");
        }
    }

    #[test]
    fn coefficient_sum_omega() {
        let field = GField::new(5);
        let lfsr = Lfsr::new(field, &[3, 1], &[0, 1]);
        // ω = 3 + 1 = 4 in GF(5) (Example 3.4 notes ω = 4).
        assert_eq!(lfsr.coefficient_sum(), 4);
    }

    #[test]
    fn full_period_does_not_disturb_state() {
        let field = GField::new(4);
        let poly = PolyGf::find_primitive(&field, 2);
        let lfsr = Lfsr::from_characteristic(field, &poly, &[0, 1]);
        let before = lfsr.state().to_vec();
        let _ = lfsr.full_period();
        assert_eq!(lfsr.state(), &before[..]);
    }
}
