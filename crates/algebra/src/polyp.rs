//! Dense polynomials over the prime field Z_p.
//!
//! These are the workhorse for constructing Galois fields GF(p^e): the
//! field is built as Z_p[x] modulo a degree-e primitive polynomial, which
//! this module can find by exhaustive search (alphabet sizes in
//! interconnection networks are tiny, so the search space is as well).
//!
//! The same machinery implements the classical tests the paper relies on in
//! Section 3.1: irreducibility, the *order* of a polynomial (the least k
//! with f(x) | x^k − 1), and primitivity (irreducible of order p^n − 1).

use crate::num::{factorize, is_prime, mod_inverse, pow, prime_divisors};

/// A polynomial over Z_p, stored as coefficients `c[i]` of `x^i` with no
/// trailing zeros (the zero polynomial has an empty coefficient vector).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PolyP {
    p: u64,
    coeffs: Vec<u64>,
}

impl std::fmt::Debug for PolyP {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0 (mod {})", self.p);
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .rev()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| match i {
                0 => format!("{c}"),
                1 if c == 1 => "x".to_string(),
                1 => format!("{c}x"),
                _ if c == 1 => format!("x^{i}"),
                _ => format!("{c}x^{i}"),
            })
            .collect();
        write!(f, "{} (mod {})", terms.join(" + "), self.p)
    }
}

impl PolyP {
    /// Builds a polynomial from coefficients of `x^0, x^1, …` (low degree first),
    /// reducing each modulo `p` and trimming trailing zeros.
    ///
    /// # Panics
    /// Panics if `p` is not prime.
    #[must_use]
    pub fn new(p: u64, coeffs: &[u64]) -> Self {
        assert!(is_prime(p), "PolyP requires a prime modulus, got {p}");
        let mut c: Vec<u64> = coeffs.iter().map(|&x| x % p).collect();
        while c.last() == Some(&0) {
            c.pop();
        }
        PolyP { p, coeffs: c }
    }

    /// The zero polynomial over Z_p.
    #[must_use]
    pub fn zero(p: u64) -> Self {
        Self::new(p, &[])
    }

    /// The constant polynomial 1.
    #[must_use]
    pub fn one(p: u64) -> Self {
        Self::new(p, &[1])
    }

    /// The monomial x.
    #[must_use]
    pub fn x(p: u64) -> Self {
        Self::new(p, &[0, 1])
    }

    /// The monomial x^k.
    #[must_use]
    pub fn x_pow(p: u64, k: usize) -> Self {
        let mut c = vec![0u64; k + 1];
        c[k] = 1;
        Self::new(p, &c)
    }

    /// The field characteristic p.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The coefficient of x^i (zero beyond the degree).
    #[must_use]
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The coefficient slice, low degree first (empty for the zero polynomial).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree; the zero polynomial is given degree 0 by convention
    /// (call [`PolyP::is_zero`] to distinguish it).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Whether the leading coefficient is 1.
    #[must_use]
    pub fn is_monic(&self) -> bool {
        self.coeffs.last() == Some(&1)
    }

    fn assert_same_field(&self, other: &Self) {
        assert_eq!(self.p, other.p, "polynomials over different prime fields");
    }

    /// Polynomial addition.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_field(other);
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut c = vec![0u64; len];
        for (i, slot) in c.iter_mut().enumerate() {
            *slot = (self.coeff(i) + other.coeff(i)) % self.p;
        }
        Self::new(self.p, &c)
    }

    /// Polynomial subtraction.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_same_field(other);
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut c = vec![0u64; len];
        for (i, slot) in c.iter_mut().enumerate() {
            *slot = (self.coeff(i) + self.p - other.coeff(i)) % self.p;
        }
        Self::new(self.p, &c)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        self.assert_same_field(other);
        if self.is_zero() || other.is_zero() {
            return Self::zero(self.p);
        }
        let mut c = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                c[i + j] = (c[i + j] + a * b) % self.p;
            }
        }
        Self::new(self.p, &c)
    }

    /// Multiplication by a scalar from Z_p.
    #[must_use]
    pub fn scale(&self, k: u64) -> Self {
        let c: Vec<u64> = self
            .coeffs
            .iter()
            .map(|&a| a * (k % self.p) % self.p)
            .collect();
        Self::new(self.p, &c)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q·divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        self.assert_same_field(divisor);
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let p = self.p;
        let lead_inv = mod_inverse(*divisor.coeffs.last().unwrap(), p)
            .expect("leading coefficient is invertible in a field");
        let mut rem = self.coeffs.clone();
        let dlen = divisor.coeffs.len();
        if rem.len() < dlen {
            return (Self::zero(p), self.clone());
        }
        let mut quot = vec![0u64; rem.len() - dlen + 1];
        for i in (0..quot.len()).rev() {
            let top = rem[i + dlen - 1] % p;
            if top == 0 {
                continue;
            }
            let q = top * lead_inv % p;
            quot[i] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i + j] = (rem[i + j] + p - q * dc % p) % p;
            }
        }
        (Self::new(p, &quot), Self::new(p, &rem))
    }

    /// The remainder of `self` modulo `divisor`.
    #[must_use]
    pub fn rem(&self, divisor: &Self) -> Self {
        self.div_rem(divisor).1
    }

    /// Monic greatest common divisor.
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        self.assert_same_field(other);
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        if a.is_zero() {
            return a;
        }
        // Normalise to monic.
        let inv = mod_inverse(*a.coeffs.last().unwrap(), self.p).unwrap();
        a.scale(inv)
    }

    /// Computes `base^exp mod self` where `base` is reduced modulo `self` first.
    #[must_use]
    pub fn pow_mod(&self, base: &Self, mut exp: u64) -> Self {
        let mut result = Self::one(self.p);
        let mut b = base.rem(self);
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&b).rem(self);
            }
            b = b.mul(&b).rem(self);
            exp >>= 1;
        }
        result
    }

    /// Evaluates the polynomial at `x = a` in Z_p (Horner's rule).
    #[must_use]
    pub fn eval(&self, a: u64) -> u64 {
        let a = a % self.p;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = (acc * a + c) % self.p;
        }
        acc
    }

    /// Irreducibility test over Z_p (Rabin's test): a monic polynomial f of
    /// degree n is irreducible iff x^(p^n) ≡ x (mod f) and
    /// gcd(x^(p^(n/q)) − x, f) = 1 for every prime q dividing n.
    #[must_use]
    pub fn is_irreducible(&self) -> bool {
        let n = self.degree();
        if self.is_zero() || n == 0 {
            return false;
        }
        if n == 1 {
            return true;
        }
        let p = self.p;
        let x = Self::x(p);
        // x^(p^n) mod f via repeated exponentiation by p.
        let mut xp = x.clone();
        for _ in 0..n {
            xp = self.pow_mod(&xp, p);
        }
        if xp.sub(&x).rem(self) != Self::zero(p) {
            return false;
        }
        for q in prime_divisors(n as u64) {
            let k = n / q as usize;
            let mut xq = x.clone();
            for _ in 0..k {
                xq = self.pow_mod(&xq, p);
            }
            let g = self.gcd(&xq.sub(&x));
            if g.degree() != 0 || g.is_zero() {
                return false;
            }
        }
        true
    }

    /// The order of the polynomial: the least k > 0 such that f(x) divides
    /// x^k − 1. Defined for polynomials with non-zero constant term; for an
    /// irreducible degree-n polynomial the order divides p^n − 1.
    ///
    /// Returns `None` if the constant term is zero (x | f, so no such k).
    #[must_use]
    pub fn order(&self) -> Option<u64> {
        if self.is_zero() || self.coeff(0) == 0 {
            return None;
        }
        if self.degree() == 0 {
            return Some(1);
        }
        if self.is_irreducible() {
            // Order divides p^n - 1; strip prime factors greedily.
            let n = self.degree() as u32;
            let group = pow(self.p, n) - 1;
            let x = Self::x(self.p);
            let mut order = group;
            for (q, _) in factorize(group) {
                while order.is_multiple_of(q) && self.pow_mod(&x, order / q) == Self::one(self.p) {
                    order /= q;
                }
            }
            Some(order)
        } else {
            // General (reducible) case: brute force k up to p^n - 1.
            // Only used in tests and diagnostics.
            let n = self.degree() as u32;
            let bound = pow(self.p, n).saturating_mul(2);
            let x = Self::x(self.p);
            (1..=bound).find(|&k| self.pow_mod(&x, k) == Self::one(self.p))
        }
    }

    /// Whether the polynomial is primitive over Z_p: irreducible of degree n
    /// with order exactly p^n − 1 (Section 3.1).
    #[must_use]
    pub fn is_primitive(&self) -> bool {
        let n = self.degree();
        if n == 0 || !self.is_irreducible() {
            return false;
        }
        self.order() == Some(pow(self.p, n as u32) - 1)
    }

    /// Finds a monic primitive polynomial of degree `n` over Z_p by
    /// exhaustive search in lexicographic order of the non-leading
    /// coefficients. Such a polynomial exists for every prime p and n ≥ 1.
    #[must_use]
    pub fn find_primitive(p: u64, n: usize) -> Self {
        assert!(n >= 1);
        let total = pow(p, n as u32);
        for code in 0..total {
            // Decode the n non-leading coefficients from `code`.
            let mut coeffs = vec![0u64; n + 1];
            let mut v = code;
            for c in coeffs.iter_mut().take(n) {
                *c = v % p;
                v /= p;
            }
            coeffs[n] = 1;
            let f = Self::new(p, &coeffs);
            if f.coeff(0) != 0 && f.is_primitive() {
                return f;
            }
        }
        unreachable!("a primitive polynomial of degree {n} exists over GF({p})")
    }

    /// Enumerates all monic irreducible polynomials of degree `n` over Z_p.
    #[must_use]
    pub fn all_irreducible(p: u64, n: usize) -> Vec<Self> {
        let total = pow(p, n as u32);
        let mut out = Vec::new();
        for code in 0..total {
            let mut coeffs = vec![0u64; n + 1];
            let mut v = code;
            for c in coeffs.iter_mut().take(n) {
                *c = v % p;
                v /= p;
            }
            coeffs[n] = 1;
            let f = Self::new(p, &coeffs);
            if f.is_irreducible() {
                out.push(f);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::euler_phi;

    #[test]
    fn construction_trims_and_reduces() {
        let f = PolyP::new(5, &[7, 0, 10, 0, 0]);
        assert_eq!(f.coeffs(), &[2]);
        assert_eq!(f.degree(), 0);
        assert!(PolyP::new(3, &[0, 0]).is_zero());
    }

    #[test]
    fn arithmetic_basics() {
        let p = 7;
        let a = PolyP::new(p, &[1, 2, 3]); // 3x^2 + 2x + 1
        let b = PolyP::new(p, &[6, 5]); // 5x + 6
        assert_eq!(a.add(&b), PolyP::new(p, &[0, 0, 3]));
        assert_eq!(a.sub(&a), PolyP::zero(p));
        let prod = a.mul(&b);
        // (3x^2+2x+1)(5x+6) = 15x^3 + 28x^2 + 17x + 6 = x^3 + 3x + 6 mod 7
        assert_eq!(prod, PolyP::new(p, &[6, 3, 0, 1]));
    }

    #[test]
    fn division_identity() {
        let p = 5;
        let a = PolyP::new(p, &[3, 1, 4, 1, 2]);
        let b = PolyP::new(p, &[2, 0, 1]);
        let (q, r) = a.div_rem(&b);
        assert!(r.degree() < b.degree() || r.is_zero());
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn gcd_of_multiples() {
        let p = 3;
        let g = PolyP::new(p, &[1, 1]); // x + 1
        let a = g.mul(&PolyP::new(p, &[1, 0, 1])); // (x+1)(x²+1), x²+1 irreducible over GF(3)
        let b = g.mul(&PolyP::new(p, &[2, 1])); // (x+1)(x+2)
        let gg = a.gcd(&b);
        // x²+1 and x+2 are coprime, so the gcd is exactly x+1 (monic).
        assert_eq!(gg, PolyP::new(p, &[1, 1]));
    }

    #[test]
    fn eval_horner() {
        let f = PolyP::new(7, &[1, 0, 1]); // x^2 + 1
        assert_eq!(f.eval(0), 1);
        assert_eq!(f.eval(3), 3);
        assert_eq!(f.eval(5), 5);
    }

    #[test]
    fn irreducibility_examples() {
        // x^2 + 1 is irreducible over GF(3) but not over GF(5) (2^2 = -1 mod 5).
        assert!(PolyP::new(3, &[1, 0, 1]).is_irreducible());
        assert!(!PolyP::new(5, &[1, 0, 1]).is_irreducible());
        // x^2 + x + 1 irreducible over GF(2).
        assert!(PolyP::new(2, &[1, 1, 1]).is_irreducible());
        // x^2 + 1 = (x+1)^2 over GF(2).
        assert!(!PolyP::new(2, &[1, 0, 1]).is_irreducible());
        // x^3 + x + 1 irreducible (and primitive) over GF(2).
        assert!(PolyP::new(2, &[1, 1, 0, 1]).is_irreducible());
    }

    #[test]
    fn irreducible_count_matches_necklace_formula() {
        // #monic irreducibles of degree n over GF(p) = (1/n) Σ_{d|n} μ(d) p^(n/d).
        for &(p, n, expected) in &[
            (2u64, 3usize, 2usize),
            (2, 4, 3),
            (3, 2, 3),
            (3, 3, 8),
            (5, 2, 10),
        ] {
            assert_eq!(PolyP::all_irreducible(p, n).len(), expected, "p={p} n={n}");
        }
    }

    #[test]
    fn paper_example_3_1_polynomial_is_primitive() {
        // p(x) = x^2 - x - 3 over GF(5), i.e. x^2 + 4x + 2.
        let f = PolyP::new(5, &[2, 4, 1]);
        assert!(f.is_irreducible());
        assert_eq!(f.order(), Some(24));
        assert!(f.is_primitive());
    }

    #[test]
    fn order_of_non_primitive_irreducible() {
        // x^2 + 1 over GF(3) has order 4 (divides 8 but not primitive).
        let f = PolyP::new(3, &[1, 0, 1]);
        assert!(f.is_irreducible());
        assert_eq!(f.order(), Some(4));
        assert!(!f.is_primitive());
    }

    #[test]
    fn find_primitive_various_fields() {
        for &(p, n) in &[
            (2u64, 1usize),
            (2, 3),
            (2, 5),
            (3, 2),
            (3, 3),
            (5, 2),
            (7, 2),
            (13, 1),
        ] {
            let f = PolyP::find_primitive(p, n);
            assert_eq!(f.degree(), n);
            assert!(f.is_monic());
            assert!(f.is_primitive(), "find_primitive({p},{n}) returned {f:?}");
        }
    }

    #[test]
    fn primitive_count_matches_phi_formula() {
        // #monic primitive polys of degree n over GF(p) = φ(p^n − 1)/n.
        for &(p, n) in &[(2u64, 4usize), (3, 2), (5, 2)] {
            let count = PolyP::all_irreducible(p, n)
                .into_iter()
                .filter(PolyP::is_primitive)
                .count() as u64;
            let expected = euler_phi(pow(p, n as u32) - 1) / n as u64;
            assert_eq!(count, expected, "p={p} n={n}");
        }
    }

    #[test]
    fn order_undefined_for_zero_constant_term() {
        assert_eq!(PolyP::new(3, &[0, 1, 1]).order(), None);
    }
}
