//! The Galois field GF(p^e) with table-driven arithmetic.
//!
//! Chapter 3 of the paper constructs maximal cycles in B(d,n) from linear
//! recurrences over GF(d) whenever d is a prime power, and the disjoint
//! Hamiltonian cycle strategies manipulate field elements directly
//! (translating cycles by `s`, solving for replacement edges, …). This
//! module provides those fields.
//!
//! # Representation
//!
//! An element is a code in `0..q` (`q = p^e`). The code's base-p digits are
//! the coefficients of the element viewed as a polynomial over Z_p of degree
//! < e (digit i = coefficient of x^i). Addition is digit-wise mod p;
//! multiplication uses discrete log/antilog tables built once at
//! construction from a primitive polynomial, so every field operation is
//! O(1) after an O(q) setup. This covers every alphabet size an
//! interconnection network realistically uses (q up to 2^16).
//!
//! The code of an element is also how it is mapped onto the d-ary alphabet
//! `Z_d = {0, …, d−1}` when cycles built over GF(d) are turned into walks of
//! the de Bruijn graph: any bijection works (the graph is
//! alphabet-agnostic), and using the code keeps the mapping trivial.

use crate::num::prime_power;
use crate::polyp::PolyP;

/// A finite field GF(p^e) with q = p^e elements, q ≤ 2^16.
#[derive(Clone, Debug)]
pub struct GField {
    p: u64,
    e: u32,
    q: u64,
    /// The primitive (hence irreducible) modulus polynomial of degree e over Z_p.
    modulus: PolyP,
    /// exp[k] = generator^k for k in 0..q-1, where the generator is the class of x.
    exp: Vec<u32>,
    /// log[a] = k with generator^k = a, for a in 1..q. log[0] is unused (set to 0).
    log: Vec<u32>,
}

impl GField {
    /// Constructs GF(q). `q` must be a prime power with `q ≤ 65536`.
    ///
    /// # Panics
    /// Panics if `q` is not a prime power in range.
    #[must_use]
    pub fn new(q: u64) -> Self {
        let (p, e) = prime_power(q).unwrap_or_else(|| panic!("GF({q}): {q} is not a prime power"));
        assert!(q <= 1 << 16, "GF({q}) exceeds the supported table size");
        let modulus = PolyP::find_primitive(p, e as usize);
        Self::with_modulus(modulus)
    }

    /// Constructs GF(p^e) from an explicit primitive polynomial of degree e
    /// over Z_p. Useful to reproduce a paper example that fixes the
    /// polynomial (e.g. Example 3.2 uses x² + x + 1 over GF(2)).
    ///
    /// # Panics
    /// Panics if the polynomial is not primitive.
    #[must_use]
    pub fn with_modulus(modulus: PolyP) -> Self {
        assert!(
            modulus.is_primitive(),
            "the modulus polynomial must be primitive: {modulus:?}"
        );
        let p = modulus.modulus();
        let e = modulus.degree() as u32;
        let q = crate::num::pow(p, e);
        assert!(q <= 1 << 16, "GF({q}) exceeds the supported table size");

        // Reduction row: x^e = -(f_{e-1} x^{e-1} + … + f_0).
        let reduction: Vec<u64> = (0..e as usize)
            .map(|i| (p - modulus.coeff(i) % p) % p)
            .collect();

        let mul_by_x = |code: u64| -> u64 {
            // Multiply the polynomial encoded by `code` by x and reduce.
            let mut digits = vec![0u64; e as usize];
            let mut v = code;
            for d in digits.iter_mut() {
                *d = v % p;
                v /= p;
            }
            let overflow = digits[e as usize - 1];
            // Shift up.
            for i in (1..e as usize).rev() {
                digits[i] = digits[i - 1];
            }
            digits[0] = 0;
            if overflow != 0 {
                for i in 0..e as usize {
                    digits[i] = (digits[i] + overflow * reduction[i]) % p;
                }
            }
            let mut out = 0u64;
            for &d in digits.iter().rev() {
                out = out * p + d;
            }
            out
        };

        let mut exp = vec![0u32; (q - 1) as usize];
        let mut log = vec![0u32; q as usize];
        let mut cur = 1u64;
        for (k, slot) in exp.iter_mut().enumerate() {
            *slot = cur as u32;
            log[cur as usize] = k as u32;
            cur = mul_by_x(cur);
        }
        debug_assert_eq!(cur, 1, "the modulus polynomial generates the full group");

        GField {
            p,
            e,
            q,
            modulus,
            exp,
            log,
        }
    }

    /// The characteristic p.
    #[inline]
    #[must_use]
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// The extension degree e.
    #[inline]
    #[must_use]
    pub fn extension_degree(&self) -> u32 {
        self.e
    }

    /// The field size q = p^e.
    #[inline]
    #[must_use]
    pub fn order(&self) -> u64 {
        self.q
    }

    /// The modulus polynomial used to build the field.
    #[must_use]
    pub fn modulus(&self) -> &PolyP {
        &self.modulus
    }

    /// The additive identity.
    #[inline]
    #[must_use]
    pub fn zero(&self) -> u64 {
        0
    }

    /// The multiplicative identity.
    #[inline]
    #[must_use]
    pub fn one(&self) -> u64 {
        1
    }

    /// A generator of the multiplicative group (the class of x for e > 1).
    #[inline]
    #[must_use]
    pub fn generator(&self) -> u64 {
        u64::from(self.exp[1 % (self.q as usize - 1).max(1)])
    }

    /// Iterates over all q field element codes.
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        0..self.q
    }

    /// Iterates over the q − 1 nonzero element codes.
    pub fn nonzero_elements(&self) -> impl Iterator<Item = u64> {
        1..self.q
    }

    #[inline]
    fn check(&self, a: u64) -> u64 {
        debug_assert!(a < self.q, "element {a} outside GF({})", self.q);
        a
    }

    /// Field addition (digit-wise mod p).
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let (mut a, mut b) = (self.check(a), self.check(b));
        if self.e == 1 {
            return (a + b) % self.p;
        }
        let mut out = 0u64;
        let mut place = 1u64;
        for _ in 0..self.e {
            out += (a % self.p + b % self.p) % self.p * place;
            a /= self.p;
            b /= self.p;
            place *= self.p;
        }
        out
    }

    /// Additive inverse.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        let mut a = self.check(a);
        if self.e == 1 {
            return (self.p - a) % self.p;
        }
        let mut out = 0u64;
        let mut place = 1u64;
        for _ in 0..self.e {
            out += (self.p - a % self.p) % self.p * place;
            a /= self.p;
            place *= self.p;
        }
        out
    }

    /// Field subtraction.
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        self.add(a, self.neg(b))
    }

    /// Field multiplication (log/antilog tables).
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.check(a), self.check(b));
        if a == 0 || b == 0 {
            return 0;
        }
        let m = self.q - 1;
        let k = (u64::from(self.log[a as usize]) + u64::from(self.log[b as usize])) % m;
        u64::from(self.exp[k as usize])
    }

    /// Multiplicative inverse of a nonzero element.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    #[inline]
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.check(a);
        assert_ne!(a, 0, "zero has no multiplicative inverse");
        let m = self.q - 1;
        let k = (m - u64::from(self.log[a as usize])) % m;
        u64::from(self.exp[k as usize])
    }

    /// Field division `a / b`.
    #[inline]
    #[must_use]
    pub fn div(&self, a: u64, b: u64) -> u64 {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation `a^k` in the field.
    #[must_use]
    pub fn pow(&self, a: u64, k: u64) -> u64 {
        let a = self.check(a);
        if a == 0 {
            return u64::from(k == 0);
        }
        let m = self.q - 1;
        let e = (u64::from(self.log[a as usize]) % m).wrapping_mul(k % m) % m;
        u64::from(self.exp[(e % m) as usize])
    }

    /// The image of the integer `k` under the canonical map Z → GF(p^e)
    /// (i.e. `k mod p` embedded in the prime subfield). In particular
    /// `embed_int(2)` is the element "2" used throughout Section 3.2.
    #[inline]
    #[must_use]
    pub fn embed_int(&self, k: u64) -> u64 {
        k % self.p
    }

    /// Scalar multiple `k·a` for an integer k (repeated addition collapsed
    /// to a single multiplication by `embed_int(k)`).
    #[inline]
    #[must_use]
    pub fn int_mul(&self, k: u64, a: u64) -> u64 {
        self.mul(self.embed_int(k), a)
    }

    /// Sums an iterator of field elements.
    #[must_use]
    pub fn sum<I: IntoIterator<Item = u64>>(&self, iter: I) -> u64 {
        iter.into_iter().fold(0, |acc, x| self.add(acc, x))
    }

    /// The discrete logarithm of a nonzero element with respect to the
    /// field's generator.
    #[must_use]
    pub fn dlog(&self, a: u64) -> Option<u64> {
        let a = self.check(a);
        if a == 0 {
            None
        } else {
            Some(u64::from(self.log[a as usize]))
        }
    }

    /// The multiplicative order of a nonzero element.
    #[must_use]
    pub fn element_order(&self, a: u64) -> Option<u64> {
        let l = self.dlog(a)?;
        let m = self.q - 1;
        Some(m / crate::num::gcd(l, m))
    }

    /// Whether `a` generates the multiplicative group.
    #[must_use]
    pub fn is_generator(&self, a: u64) -> bool {
        self.element_order(a) == Some(self.q - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms(f: &GField) {
        let q = f.order();
        for a in 0..q {
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.add(a, f.neg(a)), 0);
            assert_eq!(f.mul(a, 1), a);
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), 1);
            }
            for b in 0..q {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..q {
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity fails in GF({q}) at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn prime_fields() {
        for q in [2u64, 3, 5, 7] {
            let f = GField::new(q);
            assert_eq!(f.characteristic(), q);
            assert_eq!(f.extension_degree(), 1);
            check_field_axioms(&f);
        }
    }

    #[test]
    fn extension_fields() {
        for q in [4u64, 8, 9] {
            let f = GField::new(q);
            check_field_axioms(&f);
        }
    }

    #[test]
    fn gf16_and_gf25_spot_checks() {
        let f16 = GField::new(16);
        assert_eq!(f16.characteristic(), 2);
        assert_eq!(f16.extension_degree(), 4);
        // Every nonzero element has order dividing 15.
        for a in f16.nonzero_elements() {
            assert_eq!(f16.pow(a, 15), 1);
        }
        let f25 = GField::new(25);
        for a in f25.nonzero_elements() {
            assert_eq!(f25.pow(a, 24), 1);
        }
    }

    #[test]
    fn gf4_matches_paper_example_3_2() {
        // GF(4) = {0, 1, ζ, ζ²} with ζ a root of x² + x + 1:
        // 1 + ζ = ζ², 1 + ζ² = ζ, ζ + ζ² = 1, ζ³ = 1.
        let modulus = PolyP::new(2, &[1, 1, 1]);
        let f = GField::with_modulus(modulus);
        let zeta = f.generator();
        let zeta2 = f.mul(zeta, zeta);
        assert_ne!(zeta, zeta2);
        assert_eq!(f.add(1, zeta), zeta2);
        assert_eq!(f.add(1, zeta2), zeta);
        assert_eq!(f.add(zeta, zeta2), 1);
        assert_eq!(f.pow(zeta, 3), 1);
    }

    #[test]
    fn characteristic_two_self_inverse_addition() {
        let f = GField::new(8);
        for a in f.elements() {
            assert_eq!(f.add(a, a), 0);
            assert_eq!(f.neg(a), a);
        }
    }

    #[test]
    fn generator_generates() {
        for q in [4u64, 5, 7, 8, 9, 13, 16, 25, 27] {
            let f = GField::new(q);
            let g = f.generator();
            assert!(f.is_generator(g));
            let mut seen = std::collections::HashSet::new();
            let mut cur = 1u64;
            for _ in 0..q - 1 {
                seen.insert(cur);
                cur = f.mul(cur, g);
            }
            assert_eq!(seen.len() as u64, q - 1);
        }
    }

    #[test]
    fn embed_int_and_scalar_multiples() {
        let f = GField::new(9);
        assert_eq!(f.embed_int(2), 2);
        assert_eq!(f.embed_int(3), 0); // characteristic 3
        for a in f.elements() {
            assert_eq!(f.int_mul(2, a), f.add(a, a));
            assert_eq!(f.int_mul(3, a), 0);
        }
    }

    #[test]
    fn dlog_consistency() {
        let f = GField::new(13);
        let g = f.generator();
        for a in f.nonzero_elements() {
            let l = f.dlog(a).unwrap();
            assert_eq!(f.pow(g, l), a);
        }
        assert_eq!(f.dlog(0), None);
    }

    #[test]
    #[should_panic(expected = "not a prime power")]
    fn rejects_non_prime_power() {
        let _ = GField::new(6);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        let f = GField::new(5);
        let _ = f.inv(0);
    }
}
