//! Fixed-radix words: d-ary n-tuples encoded as integers.
//!
//! Every node of the d-ary de Bruijn graph B(d,n) is an n-tuple
//! `x_1 x_2 … x_n` over the alphabet `{0, …, d−1}` (Section 1.2 of the
//! paper). We encode such a tuple as the base-d integer
//!
//! ```text
//! value = x_1·d^(n−1) + x_2·d^(n−2) + … + x_n
//! ```
//!
//! so that the *most significant* digit is the leftmost symbol. With this
//! convention the de Bruijn successor `x_1…x_n → x_2…x_n·a` is a single
//! multiply-add, and the tuple ordering used by the paper to pick necklace
//! representatives ("n-tuples are ordered by viewing them as base-d
//! numbers") is just integer comparison.
//!
//! [`WordSpace`] is the cheap, copyable context `(d, n)` holding the radix
//! and length; its methods operate on raw `u64` codes, which is what the
//! graph and embedding layers use on hot paths. [`Word`] is an ergonomic
//! owned value (code + space) for examples, tests and display.

use std::fmt;

/// The parameter context for d-ary n-tuples: radix `d ≥ 2` and length `n ≥ 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WordSpace {
    d: u64,
    n: u32,
    /// d^(n−1), cached at construction (recomputing the power on every
    /// rotation/shift made the per-call cost O(n)).
    msd: u64,
    /// `Some((log2 d, log2 d^(n−1)))` when both are powers of two, so the
    /// hot rotation/shift arithmetic runs on masks and shifts instead of
    /// hardware divisions. Derived from `(d, n)`, so the derived
    /// `PartialEq`/`Hash` stay consistent.
    pow2: Option<(u32, u32)>,
}

impl WordSpace {
    /// Creates the space of d-ary n-tuples.
    ///
    /// # Panics
    /// Panics if `d < 2`, `n < 1`, or `d^n` overflows `u64`.
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        assert!(d >= 2, "alphabet size d must be at least 2");
        assert!(n >= 1, "word length n must be at least 1");
        assert!(
            crate::num::checked_pow(d, n).is_some(),
            "d^n overflows u64 (d = {d}, n = {n})"
        );
        let msd = crate::num::pow(d, n - 1);
        let pow2 = (d.is_power_of_two() && msd.is_power_of_two())
            .then(|| (d.trailing_zeros(), msd.trailing_zeros()));
        Self { d, n, msd, pow2 }
    }

    /// The alphabet size d.
    #[inline]
    #[must_use]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The word length n.
    #[inline]
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The total number of words, d^n.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        crate::num::pow(self.d, self.n)
    }

    /// d^(n−1): the place value of the leading digit.
    #[inline]
    #[must_use]
    pub fn msd_place(&self) -> u64 {
        self.msd
    }

    /// Returns the digits `x_1 … x_n` of `code`, leftmost first.
    #[must_use]
    pub fn digits(&self, code: u64) -> Vec<u64> {
        debug_assert!(code < self.count());
        let mut out = vec![0u64; self.n as usize];
        let mut v = code;
        for i in (0..self.n as usize).rev() {
            out[i] = v % self.d;
            v /= self.d;
        }
        out
    }

    /// Rebuilds a code from digits `x_1 … x_n` (leftmost first).
    ///
    /// # Panics
    /// Panics if the slice length differs from `n` or a digit is ≥ d.
    #[must_use]
    pub fn from_digits(&self, digits: &[u64]) -> u64 {
        assert_eq!(digits.len(), self.n as usize, "digit count mismatch");
        let mut v = 0u64;
        for &x in digits {
            assert!(x < self.d, "digit {x} out of range for radix {}", self.d);
            v = v * self.d + x;
        }
        v
    }

    /// The i-th digit (1-based, as in the paper's `x_i`) of `code`.
    #[inline]
    #[must_use]
    pub fn digit(&self, code: u64, i: u32) -> u64 {
        debug_assert!((1..=self.n).contains(&i));
        (code / crate::num::pow(self.d, self.n - i)) % self.d
    }

    /// The word `a^n` (all digits equal to `a`).
    #[must_use]
    pub fn constant(&self, a: u64) -> u64 {
        assert!(a < self.d);
        let mut v = 0;
        for _ in 0..self.n {
            v = v * self.d + a;
        }
        v
    }

    /// Left rotation by one position: `x_1 x_2 … x_n → x_2 … x_n x_1`.
    #[inline]
    #[must_use]
    pub fn rotate_left(&self, code: u64) -> u64 {
        match self.pow2 {
            Some((d_log, m_log)) => ((code & (self.msd - 1)) << d_log) | (code >> m_log),
            None => (code % self.msd) * self.d + code / self.msd,
        }
    }

    /// Left rotation by `i` positions (π^i(x) in the paper's notation).
    #[must_use]
    pub fn rotate_left_by(&self, code: u64, i: u32) -> u64 {
        let mut v = code;
        for _ in 0..(i % self.n) {
            v = self.rotate_left(v);
        }
        v
    }

    /// Right rotation by one position: `x_1 … x_n → x_n x_1 … x_{n−1}`.
    #[inline]
    #[must_use]
    pub fn rotate_right(&self, code: u64) -> u64 {
        let last = code % self.d;
        code / self.d + last * self.msd_place()
    }

    /// De Bruijn successor: `x_1…x_n → x_2…x_n·a` (shift left, append `a`).
    #[inline]
    #[must_use]
    pub fn shift_append(&self, code: u64, a: u64) -> u64 {
        debug_assert!(a < self.d);
        (code % self.msd_place()) * self.d + a
    }

    /// De Bruijn predecessor: `x_1…x_n → a·x_1…x_{n−1}` (shift right, prepend `a`).
    #[inline]
    #[must_use]
    pub fn shift_prepend(&self, code: u64, a: u64) -> u64 {
        debug_assert!(a < self.d);
        code / self.d + a * self.msd_place()
    }

    /// All d de Bruijn successors of `code` (in digit order of the appended symbol).
    #[must_use]
    pub fn successors(&self, code: u64) -> Vec<u64> {
        (0..self.d).map(|a| self.shift_append(code, a)).collect()
    }

    /// All d de Bruijn predecessors of `code`.
    #[must_use]
    pub fn predecessors(&self, code: u64) -> Vec<u64> {
        (0..self.d).map(|a| self.shift_prepend(code, a)).collect()
    }

    /// The weight wt(x): the sum of all digits (Section 2.1).
    #[must_use]
    pub fn weight(&self, code: u64) -> u64 {
        let mut v = code;
        let mut w = 0;
        for _ in 0..self.n {
            w += v % self.d;
            v /= self.d;
        }
        w
    }

    /// wt_a(x): how many digits of `code` equal `a` (Section 2.1).
    #[must_use]
    pub fn count_digit(&self, code: u64, a: u64) -> u32 {
        let mut v = code;
        let mut c = 0;
        for _ in 0..self.n {
            if v % self.d == a {
                c += 1;
            }
            v /= self.d;
        }
        c
    }

    /// The type of a word: a d-tuple `[k_0, …, k_{d−1}]` where digit `a`
    /// occurs `k_a` times (Chapter 4, "Counting by Type").
    #[must_use]
    pub fn word_type(&self, code: u64) -> Vec<u32> {
        let mut counts = vec![0u32; self.d as usize];
        let mut v = code;
        for _ in 0..self.n {
            counts[(v % self.d) as usize] += 1;
            v /= self.d;
        }
        counts
    }

    /// The period of `code`: the least `t > 0` with π^t(x) = x. Always divides n.
    #[must_use]
    pub fn period(&self, code: u64) -> u32 {
        for t in crate::num::divisors(u64::from(self.n)) {
            if self.rotate_left_by(code, t as u32) == code {
                return t as u32;
            }
        }
        self.n
    }

    /// Whether `code` is aperiodic (its period equals n).
    #[must_use]
    pub fn is_aperiodic(&self, code: u64) -> bool {
        self.period(code) == self.n
    }

    /// The canonical (minimal) rotation of `code`: the necklace representative
    /// `[y]` of the paper, i.e. the smallest base-d value among all rotations.
    #[must_use]
    pub fn canonical_rotation(&self, code: u64) -> u64 {
        let mut best = code;
        let mut cur = code;
        for _ in 1..self.n {
            cur = self.rotate_left(cur);
            if cur < best {
                best = cur;
            }
        }
        best
    }

    /// Renders `code` as its digit string (digits ≥ 10 are separated by dots).
    #[must_use]
    pub fn format(&self, code: u64) -> String {
        let digits = self.digits(code);
        if self.d <= 10 {
            digits.iter().map(|x| x.to_string()).collect()
        } else {
            digits
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
    }

    /// Parses a digit string produced by [`WordSpace::format`] (or typed by hand,
    /// e.g. `"0112"`). Returns `None` on malformed input.
    #[must_use]
    pub fn parse(&self, s: &str) -> Option<u64> {
        let digits: Vec<u64> = if self.d <= 10 {
            s.chars()
                .map(|c| c.to_digit(10).map(u64::from))
                .collect::<Option<Vec<_>>>()?
        } else {
            s.split('.')
                .map(|t| t.parse().ok())
                .collect::<Option<Vec<_>>>()?
        };
        if digits.len() != self.n as usize || digits.iter().any(|&x| x >= self.d) {
            return None;
        }
        Some(self.from_digits(&digits))
    }

    /// Iterates over all d^n word codes.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        0..self.count()
    }

    /// Wraps a raw code into an owned [`Word`].
    #[must_use]
    pub fn word(&self, code: u64) -> Word {
        assert!(code < self.count(), "word code out of range");
        Word { space: *self, code }
    }

    /// The word α^β α^β… of the paper's `\hat{αβ}` notation: alternating
    /// digits `α β α β …` of total length n (ending with α when n is odd).
    #[must_use]
    pub fn alternating(&self, alpha: u64, beta: u64) -> u64 {
        assert!(alpha < self.d && beta < self.d);
        let digits: Vec<u64> = (0..self.n)
            .map(|i| if i % 2 == 0 { alpha } else { beta })
            .collect();
        self.from_digits(&digits)
    }
}

/// An owned d-ary word: a code plus its [`WordSpace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    space: WordSpace,
    code: u64,
}

impl Word {
    /// Builds a word from explicit digits.
    #[must_use]
    pub fn from_digits(d: u64, digits: &[u64]) -> Self {
        let space = WordSpace::new(d, digits.len() as u32);
        Word {
            space,
            code: space.from_digits(digits),
        }
    }

    /// The word's integer code.
    #[inline]
    #[must_use]
    pub fn code(&self) -> u64 {
        self.code
    }

    /// The word's space (d, n).
    #[inline]
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// The digit sequence, leftmost first.
    #[must_use]
    pub fn digits(&self) -> Vec<u64> {
        self.space.digits(self.code)
    }

    /// Left rotation by `i` positions.
    #[must_use]
    pub fn rotate_left(&self, i: u32) -> Self {
        Word {
            space: self.space,
            code: self.space.rotate_left_by(self.code, i),
        }
    }

    /// The weight (digit sum).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.space.weight(self.code)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.space.format(self.code))
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({})", self.space.format(self.code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_roundtrip() {
        let s = WordSpace::new(3, 4);
        for code in s.iter() {
            assert_eq!(s.from_digits(&s.digits(code)), code);
        }
    }

    #[test]
    fn digit_accessor_matches_vector() {
        let s = WordSpace::new(5, 3);
        for code in s.iter() {
            let d = s.digits(code);
            for i in 1..=3u32 {
                assert_eq!(s.digit(code, i), d[(i - 1) as usize]);
            }
        }
    }

    #[test]
    fn rotation_example_from_paper() {
        // N(1120) = (1120, 1201, 2011, 0112) in B(3,4) — Section 2.1.
        let s = WordSpace::new(3, 4);
        let x = s.parse("1120").unwrap();
        assert_eq!(s.format(s.rotate_left(x)), "1201");
        assert_eq!(s.format(s.rotate_left_by(x, 2)), "2011");
        assert_eq!(s.format(s.rotate_left_by(x, 3)), "0112");
        assert_eq!(s.rotate_left_by(x, 4), x);
        assert_eq!(s.canonical_rotation(x), s.parse("0112").unwrap());
    }

    #[test]
    fn weight_example_from_paper() {
        // wt(1120) = 4, wt_0 = 1, wt_1 = 2, wt_2 = 1 — Section 2.1.
        let s = WordSpace::new(3, 4);
        let x = s.parse("1120").unwrap();
        assert_eq!(s.weight(x), 4);
        assert_eq!(s.count_digit(x, 0), 1);
        assert_eq!(s.count_digit(x, 1), 2);
        assert_eq!(s.count_digit(x, 2), 1);
        assert_eq!(s.word_type(x), vec![1, 2, 1]);
    }

    #[test]
    fn rotations_preserve_weight() {
        let s = WordSpace::new(4, 5);
        for code in s.iter().step_by(7) {
            let r = s.rotate_left(code);
            assert_eq!(s.weight(code), s.weight(r));
            assert_eq!(s.word_type(code), s.word_type(r));
        }
    }

    #[test]
    fn rotate_right_inverts_left() {
        let s = WordSpace::new(3, 5);
        for code in s.iter() {
            assert_eq!(s.rotate_right(s.rotate_left(code)), code);
        }
    }

    #[test]
    fn shift_append_and_prepend() {
        let s = WordSpace::new(2, 4);
        let x = s.parse("1011").unwrap();
        assert_eq!(s.format(s.shift_append(x, 0)), "0110");
        assert_eq!(s.format(s.shift_append(x, 1)), "0111");
        assert_eq!(s.format(s.shift_prepend(x, 0)), "0101");
        assert_eq!(s.format(s.shift_prepend(x, 1)), "1101");
        assert_eq!(s.successors(x).len(), 2);
        assert_eq!(s.predecessors(x).len(), 2);
    }

    #[test]
    fn constant_and_alternating() {
        let s = WordSpace::new(3, 5);
        assert_eq!(s.format(s.constant(2)), "22222");
        assert_eq!(s.format(s.alternating(0, 1)), "01010");
        let s4 = WordSpace::new(3, 4);
        assert_eq!(s4.format(s4.alternating(0, 1)), "0101");
    }

    #[test]
    fn period_and_aperiodicity() {
        let s = WordSpace::new(2, 6);
        assert_eq!(s.period(s.parse("010101").unwrap()), 2);
        assert_eq!(s.period(s.parse("001001").unwrap()), 3);
        assert_eq!(s.period(s.parse("000000").unwrap()), 1);
        assert_eq!(s.period(s.parse("000001").unwrap()), 6);
        assert!(!s.is_aperiodic(s.parse("011011").unwrap()));
        assert!(s.is_aperiodic(s.parse("000111").unwrap()));
    }

    #[test]
    fn canonical_rotation_is_minimal_and_stable() {
        let s = WordSpace::new(3, 4);
        for code in s.iter() {
            let c = s.canonical_rotation(code);
            assert!(c <= code);
            assert_eq!(s.canonical_rotation(c), c);
            // Canonical form is invariant under rotation.
            assert_eq!(s.canonical_rotation(s.rotate_left(code)), c);
        }
    }

    #[test]
    fn parse_format_roundtrip_large_alphabet() {
        let s = WordSpace::new(13, 3);
        let x = s.from_digits(&[12, 0, 7]);
        assert_eq!(s.format(x), "12.0.7");
        assert_eq!(s.parse("12.0.7"), Some(x));
        assert_eq!(s.parse("13.0.7"), None);
    }

    #[test]
    fn word_display() {
        let w = Word::from_digits(3, &[0, 1, 1, 2]);
        assert_eq!(w.to_string(), "0112");
        assert_eq!(w.weight(), 4);
        assert_eq!(w.rotate_left(1).to_string(), "1120");
    }

    #[test]
    #[should_panic(expected = "alphabet size")]
    fn rejects_unary_alphabet() {
        let _ = WordSpace::new(1, 3);
    }
}
