//! Berlekamp–Massey: recovering the shortest linear recurrence of a
//! sequence over GF(q).
//!
//! The maximal cycles of Chapter 3 are *defined* by a linear recurrence;
//! Berlekamp–Massey runs the construction backwards, recovering the
//! recurrence (and hence the characteristic polynomial, Equation 3.2) from
//! the symbol sequence alone. It is used to validate generated cycles, to
//! identify which translate an observed window belongs to, and as the
//! standard tool for linear-complexity analysis of de Bruijn-like
//! sequences [Fre82].

use crate::gf::GField;
use crate::polygf::PolyGf;

/// The result of a Berlekamp–Massey synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearComplexity {
    /// The linear complexity L: the order of the shortest recurrence that
    /// generates the sequence.
    pub complexity: usize,
    /// Recurrence coefficients `[a_0, …, a_{L−1}]` such that
    /// `s_{L+i} = a_{L−1} s_{L−1+i} + … + a_0 s_i` (Equation 3.1 form).
    pub recurrence: Vec<u64>,
}

impl LinearComplexity {
    /// The characteristic polynomial x^L − a_{L−1}x^{L−1} − … − a_0 of the
    /// recovered recurrence.
    #[must_use]
    pub fn characteristic_polynomial(&self, field: &GField) -> PolyGf {
        PolyGf::from_recurrence(&self.recurrence, field)
    }
}

/// Runs Berlekamp–Massey over GF(q) on the (non-circular) prefix `sequence`,
/// returning the shortest recurrence that reproduces it.
///
/// For a maximal sequence of B(d,n) any window of length ≥ 2n recovers the
/// defining degree-n primitive recurrence exactly.
#[must_use]
pub fn berlekamp_massey(field: &GField, sequence: &[u64]) -> LinearComplexity {
    let n = sequence.len();
    // Connection polynomials c(x), b(x) with c_0 = b_0 = 1: the recurrence is
    // s_j = −(c_1 s_{j-1} + … + c_L s_{j-L}).
    let mut c = vec![0u64; n + 1];
    let mut b = vec![0u64; n + 1];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize; // current complexity
    let mut m = 1usize; // steps since last update of b
    let mut last_discrepancy = 1u64; // discrepancy when b was last updated

    for i in 0..n {
        // Discrepancy d = s_i + Σ_{j=1..L} c_j s_{i-j}.
        let mut d = sequence[i];
        for j in 1..=l {
            d = field.add(d, field.mul(c[j], sequence[i - j]));
        }
        if d == 0 {
            m += 1;
            continue;
        }
        let coef = field.mul(d, field.inv(last_discrepancy));
        if 2 * l <= i {
            let old_c = c.clone();
            for j in 0..=n - m {
                c[j + m] = field.sub(c[j + m], field.mul(coef, b[j]));
            }
            l = i + 1 - l;
            b = old_c;
            last_discrepancy = d;
            m = 1;
        } else {
            for j in 0..=n - m {
                c[j + m] = field.sub(c[j + m], field.mul(coef, b[j]));
            }
            m += 1;
        }
    }

    // Convert the connection polynomial into Equation-3.1 recurrence
    // coefficients: s_{L+i} = Σ_k a_k s_{k+i} with a_k = −c_{L−k}.
    let recurrence: Vec<u64> = (0..l).map(|k| field.neg(c[l - k])).collect();
    LinearComplexity {
        complexity: l,
        recurrence,
    }
}

/// Convenience check: does `recurrence` (Equation 3.1 coefficients)
/// generate `sequence`?
#[must_use]
pub fn recurrence_generates(field: &GField, recurrence: &[u64], sequence: &[u64]) -> bool {
    let l = recurrence.len();
    if sequence.len() <= l {
        return true;
    }
    (l..sequence.len()).all(|i| {
        let predicted = recurrence.iter().enumerate().fold(0u64, |acc, (k, &a)| {
            field.add(acc, field.mul(a, sequence[i - l + k]))
        });
        predicted == sequence[i]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::{maximal_sequence, maximal_sequence_with, Lfsr};

    #[test]
    fn recovers_the_example_3_1_recurrence() {
        // s_{2+i} = s_{1+i} + 3 s_i over GF(5).
        let field = GField::new(5);
        let poly = PolyGf::new(&[2, 4, 1]);
        let seq = maximal_sequence_with(&field, &poly, &[0, 1]);
        let lc = berlekamp_massey(&field, &seq);
        assert_eq!(lc.complexity, 2);
        assert_eq!(lc.recurrence, vec![3, 1]);
        assert_eq!(lc.characteristic_polynomial(&field), poly);
    }

    #[test]
    fn recovers_recurrences_of_maximal_sequences() {
        for (d, n) in [(2u64, 5usize), (3, 3), (4, 3), (8, 2), (9, 2)] {
            let (field, seq) = maximal_sequence(d, n);
            let lc = berlekamp_massey(&field, &seq);
            assert_eq!(lc.complexity, n, "d={d} n={n}");
            assert!(recurrence_generates(&field, &lc.recurrence, &seq));
            assert!(lc.characteristic_polynomial(&field).is_primitive(&field));
        }
    }

    #[test]
    fn short_prefix_suffices() {
        let (field, seq) = maximal_sequence(5, 3);
        let lc_full = berlekamp_massey(&field, &seq);
        let lc_prefix = berlekamp_massey(&field, &seq[..6]);
        assert_eq!(lc_full.recurrence, lc_prefix.recurrence);
    }

    #[test]
    fn constant_and_zero_sequences() {
        let field = GField::new(7);
        let zeros = vec![0u64; 10];
        let lc = berlekamp_massey(&field, &zeros);
        assert_eq!(lc.complexity, 0);
        // A nonzero constant sequence has complexity 1 with a_0 = 1.
        let ones = vec![3u64; 10];
        let lc = berlekamp_massey(&field, &ones);
        assert_eq!(lc.complexity, 1);
        assert!(recurrence_generates(&field, &lc.recurrence, &ones));
    }

    #[test]
    fn random_lfsr_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for q in [4u64, 5, 9, 13] {
            let field = GField::new(q);
            for order in 2..=4usize {
                let recurrence: Vec<u64> = (0..order).map(|_| rng.gen_range(0..q)).collect();
                let mut initial: Vec<u64> = (0..order).map(|_| rng.gen_range(0..q)).collect();
                if initial.iter().all(|&x| x == 0) {
                    initial[0] = 1;
                }
                let mut lfsr = Lfsr::new(field.clone(), &recurrence, &initial);
                let seq = lfsr.generate(4 * order + 8);
                let lc = berlekamp_massey(&field, &seq);
                // The recovered recurrence may be shorter (the sequence can be
                // degenerate) but must regenerate the observed data.
                assert!(lc.complexity <= order);
                assert!(
                    recurrence_generates(&field, &lc.recurrence, &seq),
                    "q={q} order={order} rec={recurrence:?} got={lc:?}"
                );
            }
        }
    }
}
