//! Elementary number theory.
//!
//! Everything in this module is exact integer arithmetic on `u64`/`i64`.
//! The routines are used to
//!
//! * compute the fault-tolerance bounds ψ(d) and φ(d) of Chapter 3
//!   (factorisation, primitive roots, quadratic residues),
//! * drive the Möbius-inversion necklace counts of Chapter 4
//!   (`mobius`, `euler_phi`, `divisors`), and
//! * recognise prime powers so that the Galois-field constructions apply.

/// Greatest common divisor (binary-free Euclid; inputs may be zero).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow in debug builds.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`.
#[must_use]
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of `a` modulo `m`, if it exists (`gcd(a, m) == 1`).
#[must_use]
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    let (g, x, _) = extended_gcd((a % m) as i64, m as i64);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(m as i64) as u64)
}

/// Modular exponentiation `base^exp (mod m)` using 128-bit intermediates.
#[must_use]
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = ((result as u128 * base as u128) % m as u128) as u64;
        }
        base = ((base as u128 * base as u128) % m as u128) as u64;
        exp >>= 1;
    }
    result
}

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // This witness set is deterministic for all 64-bit integers.
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Prime factorisation as `(prime, exponent)` pairs in increasing prime order.
///
/// Trial division — ample for the d ≤ a-few-thousand alphabet sizes and the
/// q^n − 1 sequence periods this workspace manipulates.
#[must_use]
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let mut p = 2u64;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// Distinct prime divisors of `n`.
#[must_use]
pub fn prime_divisors(n: u64) -> Vec<u64> {
    factorize(n).into_iter().map(|(p, _)| p).collect()
}

/// All positive divisors of `n`, in increasing order.
#[must_use]
pub fn divisors(n: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let f = factorize(n);
    let mut out = vec![1u64];
    for (p, e) in f {
        let prev = out.clone();
        let mut pe = 1u64;
        for _ in 0..e {
            pe *= p;
            out.extend(prev.iter().map(|d| d * pe));
        }
    }
    out.sort_unstable();
    out
}

/// Euler's totient φ(n): the count of integers in `1..=n` coprime to `n`.
#[must_use]
pub fn euler_phi(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut result = n;
    for (p, _) in factorize(n) {
        result = result / p * (p - 1);
    }
    result
}

/// Möbius function μ(n): 1 for squarefree with an even number of prime
/// factors, −1 for squarefree with an odd number, 0 otherwise.
#[must_use]
pub fn mobius(n: u64) -> i64 {
    if n == 0 {
        return 0;
    }
    if n == 1 {
        return 1;
    }
    let f = factorize(n);
    if f.iter().any(|&(_, e)| e > 1) {
        0
    } else if f.len().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// If `n = p^e` for a prime `p` and `e ≥ 1`, returns `(p, e)`.
#[must_use]
pub fn prime_power(n: u64) -> Option<(u64, u32)> {
    let f = factorize(n);
    match f.as_slice() {
        [(p, e)] => Some((*p, *e)),
        _ => None,
    }
}

/// The multiplicative order of `a` modulo `m` (the least `k > 0` with
/// `a^k ≡ 1`), or `None` if `gcd(a, m) != 1`.
#[must_use]
pub fn multiplicative_order(a: u64, m: u64) -> Option<u64> {
    if m == 0 || gcd(a % m, m) != 1 {
        return None;
    }
    if m == 1 {
        return Some(1);
    }
    let group = euler_phi(m);
    let mut order = group;
    for p in prime_divisors(group) {
        while order.is_multiple_of(p) && mod_pow(a, order / p, m) == 1 {
            order /= p;
        }
    }
    Some(order)
}

/// Tests whether `g` generates the multiplicative group of Z_p (p prime).
#[must_use]
pub fn is_primitive_root(g: u64, p: u64) -> bool {
    if p < 2 || g.is_multiple_of(p) {
        return false;
    }
    multiplicative_order(g, p) == Some(p - 1)
}

/// The smallest primitive root modulo an odd prime `p` (or 1 for p = 2).
#[must_use]
pub fn smallest_primitive_root(p: u64) -> u64 {
    if p == 2 {
        return 1;
    }
    (2..p)
        .find(|&g| is_primitive_root(g, p))
        .expect("every prime has a primitive root")
}

/// All primitive roots modulo the prime `p`, in increasing order.
#[must_use]
pub fn primitive_roots(p: u64) -> Vec<u64> {
    if p == 2 {
        return vec![1];
    }
    let g = smallest_primitive_root(p);
    // The primitive roots are g^k for k coprime to p-1.
    let mut out: Vec<u64> = (1..p - 1)
        .filter(|&k| gcd(k, p - 1) == 1)
        .map(|k| mod_pow(g, k, p))
        .collect();
    out.sort_unstable();
    out
}

/// Tests whether `a` is a quadratic residue modulo the odd prime `p`
/// (Euler's criterion). Zero is not considered a residue here.
#[must_use]
pub fn is_quadratic_residue(a: u64, p: u64) -> bool {
    if a.is_multiple_of(p) {
        return false;
    }
    mod_pow(a, (p - 1) / 2, p) == 1
}

/// Checked integer power `base^exp`, returning `None` on `u64` overflow.
#[must_use]
pub fn checked_pow(base: u64, exp: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// Integer power `base^exp`, panicking on overflow.
#[must_use]
pub fn pow(base: u64, exp: u32) -> u64 {
    checked_pow(base, exp).expect("integer overflow in pow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn extended_gcd_identity() {
        for a in 1..40i64 {
            for b in 1..40i64 {
                let (g, x, y) = extended_gcd(a, b);
                assert_eq!(a * x + b * y, g);
                assert_eq!(g, gcd(a as u64, b as u64) as i64);
            }
        }
    }

    #[test]
    fn mod_inverse_works() {
        assert_eq!(mod_inverse(3, 7), Some(5));
        assert_eq!(mod_inverse(2, 4), None);
        for m in 2..50u64 {
            for a in 1..m {
                if gcd(a, m) == 1 {
                    let inv = mod_inverse(a, m).unwrap();
                    assert_eq!(a * inv % m, 1);
                }
            }
        }
    }

    #[test]
    fn mod_pow_matches_naive() {
        for base in 0..12u64 {
            for exp in 0..10u64 {
                for m in 1..30u64 {
                    let mut naive = 1u64 % m;
                    for _ in 0..exp {
                        naive = naive * base % m;
                    }
                    assert_eq!(mod_pow(base, exp, m), naive);
                }
            }
        }
    }

    #[test]
    fn primality_small() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn primality_larger() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1
        assert!(!is_prime(2_147_483_649));
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007 * 3));
    }

    #[test]
    fn factorization_roundtrip() {
        for n in 1..2000u64 {
            let f = factorize(n);
            let back: u64 = f.iter().map(|&(p, e)| pow(p, e)).product();
            assert_eq!(back, n);
            for &(p, _) in &f {
                assert!(is_prime(p));
            }
        }
    }

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(27), vec![1, 3, 9, 27]);
    }

    #[test]
    fn phi_values() {
        assert_eq!(euler_phi(1), 1);
        assert_eq!(euler_phi(12), 4);
        assert_eq!(euler_phi(13), 12);
        assert_eq!(euler_phi(36), 12);
        // phi is multiplicative on coprime arguments.
        assert_eq!(euler_phi(5 * 8), euler_phi(5) * euler_phi(8));
    }

    #[test]
    fn mobius_values() {
        assert_eq!(mobius(1), 1);
        assert_eq!(mobius(2), -1);
        assert_eq!(mobius(6), 1);
        assert_eq!(mobius(12), 0);
        assert_eq!(mobius(30), -1);
        // Sum of mobius over divisors of n is [n == 1].
        for n in 1..200u64 {
            let s: i64 = divisors(n).into_iter().map(mobius).sum();
            assert_eq!(s, i64::from(n == 1));
        }
    }

    #[test]
    fn prime_power_detection() {
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(7), Some((7, 1)));
        assert_eq!(prime_power(12), None);
        assert_eq!(prime_power(1), None);
    }

    #[test]
    fn orders_and_primitive_roots() {
        assert_eq!(multiplicative_order(2, 7), Some(3));
        assert_eq!(multiplicative_order(3, 7), Some(6));
        assert!(is_primitive_root(3, 7));
        assert!(!is_primitive_root(2, 7));
        assert_eq!(smallest_primitive_root(13), 2);
        // 7 is a primitive root of 13 (used in Example 3.3 of the paper).
        assert!(is_primitive_root(7, 13));
        let roots = primitive_roots(13);
        assert_eq!(roots.len(), euler_phi(12) as usize);
        assert!(roots.contains(&7));
    }

    #[test]
    fn quadratic_residues_mod_13() {
        let qr: Vec<u64> = (1..13).filter(|&a| is_quadratic_residue(a, 13)).collect();
        assert_eq!(qr, vec![1, 3, 4, 9, 10, 12]);
        // 2 is a nonresidue iff p ≡ ±3 (mod 8).
        for &p in &[3u64, 5, 11, 13, 19, 29] {
            assert!(
                !is_quadratic_residue(2, p),
                "2 should be a nonresidue mod {p}"
            );
        }
        for &p in &[7u64, 17, 23, 31] {
            assert!(is_quadratic_residue(2, p), "2 should be a residue mod {p}");
        }
    }

    #[test]
    fn pow_checked() {
        assert_eq!(checked_pow(2, 10), Some(1024));
        assert_eq!(checked_pow(10, 20), None);
        assert_eq!(pow(3, 4), 81);
    }
}
