//! Number-theoretic and finite-field machinery for de Bruijn ring embeddings.
//!
//! This crate is the algebraic substrate of the Rowley–Bose reproduction.
//! It provides:
//!
//! * [`num`] — elementary number theory: gcd/lcm, factorisation, divisors,
//!   Euler's totient, the Möbius function, primitive roots and quadratic
//!   residues modulo a prime, and prime-power recognition.
//! * [`words`] — fixed-radix words (d-ary n-tuples) encoded as integers,
//!   with rotations, digit access, weights and de Bruijn successor maps.
//!   Words are the node labels of every graph in the workspace.
//! * [`polyp`] — dense polynomials over the prime field Z_p with
//!   irreducibility, order and primitivity tests.
//! * [`gf`] — the Galois field GF(p^e) with table-driven arithmetic.
//! * [`polygf`] — polynomials whose coefficients live in GF(q), together
//!   with the primitive-polynomial search used to build maximal cycles.
//! * [`lfsr`] — linear recurrences (linear-feedback shift registers) over
//!   GF(q); maximal sequences are the "maximal cycles" of the paper
//!   (Section 3.1).
//!
//! All algorithms here are exact and deterministic; they target the small
//! parameter ranges that interconnection networks use (alphabet sizes up to
//! a few hundred, word lengths up to ~25), so clarity is preferred over
//! asymptotic heroics, but the hot paths (word manipulation, field
//! arithmetic) are allocation-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berlekamp;
pub mod gf;
pub mod lfsr;
pub mod num;
pub mod polygf;
pub mod polyp;
pub mod words;

pub use berlekamp::{berlekamp_massey, LinearComplexity};
pub use gf::GField;
pub use lfsr::Lfsr;
pub use num::{euler_phi, factorize, is_prime, lcm, mobius, prime_power};
pub use polygf::PolyGf;
pub use polyp::PolyP;
pub use words::Word;
