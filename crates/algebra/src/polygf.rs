//! Polynomials with coefficients in GF(q), and the primitive-polynomial
//! search over extension fields.
//!
//! Section 3.1 of the paper needs a primitive polynomial of degree n over
//! GF(d) for *any* prime power d (e.g. GF(4) in Example 3.2). When d is a
//! prime, [`crate::polyp::PolyP`] suffices; this module handles the general
//! case by working over a [`GField`]. The characteristic polynomial of the
//! maximal-cycle recurrence (Equation 3.2) lives here.
//!
//! Coefficients are stored as field-element codes (low degree first). All
//! operations take the field explicitly so the polynomial itself stays a
//! plain value type.

use crate::gf::GField;
use crate::num::{checked_pow, factorize, prime_divisors};

/// A polynomial over GF(q); `coeffs[i]` is the coefficient (a field-element
/// code) of x^i. No trailing zeros are stored.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PolyGf {
    coeffs: Vec<u64>,
}

impl PolyGf {
    /// Builds a polynomial from coefficient codes (low degree first).
    #[must_use]
    pub fn new(coeffs: &[u64]) -> Self {
        let mut c = coeffs.to_vec();
        while c.last() == Some(&0) {
            c.pop();
        }
        PolyGf { coeffs: c }
    }

    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        PolyGf { coeffs: Vec::new() }
    }

    /// The constant polynomial 1.
    #[must_use]
    pub fn one() -> Self {
        PolyGf { coeffs: vec![1] }
    }

    /// The monomial x.
    #[must_use]
    pub fn x() -> Self {
        PolyGf { coeffs: vec![0, 1] }
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree (0 for the zero polynomial; use [`PolyGf::is_zero`]).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// The coefficient of x^i.
    #[must_use]
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The coefficient slice (low degree first).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Polynomial addition over `f`.
    #[must_use]
    pub fn add(&self, other: &Self, f: &GField) -> Self {
        let len = self.coeffs.len().max(other.coeffs.len());
        let c: Vec<u64> = (0..len)
            .map(|i| f.add(self.coeff(i), other.coeff(i)))
            .collect();
        Self::new(&c)
    }

    /// Polynomial subtraction over `f`.
    #[must_use]
    pub fn sub(&self, other: &Self, f: &GField) -> Self {
        let len = self.coeffs.len().max(other.coeffs.len());
        let c: Vec<u64> = (0..len)
            .map(|i| f.sub(self.coeff(i), other.coeff(i)))
            .collect();
        Self::new(&c)
    }

    /// Polynomial multiplication over `f` (schoolbook).
    #[must_use]
    pub fn mul(&self, other: &Self, f: &GField) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut c = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                c[i + j] = f.add(c[i + j], f.mul(a, b));
            }
        }
        Self::new(&c)
    }

    /// Euclidean division: `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &Self, f: &GField) -> (Self, Self) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dlen = divisor.coeffs.len();
        if self.coeffs.len() < dlen {
            return (Self::zero(), self.clone());
        }
        let lead_inv = f.inv(*divisor.coeffs.last().unwrap());
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; rem.len() - dlen + 1];
        for i in (0..quot.len()).rev() {
            let top = rem[i + dlen - 1];
            if top == 0 {
                continue;
            }
            let q = f.mul(top, lead_inv);
            quot[i] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i + j] = f.sub(rem[i + j], f.mul(q, dc));
            }
        }
        (Self::new(&quot), Self::new(&rem))
    }

    /// Remainder modulo `divisor`.
    #[must_use]
    pub fn rem(&self, divisor: &Self, f: &GField) -> Self {
        self.div_rem(divisor, f).1
    }

    /// Monic gcd.
    #[must_use]
    pub fn gcd(&self, other: &Self, f: &GField) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b, f);
            a = b;
            b = r;
        }
        if a.is_zero() {
            return a;
        }
        let inv = f.inv(*a.coeffs.last().unwrap());
        let c: Vec<u64> = a.coeffs.iter().map(|&x| f.mul(x, inv)).collect();
        Self::new(&c)
    }

    /// `base^exp mod self` over `f`.
    #[must_use]
    pub fn pow_mod(&self, base: &Self, mut exp: u64, f: &GField) -> Self {
        let mut result = Self::one();
        let mut b = base.rem(self, f);
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&b, f).rem(self, f);
            }
            b = b.mul(&b, f).rem(self, f);
            exp >>= 1;
        }
        result
    }

    /// Irreducibility over GF(q) (Rabin's test).
    #[must_use]
    pub fn is_irreducible(&self, f: &GField) -> bool {
        let n = self.degree();
        if self.is_zero() || n == 0 {
            return false;
        }
        if n == 1 {
            return true;
        }
        let q = f.order();
        let x = Self::x();
        // x^(q^n) mod self, computed by n successive q-th powers.
        let mut xq = x.clone();
        for _ in 0..n {
            xq = self.pow_mod(&xq, q, f);
        }
        if !xq.sub(&x, f).rem(self, f).is_zero() {
            return false;
        }
        for r in prime_divisors(n as u64) {
            let k = n / r as usize;
            let mut xr = x.clone();
            for _ in 0..k {
                xr = self.pow_mod(&xr, q, f);
            }
            let g = self.gcd(&xr.sub(&x, f), f);
            if g.degree() != 0 || g.is_zero() {
                return false;
            }
        }
        true
    }

    /// The order of the polynomial over GF(q): the least k > 0 with
    /// self | x^k − 1. Requires an irreducible polynomial with nonzero
    /// constant term; returns `None` otherwise (or if q^n − 1 overflows).
    #[must_use]
    pub fn order(&self, f: &GField) -> Option<u64> {
        if self.is_zero() || self.coeff(0) == 0 || !self.is_irreducible(f) {
            return None;
        }
        let n = self.degree() as u32;
        let group = checked_pow(f.order(), n)? - 1;
        let x = Self::x();
        let mut order = group;
        for (r, _) in factorize(group) {
            while order % r == 0 && self.pow_mod(&x, order / r, f) == Self::one() {
                order /= r;
            }
        }
        Some(order)
    }

    /// Whether the polynomial is primitive over GF(q): irreducible of degree
    /// n and order q^n − 1 (Section 3.1's definition for the characteristic
    /// polynomial of a maximal cycle).
    #[must_use]
    pub fn is_primitive(&self, f: &GField) -> bool {
        let n = self.degree();
        if n == 0 || self.coeff(0) == 0 {
            return false;
        }
        match (self.order(f), checked_pow(f.order(), n as u32)) {
            (Some(ord), Some(qn)) => ord == qn - 1,
            _ => false,
        }
    }

    /// Finds a monic primitive polynomial of degree n over GF(q) by
    /// exhaustive search. Exists for every finite field and n ≥ 1 [LP84].
    ///
    /// # Panics
    /// Panics if q^n overflows u64 (far beyond any realistic network size).
    #[must_use]
    pub fn find_primitive(f: &GField, n: usize) -> Self {
        assert!(n >= 1);
        let q = f.order();
        let total = checked_pow(q, n as u32).expect("q^n overflows u64");
        for code in 0..total {
            let mut coeffs = vec![0u64; n + 1];
            let mut v = code;
            for c in coeffs.iter_mut().take(n) {
                *c = v % q;
                v /= q;
            }
            coeffs[n] = 1;
            let cand = Self::new(&coeffs);
            if cand.coeff(0) != 0 && cand.is_primitive(f) {
                return cand;
            }
        }
        unreachable!("a primitive polynomial of degree {n} exists over GF({q})")
    }

    /// The characteristic-polynomial form of a recurrence
    /// `c_{n+i} = a_{n−1} c_{n−1+i} + … + a_0 c_i` (Equation 3.1):
    /// given the recurrence coefficients `[a_0, …, a_{n−1}]`, returns
    /// `p(x) = x^n − a_{n−1} x^{n−1} − … − a_0` (Equation 3.2).
    #[must_use]
    pub fn from_recurrence(recurrence: &[u64], f: &GField) -> Self {
        let n = recurrence.len();
        let mut coeffs = vec![0u64; n + 1];
        for (i, &a) in recurrence.iter().enumerate() {
            coeffs[i] = f.neg(a);
        }
        coeffs[n] = 1;
        Self::new(&coeffs)
    }

    /// The inverse of [`PolyGf::from_recurrence`]: recurrence coefficients
    /// `[a_0, …, a_{n−1}]` of a monic characteristic polynomial.
    #[must_use]
    pub fn to_recurrence(&self, f: &GField) -> Vec<u64> {
        let n = self.degree();
        (0..n).map(|i| f.neg(self.coeff(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_over_gf4() {
        let f = GField::new(4);
        let a = PolyGf::new(&[1, 2, 3]);
        let b = PolyGf::new(&[3, 1]);
        let (q, r) = a.div_rem(&b, &f);
        assert_eq!(q.mul(&b, &f).add(&r, &f), a);
        assert!(r.degree() < b.degree() || r.is_zero());
    }

    #[test]
    fn irreducibility_over_prime_field_agrees_with_polyp() {
        // Over GF(3), x^2 + 1 irreducible; x^2 + 2 = (x-1)(x+1) not.
        let f = GField::new(3);
        assert!(PolyGf::new(&[1, 0, 1]).is_irreducible(&f));
        assert!(!PolyGf::new(&[2, 0, 1]).is_irreducible(&f));
    }

    #[test]
    fn example_3_1_primitive_over_gf5() {
        // x^2 - x - 3 = x^2 + 4x + 2 over GF(5); the paper's Example 3.1.
        let f = GField::new(5);
        let p = PolyGf::new(&[2, 4, 1]);
        assert!(p.is_irreducible(&f));
        assert_eq!(p.order(&f), Some(24));
        assert!(p.is_primitive(&f));
    }

    #[test]
    fn example_3_2_primitive_over_gf4() {
        // x^2 - x - ζ = x^2 + x + ζ over GF(4) is primitive (order 15),
        // where ζ is the generator of GF(4).
        let f = GField::new(4);
        let zeta = f.generator();
        let p = PolyGf::new(&[zeta, 1, 1]);
        assert!(p.is_irreducible(&f));
        assert_eq!(p.order(&f), Some(15));
        assert!(p.is_primitive(&f));
    }

    #[test]
    fn find_primitive_over_extension_fields() {
        for (q, n) in [(4u64, 2usize), (4, 3), (8, 2), (9, 2), (25, 1)] {
            let f = GField::new(q);
            let p = PolyGf::find_primitive(&f, n);
            assert_eq!(p.degree(), n);
            assert!(p.is_primitive(&f), "q={q} n={n}: {p:?}");
        }
    }

    #[test]
    fn recurrence_roundtrip() {
        let f = GField::new(5);
        let p = PolyGf::new(&[2, 4, 1]); // x^2 + 4x + 2
        let rec = p.to_recurrence(&f);
        // x^2 = x + 3 → recurrence coefficients [3, 1] (a_0 = 3, a_1 = 1).
        assert_eq!(rec, vec![3, 1]);
        assert_eq!(PolyGf::from_recurrence(&rec, &f), p);
    }

    #[test]
    fn gcd_monic() {
        let f = GField::new(4);
        let g = PolyGf::new(&[1, 1]);
        let a = g.mul(&PolyGf::new(&[2, 3, 1]), &f);
        let b = g.mul(&PolyGf::new(&[1, 2]), &f);
        let gg = a.gcd(&b, &f);
        assert_eq!(gg.coeff(gg.degree()), 1, "gcd should be monic");
        assert!(a.rem(&gg, &f).is_zero());
        assert!(b.rem(&gg, &f).is_zero());
    }
}
