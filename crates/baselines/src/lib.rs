//! Baseline ring embeddings used for comparison against the de Bruijn
//! constructions.
//!
//! * [`hypercube_ring`] — fault-tolerant ring embedding in the binary
//!   hypercube. The paper's Chapter 2 benchmarks its de Bruijn result
//!   against the known hypercube bound (a fault-free cycle of length
//!   2^n − 2f exists when f ≤ n − 2 [WC92, CL91a]); this module provides a
//!   constructive embedder achieving that bound on the instances the
//!   comparison uses, so the "who wins at equal node count" experiment can
//!   actually be run rather than quoted.
//! * [`greedy`] — a necklace-oblivious greedy cycle grower on the faulty de
//!   Bruijn graph. It is the ablation partner of the FFC algorithm: it
//!   shows what happens when the necklace structure is ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod hypercube_ring;

pub use greedy::greedy_fault_free_cycle;
pub use hypercube_ring::HypercubeRingEmbedder;
