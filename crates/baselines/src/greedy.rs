//! A necklace-oblivious greedy baseline for fault-free cycles in B(d,n).
//!
//! The ablation partner of the FFC algorithm: instead of exploiting the
//! necklace partition, walk greedily through the faulty graph, always
//! moving to an unvisited non-faulty successor (preferring the one with the
//! fewest unvisited successors of its own, a classic Warnsdorff-style
//! heuristic), and close the cycle opportunistically. The point of the
//! benchmark built on this module is that the greedy walk finds markedly
//! shorter rings than the necklace-join construction — and offers no
//! guarantee at all — while not even being cheaper to run.

use std::collections::HashSet;

use dbg_graph::{DeBruijn, Topology};

/// Grows a fault-free cycle greedily from `start`. Returns the best cycle
/// found over `restarts` attempts (each attempt differs in tie-breaking
/// rotation). The result is a valid simple cycle avoiding `faulty_nodes`,
/// but carries no length guarantee.
#[must_use]
pub fn greedy_fault_free_cycle(
    graph: &DeBruijn,
    faulty_nodes: &[usize],
    start: usize,
    restarts: usize,
) -> Vec<usize> {
    let faults: HashSet<usize> = faulty_nodes.iter().copied().collect();
    if faults.contains(&start) {
        return Vec::new();
    }
    let mut best: Vec<usize> = Vec::new();
    for attempt in 0..restarts.max(1) {
        let cycle = greedy_attempt(graph, &faults, start, attempt);
        if cycle.len() > best.len() {
            best = cycle;
        }
    }
    best
}

fn greedy_attempt(
    graph: &DeBruijn,
    faults: &HashSet<usize>,
    start: usize,
    rotation: usize,
) -> Vec<usize> {
    let mut visited = vec![false; graph.len()];
    let mut position = vec![usize::MAX; graph.len()];
    let mut path = vec![start];
    visited[start] = true;
    position[start] = 0;
    let mut best_cycle: Vec<usize> = Vec::new();

    loop {
        let current = *path.last().expect("path never empty");
        // Record the best cycle closable so far: close back to the earliest
        // path node the current node can reach.
        if let Some(close_to) = graph
            .successors(current)
            .into_iter()
            .filter(|&u| u != current && position[u] != usize::MAX)
            .min_by_key(|&u| position[u])
        {
            let len = path.len() - position[close_to];
            if len > best_cycle.len() && len > 1 {
                best_cycle = path[position[close_to]..].to_vec();
            }
        }
        // Candidate moves: unvisited, non-faulty successors.
        let mut candidates: Vec<usize> = graph
            .successors(current)
            .into_iter()
            .filter(|&u| !visited[u] && !faults.contains(&u) && u != current)
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Warnsdorff-style preference: fewest onward options; break ties by a
        // rotation-dependent ordering so restarts explore different walks.
        candidates.sort_by_key(|&u| {
            let onward = graph
                .successors(u)
                .into_iter()
                .filter(|&w| !visited[w] && !faults.contains(&w) && w != u)
                .count();
            (onward, u.wrapping_add(rotation * 7919) % graph.len())
        });
        let next = candidates[0];
        visited[next] = true;
        position[next] = path.len();
        path.push(next);
    }
    best_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::is_cycle;
    use dbg_graph::FaultSet;

    #[test]
    fn produces_a_valid_cycle() {
        let g = DeBruijn::new(2, 5);
        let faults = vec![7usize, 19];
        let cycle = greedy_fault_free_cycle(&g, &faults, 1, 4);
        assert!(!cycle.is_empty());
        let fs = FaultSet::from_nodes(faults.iter().copied());
        let view = fs.view(&g);
        assert!(is_cycle(&view, &cycle));
    }

    #[test]
    fn faulty_start_returns_empty() {
        let g = DeBruijn::new(2, 4);
        assert!(greedy_fault_free_cycle(&g, &[3], 3, 2).is_empty());
    }

    #[test]
    fn typically_shorter_than_the_guaranteed_ffc_bound() {
        // The greedy walk has no guarantee; on B(3,4) with one fault it
        // usually strands well below d^n − n·f, which is the whole point of
        // the ablation. We only check it never exceeds the true maximum.
        let g = DeBruijn::new(3, 4);
        let cycle = greedy_fault_free_cycle(&g, &[5], 1, 3);
        assert!(cycle.len() < g.len());
    }
}
