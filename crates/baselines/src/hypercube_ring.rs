//! Fault-tolerant ring embedding in the binary hypercube Q(n).
//!
//! The comparison target of the paper's Chapter 2: with f ≤ n − 2 faulty
//! processors the 2^n-node hypercube always contains a fault-free cycle of
//! length 2^n − 2f [WC92, CL91a]. This module gives a constructive
//! recursive embedder:
//!
//! * split the cube along a dimension that separates the faults,
//! * recursively embed a ring in each half,
//! * splice the two rings along a pair of parallel dimension edges.
//!
//! When a half is fault-free its Hamiltonian cycle is regenerated *through
//! a prescribed edge* (Gray code, XOR-translated), which guarantees the
//! splice; when both halves carry faults the splice edge is searched for
//! among all ring edges. The achieved length is checked by the tests
//! against the 2^n − 2f bound for every configuration exercised by the
//! paper's comparison.

use std::collections::HashSet;

use dbg_graph::Hypercube;

/// Fault-tolerant ring embedder for Q(n).
#[derive(Clone, Copy, Debug)]
pub struct HypercubeRingEmbedder {
    cube: Hypercube,
}

impl HypercubeRingEmbedder {
    /// Creates the embedder for the n-dimensional hypercube.
    #[must_use]
    pub fn new(n: u32) -> Self {
        HypercubeRingEmbedder {
            cube: Hypercube::new(n),
        }
    }

    /// The underlying hypercube.
    #[must_use]
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }

    /// The length guarantee 2^n − 2f from [WC92, CL91a], valid for f ≤ n − 2.
    #[must_use]
    pub fn guaranteed_length(n: u32, faults: usize) -> usize {
        (1usize << n).saturating_sub(2 * faults)
    }

    /// Embeds a fault-free ring avoiding `faulty_nodes`. Returns `None` only
    /// if fewer than three fault-free nodes remain or the recursive
    /// construction degenerates (far beyond the f ≤ n − 2 regime).
    #[must_use]
    pub fn embed(&self, faulty_nodes: &[usize]) -> Option<Vec<usize>> {
        let faults: HashSet<usize> = faulty_nodes.iter().copied().collect();
        let dims: Vec<u32> = (0..self.cube.dimension()).collect();
        let cycle = embed_rec(&dims, 0, &faults)?;
        if cycle.len() < 3 {
            return None;
        }
        Some(cycle)
    }
}

/// Gray-code Hamiltonian cycle of the subcube spanned by `dims` (all other
/// bits fixed as in `base`), optionally arranged so that the cycle contains
/// the edge `(base, base ^ (1 << dims[0]))`.
fn gray_cycle(dims: &[u32], base: usize) -> Vec<usize> {
    let k = dims.len();
    (0..(1usize << k))
        .map(|i| {
            let g = i ^ (i >> 1);
            let mut node = base;
            for (bit, &dim) in dims.iter().enumerate() {
                if g & (1 << bit) != 0 {
                    node |= 1 << dim;
                } else {
                    node &= !(1 << dim);
                }
            }
            node
        })
        .collect()
}

/// Gray-code Hamiltonian cycle of the subcube spanned by `dims` containing
/// the prescribed edge `(a, b)`, where `a` and `b` differ exactly in a
/// dimension of `dims`.
fn gray_cycle_through_edge(dims: &[u32], a: usize, b: usize) -> Vec<usize> {
    let diff = a ^ b;
    debug_assert_eq!(diff.count_ones(), 1);
    let j = diff.trailing_zeros();
    // Order the dimensions so that j comes first, then XOR-translate the
    // standard code so node 0 maps to `a` (and its dim-j neighbour to `b`).
    let mut ordered: Vec<u32> = vec![j];
    ordered.extend(dims.iter().copied().filter(|&d| d != j));
    gray_cycle(&ordered, a)
}

/// Recursive fault-tolerant ring embedding in the subcube spanned by `dims`
/// with the remaining bits fixed as in `base`.
fn embed_rec(dims: &[u32], base: usize, faults: &HashSet<usize>) -> Option<Vec<usize>> {
    let local_faults: Vec<usize> = faults
        .iter()
        .copied()
        .filter(|&v| in_subcube(v, dims, base))
        .collect();
    if local_faults.is_empty() {
        return Some(gray_cycle(dims, base));
    }
    if dims.len() <= 2 {
        // A faulty square has no cycle worth keeping.
        return None;
    }
    if dims.len() <= 4 {
        return brute_force_subcube(dims, base, faults);
    }

    // Choose a split dimension. Prefer one that separates the faults; with a
    // single fault any dimension works (the fault-free half regenerates its
    // cycle through whatever splice edge we need).
    let split = choose_split(dims, &local_faults);
    let rest: Vec<u32> = dims.iter().copied().filter(|&d| d != split).collect();
    let bit = 1usize << split;
    let base0 = base & !bit;
    let base1 = base | bit;
    let faults0: Vec<usize> = local_faults
        .iter()
        .copied()
        .filter(|v| v & bit == 0)
        .collect();
    let faults1: Vec<usize> = local_faults
        .iter()
        .copied()
        .filter(|v| v & bit != 0)
        .collect();

    // Embed the half with more faults first, then splice the other half on.
    let (first_base, second_base, second_fault_free) = if faults0.len() >= faults1.len() {
        (base0, base1, faults1.is_empty())
    } else {
        (base1, base0, faults0.is_empty())
    };
    let first = embed_rec(&rest, first_base, faults)?;

    // Find a ring edge (u, v) of `first` whose dimension-`split` partners are
    // both fault-free.
    let partner = |v: usize| v ^ bit;
    let candidate = (0..first.len()).find(|&i| {
        let u = first[i];
        let v = first[(i + 1) % first.len()];
        !faults.contains(&partner(u)) && !faults.contains(&partner(v))
    })?;
    let u = first[candidate];
    let v = first[(candidate + 1) % first.len()];
    let (pu, pv) = (partner(u), partner(v));

    let second = if second_fault_free {
        // Build the other half's Hamiltonian cycle straight through (pu, pv).
        gray_cycle_through_edge(&rest, pu, pv)
    } else {
        embed_rec(&rest, second_base, faults)?
    };

    splice(&first, &second, u, v, pu, pv).or_else(|| {
        // Fall back to any pair of parallel edges present in both rings.
        for i in 0..first.len() {
            let a = first[i];
            let b = first[(i + 1) % first.len()];
            if let Some(joined) = splice(&first, &second, a, b, partner(a), partner(b)) {
                return Some(joined);
            }
        }
        // Last resort: keep the longer of the two rings.
        Some(if first.len() >= second.len() {
            first.clone()
        } else {
            second
        })
    })
}

/// Whether node `v` lies in the subcube spanned by `dims` around `base`.
fn in_subcube(v: usize, dims: &[u32], base: usize) -> bool {
    let free_mask: usize = dims.iter().map(|&d| 1usize << d).sum();
    (v & !free_mask) == (base & !free_mask)
}

/// Chooses a dimension separating the faults when possible.
fn choose_split(dims: &[u32], faults: &[usize]) -> u32 {
    if faults.len() >= 2 {
        for &d in dims {
            let bit = 1usize << d;
            let ones = faults.iter().filter(|&&v| v & bit != 0).count();
            if ones > 0 && ones < faults.len() {
                return d;
            }
        }
    }
    // Single fault (or inseparable): put the fault on the side of its own bit.
    dims[0]
}

/// Splices two vertex-disjoint rings along the parallel edges (u,v) ∈ first
/// and (pu,pv) ∈ second, where u–pu and v–pv are hypercube edges. Returns
/// `None` if (u,v) or (pu,pv) is not actually a ring edge.
fn splice(
    first: &[usize],
    second: &[usize],
    u: usize,
    v: usize,
    pu: usize,
    pv: usize,
) -> Option<Vec<usize>> {
    let n1 = first.len();
    let i = (0..n1).find(|&i| first[i] == u && first[(i + 1) % n1] == v)?;
    let n2 = second.len();
    let j = second.iter().position(|&x| x == pu)?;
    // path0: v … u  (the long way around `first`).
    let mut path0 = Vec::with_capacity(n1);
    for k in 0..n1 {
        path0.push(first[(i + 1 + k) % n1]);
    }
    // path1: pu … pv (the long way around `second`).
    let mut path1 = Vec::with_capacity(n2);
    if second[(j + 1) % n2] == pv {
        // pu → pv is a ring edge; walk the other way: pu, pu-1, …, pv.
        for k in 0..n2 {
            path1.push(second[(j + n2 - k) % n2]);
        }
    } else if second[(j + n2 - 1) % n2] == pv {
        // pv → pu is a ring edge; walk forward: pu, pu+1, …, pv.
        for k in 0..n2 {
            path1.push(second[(j + k) % n2]);
        }
    } else {
        return None;
    }
    debug_assert_eq!(*path0.last().unwrap(), u);
    debug_assert_eq!(path1[0], pu);
    debug_assert_eq!(*path1.last().unwrap(), pv);
    let mut cycle = path0;
    cycle.extend(path1);
    Some(cycle)
}

/// Exact longest fault-free cycle in a small subcube (≤ 16 nodes).
fn brute_force_subcube(dims: &[u32], base: usize, faults: &HashSet<usize>) -> Option<Vec<usize>> {
    use dbg_graph::{algo::cycles::longest_cycle_brute_force, DiGraph};
    let k = dims.len();
    let nodes: Vec<usize> = (0..(1usize << k))
        .map(|i| {
            let mut node = base;
            for (bit, &dim) in dims.iter().enumerate() {
                if i & (1 << bit) != 0 {
                    node |= 1 << dim;
                } else {
                    node &= !(1 << dim);
                }
            }
            node
        })
        .collect();
    let index: std::collections::HashMap<usize, usize> =
        nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut g = DiGraph::new(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        if faults.contains(&v) {
            continue;
        }
        for &dim in dims {
            let u = v ^ (1 << dim);
            if !faults.contains(&u) {
                g.add_edge(i, index[&u]);
            }
        }
    }
    let cycle = longest_cycle_brute_force(&g, 16);
    if cycle.is_empty() {
        None
    } else {
        Some(cycle.into_iter().map(|i| nodes[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn validate(n: u32, faults: &[usize], cycle: &[usize]) {
        let cube = Hypercube::new(n);
        let fault_set: HashSet<usize> = faults.iter().copied().collect();
        let mut seen = HashSet::new();
        for &v in cycle {
            assert!(v < cube.len());
            assert!(!fault_set.contains(&v), "cycle visits a faulty node");
            assert!(seen.insert(v), "cycle repeats node {v}");
        }
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            assert_eq!(
                cube.distance(a, b),
                1,
                "non-adjacent ring neighbours {a} {b}"
            );
        }
    }

    #[test]
    fn fault_free_cube_gets_hamiltonian_cycle() {
        for n in 2..=10u32 {
            let embedder = HypercubeRingEmbedder::new(n);
            let cycle = embedder.embed(&[]).unwrap();
            assert_eq!(cycle.len(), 1 << n);
            validate(n, &[], &cycle);
        }
    }

    #[test]
    fn single_fault_meets_bound() {
        for n in 4..=9u32 {
            let embedder = HypercubeRingEmbedder::new(n);
            for fault in [0usize, 1, (1 << n) - 1, 5 % (1 << n)] {
                let cycle = embedder.embed(&[fault]).unwrap();
                validate(n, &[fault], &cycle);
                assert!(
                    cycle.len() >= HypercubeRingEmbedder::guaranteed_length(n, 1),
                    "n={n} fault={fault}: {} < {}",
                    cycle.len(),
                    HypercubeRingEmbedder::guaranteed_length(n, 1)
                );
            }
        }
    }

    #[test]
    fn random_faults_up_to_n_minus_2_meet_bound() {
        let mut rng = StdRng::seed_from_u64(2024);
        for n in 5..=10u32 {
            let embedder = HypercubeRingEmbedder::new(n);
            for f in 1..=(n - 2) as usize {
                for _ in 0..5 {
                    let mut faults = HashSet::new();
                    while faults.len() < f {
                        faults.insert(rng.gen_range(0..(1usize << n)));
                    }
                    let faults: Vec<usize> = faults.into_iter().collect();
                    let cycle = embedder.embed(&faults).unwrap();
                    validate(n, &faults, &cycle);
                    assert!(
                        cycle.len() >= HypercubeRingEmbedder::guaranteed_length(n, f),
                        "n={n} f={f} faults={faults:?}: {} < {}",
                        cycle.len(),
                        HypercubeRingEmbedder::guaranteed_length(n, f)
                    );
                }
            }
        }
    }

    #[test]
    fn paper_comparison_q12_with_two_faults() {
        // Chapter 2 intro: a fault-free cycle of length 4092 in the
        // 4096-node hypercube with f = 2.
        let embedder = HypercubeRingEmbedder::new(12);
        let faults = vec![0usize, 0b1010_1010_1010];
        let cycle = embedder.embed(&faults).unwrap();
        validate(12, &faults, &cycle);
        assert!(cycle.len() >= 4092);
    }

    #[test]
    fn adjacent_faults_are_handled() {
        let embedder = HypercubeRingEmbedder::new(6);
        let faults = vec![0usize, 1];
        let cycle = embedder.embed(&faults).unwrap();
        validate(6, &faults, &cycle);
        assert!(cycle.len() >= HypercubeRingEmbedder::guaranteed_length(6, 2));
    }
}
