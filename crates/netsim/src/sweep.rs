//! Distributed Monte-Carlo sweeps, driven by the same deterministic
//! [`SweepPlan`] seeding as the centralized batch engine.
//!
//! A sweep plan's per-trial RNG streams depend only on `(seed, trial)`
//! ([`SweepPlan::trial_seed`]), so a distributed runner — or any remote
//! worker handed a `(plan, trial range)` pair — reconstructs exactly the
//! fault sets the centralized [`Ffc::embed_batch`](debruijn_core::Ffc)
//! sweep draws, without replaying other trials and without shipping fault
//! lists over the wire. This module runs the Section 2.4 message-passing
//! protocol over a plan's trials and is differentially tested against the
//! centralized batch engine trial for trial.

use debruijn_core::{FaultDrawer, SweepPlan};

use crate::ffc_distributed::DistributedFfc;

/// The scalar record of one distributed sweep trial.
#[derive(Clone, Debug)]
pub struct DistributedTrial {
    /// Global trial index within the plan.
    pub index: usize,
    /// The fault set the trial drew (identical to the centralized sweep's
    /// draw for the same plan and index).
    pub faults: Vec<usize>,
    /// Length of the fault-free cycle the protocol traced, if it closed.
    pub cycle_len: Option<usize>,
    /// Total communication rounds the protocol used.
    pub rounds_total: usize,
    /// The broadcast depth (eccentricity of the root in B*).
    pub broadcast_depth: usize,
}

/// Runs `plan`'s trials `lo..hi` (a shard of the sweep) on the distributed
/// protocol, drawing each trial's fault set from [`SweepPlan::trial_seed`]
/// exactly like the centralized batch engine does.
///
/// # Panics
/// Panics if the range exceeds the plan's trial count.
#[must_use]
pub fn distributed_sweep_range(
    runner: &DistributedFfc,
    plan: &SweepPlan,
    range: std::ops::Range<usize>,
) -> Vec<DistributedTrial> {
    assert!(range.end <= plan.trials(), "trial range exceeds the plan");
    let n_nodes = runner.graph().len();
    let mut drawer = FaultDrawer::new();
    // Nested schedules share one permutation for the whole row (drawn from
    // trial_seed(0)); trial t's fault set is its first `counts[t]`
    // elements — exactly the draws `Ffc::embed_batch` makes, so the
    // identical-draw contract holds for every schedule kind.
    let nested_row: Option<Vec<usize>> =
        if matches!(plan.schedule(), debruijn_core::FaultSchedule::Nested(_)) {
            let max = plan.schedule().max_faults().min(n_nodes);
            Some(drawer.draw(n_nodes, plan.trial_seed(0), max).to_vec())
        } else {
            None
        };
    range
        .map(|trial| {
            let f = plan.schedule().faults_for(trial).min(n_nodes);
            let faults = match &nested_row {
                Some(row) => row[..f].to_vec(),
                None => drawer.draw(n_nodes, plan.trial_seed(trial), f).to_vec(),
            };
            let out = runner.run(&faults);
            DistributedTrial {
                index: trial,
                faults,
                cycle_len: out.cycle.as_ref().map(Vec::len),
                rounds_total: out.rounds.total,
                broadcast_depth: out.rounds.broadcast_depth,
            }
        })
        .collect()
}

/// [`distributed_sweep_range`] over the whole plan.
#[must_use]
pub fn distributed_sweep(runner: &DistributedFfc, plan: &SweepPlan) -> Vec<DistributedTrial> {
    distributed_sweep_range(runner, plan, 0..plan.trials())
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::{BatchEmbedder, EmbedStats, FaultSchedule, Ffc};

    /// The distributed sweep must draw the identical fault sets and find
    /// the identical cycles as the centralized batch engine, trial for
    /// trial — including when the work is split into shard-style ranges.
    #[test]
    fn distributed_sweep_matches_centralized_batch() {
        let (d, n) = (2u64, 5u32);
        let runner = DistributedFfc::new(d, n);
        let ffc = Ffc::new(d, n);
        let plan = SweepPlan::new(FaultSchedule::Cycling(vec![0, 1, 2]), 18, 0xC0FFEE)
            .collect_cycles(true);

        let mut batch = BatchEmbedder::new(2);
        type Centralized = (usize, Vec<usize>, EmbedStats, Vec<usize>);
        let central: Vec<Centralized> =
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Centralized>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("cycles requested").to_vec(),
                ));
            });

        // Run the distributed side as two "remote" shards.
        let mut distributed = distributed_sweep_range(&runner, &plan, 0..9);
        distributed.extend(distributed_sweep_range(&runner, &plan, 9..18));

        assert_eq!(central.len(), distributed.len());
        for ((idx, faults, stats, cycle), dt) in central.iter().zip(&distributed) {
            assert_eq!(*idx, dt.index);
            assert_eq!(faults, &dt.faults, "fault draw diverged at trial {idx}");
            assert_eq!(
                dt.cycle_len,
                Some(cycle.len()),
                "cycle length diverged at trial {idx}"
            );
            assert_eq!(dt.broadcast_depth, stats.eccentricity, "trial {idx}");
        }
    }

    /// Nested plans must keep the identical-draw contract: the
    /// distributed sweep's per-trial fault sets (shared-permutation
    /// prefixes) and cycles equal the centralized batch engine's, trial
    /// for trial.
    #[test]
    fn nested_distributed_sweep_matches_centralized_batch() {
        let (d, n) = (2u64, 5u32);
        let runner = DistributedFfc::new(d, n);
        let ffc = Ffc::new(d, n);
        let plan = SweepPlan::new(FaultSchedule::Nested(vec![0, 2, 4, 1]), 14, 0xBEEF)
            .collect_cycles(true);
        let mut batch = BatchEmbedder::new(3);
        type Row = (usize, Vec<usize>, usize);
        let central: Vec<Row> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
            acc.push((
                trial.index,
                trial.faults.to_vec(),
                trial.cycle.expect("cycles requested").len(),
            ));
        });
        let mut distributed = distributed_sweep_range(&runner, &plan, 0..7);
        distributed.extend(distributed_sweep_range(&runner, &plan, 7..14));
        assert_eq!(central.len(), distributed.len());
        for ((idx, faults, cycle_len), dt) in central.iter().zip(&distributed) {
            assert_eq!(*idx, dt.index);
            assert_eq!(faults, &dt.faults, "nested draw diverged at trial {idx}");
            assert_eq!(dt.cycle_len, Some(*cycle_len), "trial {idx}");
        }
    }

    #[test]
    fn whole_plan_sweep_equals_concatenated_ranges() {
        let runner = DistributedFfc::new(3, 3);
        let plan = SweepPlan::new(FaultSchedule::Constant(1), 8, 7);
        let whole = distributed_sweep(&runner, &plan);
        let mut parts = distributed_sweep_range(&runner, &plan, 0..3);
        parts.extend(distributed_sweep_range(&runner, &plan, 3..8));
        assert_eq!(whole.len(), parts.len());
        for (a, b) in whole.iter().zip(&parts) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.cycle_len, b.cycle_len);
            assert_eq!(a.rounds_total, b.rounds_total);
        }
    }
}
