//! Ring-structured collective communication over embedded cycles.
//!
//! The reason the paper wants rings in the first place (Chapter 3
//! introduction): an all-to-all broadcast over an N-node ring takes N − 1
//! rounds of neighbour-to-neighbour exchange, and if the network supplies t
//! edge-disjoint Hamiltonian cycles the message can be split into t parts
//! and pipelined over all of them at once, dividing the per-link traffic by
//! t. This module simulates both patterns on the [`Network`] fabric so the
//! examples and the ablation benchmarks can measure them.

use std::collections::HashSet;

use dbg_graph::{FaultSet, Topology};

use crate::network::Network;

/// The result of an all-to-all broadcast simulation.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct RingBroadcastReport {
    /// Number of ring nodes participating.
    pub participants: usize,
    /// Communication rounds used.
    pub rounds: usize,
    /// Total messages delivered (across all rounds and links).
    pub messages_delivered: u64,
    /// Units of traffic carried by the busiest directed link, where one
    /// unit is one (possibly partial) source message forwarded once.
    pub max_link_load: u64,
    /// Whether every participant ended up holding every other participant's
    /// message (the broadcast completed).
    pub complete: bool,
}

/// Simulates the classic all-to-all broadcast over a single embedded ring:
/// in each round every node forwards the newest message it received to its
/// ring successor. Completes in `len − 1` rounds.
#[must_use]
pub fn all_to_all_broadcast<T: Topology>(topology: &T, ring: &[usize]) -> RingBroadcastReport {
    split_all_to_all_broadcast(topology, &[ring.to_vec()])
}

/// Simulates an all-to-all broadcast in which each source message is split
/// into `rings.len()` equal parts, part j travelling only along ring j
/// (the disjoint-Hamiltonian-cycle traffic-spreading scheme of the Chapter 3
/// introduction). All rings must visit the same node set.
///
/// # Panics
/// Panics if a ring edge is not an edge of the topology, or the rings do
/// not cover the same node set.
#[must_use]
pub fn split_all_to_all_broadcast<T: Topology>(
    topology: &T,
    rings: &[Vec<usize>],
) -> RingBroadcastReport {
    assert!(!rings.is_empty(), "at least one ring is required");
    let participants: HashSet<usize> = rings[0].iter().copied().collect();
    for ring in rings {
        let set: HashSet<usize> = ring.iter().copied().collect();
        assert_eq!(set, participants, "all rings must span the same node set");
        assert_eq!(set.len(), ring.len(), "rings must not repeat nodes");
    }
    let n = rings[0].len();
    let faults = FaultSet::new();
    let mut net = Network::new(topology, &faults);

    // holdings[node] = set of (source, part) pairs currently known.
    let node_count = topology.node_count();
    let mut holdings: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); node_count];
    for (part, ring) in rings.iter().enumerate() {
        for &v in ring {
            holdings[v].insert((v, part));
        }
    }
    // Per-ring successor maps and the "newest item" each node will forward
    // on that ring (start with its own part).
    let mut successor: Vec<Vec<usize>> = Vec::new();
    let mut carry: Vec<Vec<(usize, usize)>> = Vec::new();
    for (part, ring) in rings.iter().enumerate() {
        let mut succ = vec![usize::MAX; node_count];
        for i in 0..ring.len() {
            let from = ring[i];
            let to = ring[(i + 1) % ring.len()];
            assert!(
                topology.has_edge(from, to),
                "ring edge {from}->{to} missing from topology"
            );
            succ[from] = to;
        }
        successor.push(succ);
        carry.push(ring.iter().map(|&v| (v, part)).collect());
    }

    let mut link_load: std::collections::HashMap<(usize, usize), u64> =
        std::collections::HashMap::new();
    // N - 1 rounds: in round k, node i of ring r forwards the item that
    // originated k hops behind it.
    for _ in 0..n.saturating_sub(1) {
        let mut outgoing = Vec::new();
        let mut next_carry: Vec<Vec<(usize, usize)>> = vec![Vec::new(); rings.len()];
        for (r, ring) in rings.iter().enumerate() {
            for (i, &v) in ring.iter().enumerate() {
                let item = carry[r][i];
                let to = successor[r][v];
                outgoing.push((v, to, item));
                *link_load.entry((v, to)).or_insert(0) += 1;
                next_carry[r].push(item);
            }
        }
        let inboxes = net.exchange(outgoing);
        // Each node keeps what it received and will forward it next round.
        for (r, ring) in rings.iter().enumerate() {
            for (i, &v) in ring.iter().enumerate() {
                let pred_item = next_carry[r][(i + ring.len() - 1) % ring.len()];
                carry[r][i] = pred_item;
                holdings[v].insert(pred_item);
            }
        }
        let _ = inboxes;
    }

    let expected_per_node = participants.len() * rings.len();
    let complete = participants
        .iter()
        .all(|&v| holdings[v].len() == expected_per_node);
    RingBroadcastReport {
        participants: participants.len(),
        rounds: net.stats().rounds,
        messages_delivered: net.stats().messages_delivered,
        max_link_load: link_load.values().copied().max().unwrap_or(0),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::DeBruijn;
    use debruijn_core::{DisjointHamiltonianCycles, Ffc};

    #[test]
    fn single_ring_broadcast_completes_in_n_minus_1_rounds() {
        let ffc = Ffc::new(2, 4);
        let out = ffc.embed(&[]);
        let g = ffc.graph();
        let report = all_to_all_broadcast(g, &out.cycle);
        assert_eq!(report.participants, 16);
        assert_eq!(report.rounds, 15);
        assert!(report.complete);
        assert_eq!(report.messages_delivered, 16 * 15);
    }

    #[test]
    fn broadcast_over_fault_free_cycle_with_faults() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let out = ffc.embed(&[g.node("020").unwrap()]);
        let report = all_to_all_broadcast(g, &out.cycle);
        assert_eq!(report.participants, out.cycle.len());
        assert_eq!(report.rounds, out.cycle.len() - 1);
        assert!(report.complete);
    }

    #[test]
    fn splitting_across_disjoint_hcs_divides_link_load() {
        let g = DeBruijn::new(4, 2);
        let dhc = DisjointHamiltonianCycles::construct(4, 2);
        let single = all_to_all_broadcast(&g, &dhc.cycles()[0]);
        let split = split_all_to_all_broadcast(&g, dhc.cycles());
        assert!(single.complete && split.complete);
        assert_eq!(single.rounds, split.rounds);
        // With 3 disjoint rings each link belongs to exactly one ring, so the
        // per-link load stays what a single ring imposes — but each part is a
        // third of the message, so effective bytes per link drop 3×. The raw
        // unit counts therefore match while total deliveries triple.
        assert_eq!(split.max_link_load, single.max_link_load);
        assert_eq!(split.messages_delivered, 3 * single.messages_delivered);
    }

    #[test]
    #[should_panic(expected = "missing from topology")]
    fn rejects_rings_that_are_not_subgraphs() {
        let g = DeBruijn::new(2, 3);
        let bogus = vec![0usize, 5, 3];
        let _ = all_to_all_broadcast(&g, &bogus);
    }
}
