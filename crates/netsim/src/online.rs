//! The online fault-injection protocol: a long-lived network session
//! absorbing a *stream* of fault events (Section 2.5's reconfiguration
//! viewpoint), round-tripped against the centralized incremental engine.
//!
//! [`OnlineFfc`] keeps the accumulated fault set of a running network.
//! Each [`OnlineFfc::inject_fault`] / [`OnlineFfc::repair_fault`] event
//! triggers one distributed reconfiguration — a full run of the five-phase
//! Section 2.4 protocol, which is what reconfiguration *is* at the network
//! level: every processor re-derives its successor pointer from messages
//! alone — and records the event's round/message cost next to the
//! cumulative totals.
//!
//! The interesting property is the **round trip against the centralized
//! maintainer**: after every event, the protocol's outcome must agree with
//! a [`RingMaintainer`](debruijn_core::RingMaintainer) that absorbed the
//! same event incrementally — same root, same ring bytes, and the
//! protocol's *per-round message counts must equal the maintainer's phase
//! work*: broadcast round r sends exactly d tokens per node the
//! maintainer's forward-level histogram puts at level r − 1, and the
//! per-level receiver counts equal that histogram bin for bin.
//! [`verify_against_maintainer`] packages those assertions as the shared
//! harness the exhaustive protocol tests (and any embedding service that
//! wants a self-check) run after each event — one implementation instead
//! of per-test run-then-diff loops.

use debruijn_core::{Ffc, RingMaintainer};

use crate::ffc_distributed::{DistributedFfc, DistributedOutcome};
use crate::network::ChaosConfig;

/// Round/message cost of one online event (one distributed
/// reconfiguration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineEventCost {
    /// Communication rounds the reconfiguration used.
    pub rounds: usize,
    /// Messages handed to the fabric during the reconfiguration.
    pub messages_sent: u64,
}

/// A long-lived distributed FFC session absorbing fault events online.
#[derive(Clone, Debug)]
pub struct OnlineFfc {
    runner: DistributedFfc,
    faults: Vec<usize>,
    outcome: DistributedOutcome,
    events: usize,
    total_rounds: usize,
    total_messages: u64,
    /// When set, every reconfiguration runs through the chaos fabric,
    /// re-seeded per event so each reconfiguration sees a fresh (but
    /// replayable) adversary stream.
    chaos: Option<ChaosConfig>,
}

impl OnlineFfc {
    /// Starts an online session on B(d,n) with no faults (one initial
    /// reconfiguration runs immediately).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        Self::build(d, n, None)
    }

    /// Starts an online session whose every reconfiguration — including
    /// the initial bring-up — runs through the chaos fabric: messages are
    /// dropped, duplicated and delayed per `cfg`, and the protocol's
    /// retry-with-timeout/resynchronization machinery has to absorb it.
    /// The chaos stream is re-seeded deterministically per event, so a
    /// session replays bit-identically.
    #[must_use]
    pub fn with_chaos(d: u64, n: u32, cfg: ChaosConfig) -> Self {
        Self::build(d, n, Some(cfg))
    }

    fn build(d: u64, n: u32, chaos: Option<ChaosConfig>) -> Self {
        let runner = DistributedFfc::new(d, n);
        let outcome = match chaos {
            Some(cfg) => runner.run_chaos(&[], cfg),
            None => runner.run(&[]),
        };
        let mut session = OnlineFfc {
            runner,
            faults: Vec::new(),
            outcome,
            events: 0,
            total_rounds: 0,
            total_messages: 0,
            chaos,
        };
        session.account();
        session
    }

    /// The chaos configuration, if this session runs on a faulty fabric.
    #[must_use]
    pub fn chaos_config(&self) -> Option<ChaosConfig> {
        self.chaos
    }

    /// The protocol runner (graph + centralized reference).
    #[must_use]
    pub fn runner(&self) -> &DistributedFfc {
        &self.runner
    }

    /// The accumulated faulty processors.
    #[must_use]
    pub fn faults(&self) -> &[usize] {
        &self.faults
    }

    /// The outcome of the most recent reconfiguration.
    #[must_use]
    pub fn outcome(&self) -> &DistributedOutcome {
        &self.outcome
    }

    /// Fault events absorbed so far (injections + repairs; the initial
    /// bring-up is not counted).
    #[must_use]
    pub fn events(&self) -> usize {
        self.events
    }

    /// Cumulative rounds and messages over every reconfiguration run.
    #[must_use]
    pub fn totals(&self) -> OnlineEventCost {
        OnlineEventCost {
            rounds: self.total_rounds,
            messages_sent: self.total_messages,
        }
    }

    /// Injects a fault at processor `v` and reconfigures; returns the
    /// event's cost. Injecting an already-faulty processor still runs a
    /// reconfiguration (the network cannot know it was redundant) but
    /// leaves the fault set unchanged.
    pub fn inject_fault(&mut self, v: usize) -> OnlineEventCost {
        assert!(v < self.runner.graph().len(), "processor id out of range");
        if !self.faults.contains(&v) {
            self.faults.push(v);
        }
        self.reconfigure()
    }

    /// Repairs the fault at processor `v` and reconfigures; returns the
    /// event's cost.
    ///
    /// # Panics
    /// Panics if `v` is not currently faulty.
    pub fn repair_fault(&mut self, v: usize) -> OnlineEventCost {
        let pos = self
            .faults
            .iter()
            .position(|&f| f == v)
            .unwrap_or_else(|| panic!("repair_fault({v}): processor is not faulty"));
        self.faults.swap_remove(pos);
        self.reconfigure()
    }

    /// Runs one reconfiguration over the current fault set.
    fn reconfigure(&mut self) -> OnlineEventCost {
        self.events += 1;
        self.outcome = match self.chaos {
            Some(cfg) => {
                // A fresh, deterministic adversary stream per event.
                let salt = (self.events as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                self.runner
                    .run_chaos(&self.faults, cfg.reseed(cfg.seed ^ salt))
            }
            None => self.runner.run(&self.faults),
        };
        self.account()
    }

    /// Folds the latest outcome into the cumulative totals.
    fn account(&mut self) -> OnlineEventCost {
        let cost = OnlineEventCost {
            rounds: self.outcome.rounds.total,
            messages_sent: self.outcome.network.messages_sent,
        };
        self.total_rounds += cost.rounds;
        self.total_messages += cost.messages_sent;
        cost
    }
}

/// The shared verification harness: checks a distributed outcome against a
/// centralized [`RingMaintainer`] holding the same accumulated fault set.
///
/// Verified, in order:
///
/// 1. **Root** — the protocol elected the maintainer's repair root.
/// 2. **Ring bytes** — the protocol's successor walk equals the
///    maintainer's ring node for node (`ring` is scratch space for the
///    walk).
/// 3. **Broadcast levels** — the protocol's per-level receiver counts
///    equal the maintainer's forward-level histogram bin for bin (the
///    protocol floods over live-necklace nodes, which is exactly the
///    maintainer's forward structure).
/// 4. **Per-round message counts** — broadcast round r sent exactly
///    d · histogram[r − 1] tokens (every frontier node sends to all d
///    successors), and the fabric's conservation law
///    `sent == delivered + dropped` holds for every traced round.
///
/// For a chaos run ([`DistributedOutcome::chaos`]) the per-round
/// identities of check 4 are meaningless — retries inflate sends and
/// delay decouples a round's sends from its deliveries — so the harness
/// checks the *global* conservation law instead and keeps checks 1–3
/// unchanged: convergence must be bit-identical even on a faulty fabric.
///
/// # Errors
/// Returns a description of the first discrepancy.
pub fn verify_against_maintainer(
    outcome: &DistributedOutcome,
    ffc: &Ffc,
    maintainer: &RingMaintainer,
    ring: &mut Vec<usize>,
) -> Result<(), String> {
    let stats = maintainer.stats();
    if outcome.root != stats.root {
        return Err(format!(
            "root diverges: protocol {} vs maintainer {}",
            outcome.root, stats.root
        ));
    }
    let cycle = outcome
        .cycle
        .as_ref()
        .ok_or_else(|| "protocol walk did not close".to_string())?;
    maintainer.ring_into(ring);
    if cycle != ring {
        return Err(format!(
            "ring bytes diverge: protocol {} nodes vs maintainer {}",
            cycle.len(),
            ring.len()
        ));
    }
    let histogram = maintainer.session().forward_level_counts();
    if outcome.broadcast_level_counts != histogram {
        return Err(format!(
            "broadcast level counts diverge: protocol {:?} vs forward histogram {:?}",
            outcome.broadcast_level_counts, histogram
        ));
    }
    if outcome.chaos {
        let s = outcome.network;
        if s.messages_sent != s.messages_delivered + s.messages_dropped {
            return Err(format!(
                "chaos run violates global conservation: {} sent, {} delivered, {} dropped",
                s.messages_sent, s.messages_delivered, s.messages_dropped
            ));
        }
        return Ok(());
    }
    let d = ffc.graph().d();
    let probe = outcome.rounds.probe;
    for r in 1..=outcome.rounds.broadcast_depth {
        let round = outcome
            .trace
            .get(probe + r - 1)
            .ok_or_else(|| format!("trace too short for broadcast round {r}"))?;
        let want = d * histogram[r - 1] as u64;
        if round.sent != want {
            return Err(format!(
                "broadcast round {r} sent {} messages, expected d x {} = {want}",
                round.sent,
                histogram[r - 1]
            ));
        }
    }
    for (i, round) in outcome.trace.iter().enumerate() {
        if round.sent != round.delivered + round.dropped {
            return Err(format!(
                "round {i} violates conservation: {} sent, {} delivered, {} dropped",
                round.sent, round.delivered, round.dropped
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::EmbedScratch;

    /// Drives an online session and a centralized maintainer through the
    /// same event stream, running the shared harness after every event.
    fn lockstep(d: u64, n: u32, events: &[(bool, usize)]) {
        let mut online = OnlineFfc::new(d, n);
        let ffc = Ffc::new(d, n);
        let mut maint = RingMaintainer::new();
        let mut ring = Vec::new();
        maint.reset(&ffc, &[]).expect("in-range");
        verify_against_maintainer(online.outcome(), &ffc, &maint, &mut ring)
            .expect("bring-up diverges");
        for &(inject, v) in events {
            let cost = if inject {
                maint.add_fault(&ffc, v).expect("in-range");
                online.inject_fault(v)
            } else {
                maint.clear_fault(&ffc, v).expect("in-range");
                online.repair_fault(v)
            };
            assert!(cost.rounds > 0 && cost.messages_sent > 0);
            verify_against_maintainer(online.outcome(), &ffc, &maint, &mut ring)
                .unwrap_or_else(|e| panic!("event ({inject}, {v}) diverges: {e}"));
        }
    }

    #[test]
    fn online_stream_matches_maintainer_on_example_2_1() {
        let g = dbg_graph::DeBruijn::new(3, 3);
        let a = g.node("020").unwrap();
        let b = g.node("112").unwrap();
        lockstep(
            3,
            3,
            &[
                (true, a),
                (true, b),
                (false, a),
                (true, a),
                (false, b),
                (false, a),
            ],
        );
    }

    /// The exhaustive ≤2-fault grid of the protocol tests, replayed as an
    /// online event stream: inject a, inject b, repair a, repair b — the
    /// shared harness must hold after every event, for every ordered pair.
    #[test]
    fn online_stream_matches_maintainer_exhaustively_on_small_fault_sets() {
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut online = OnlineFfc::new(d, n);
            let mut maint = RingMaintainer::new();
            let mut ring = Vec::new();
            for a in 0..total {
                for b in 0..total {
                    if a == b {
                        continue;
                    }
                    maint.reset(&ffc, &[]).expect("in-range");
                    online.faults.clear();
                    for (label, event) in [
                        ("inject a", (true, a)),
                        ("inject b", (true, b)),
                        ("repair a", (false, a)),
                        ("repair b", (false, b)),
                    ] {
                        let (inject, v) = event;
                        if inject {
                            maint.add_fault(&ffc, v).expect("in-range");
                            online.inject_fault(v);
                        } else {
                            maint.clear_fault(&ffc, v).expect("in-range");
                            online.repair_fault(v);
                        }
                        verify_against_maintainer(online.outcome(), &ffc, &maint, &mut ring)
                            .unwrap_or_else(|e| {
                                panic!("{label} diverges for ({a},{b}) in B({d},{n}): {e}")
                            });
                    }
                }
            }
        }
    }

    /// The same lockstep stream as the perfect-fabric tests, but on a
    /// chaos fabric at ≥10% drop (plus duplication and delay): the
    /// protocol must still converge bit-identically to the centralized
    /// maintainer after every event — the harness checks root, ring bytes,
    /// level histogram and global message conservation.
    #[test]
    fn online_chaos_stream_matches_maintainer() {
        for cfg in [
            ChaosConfig::drop_only(0.10, 0xFEED),
            ChaosConfig {
                drop: 0.15,
                duplicate: 0.10,
                max_delay: 2,
                seed: 0xDEC0,
            },
        ] {
            let (d, n) = (3u64, 3u32);
            let mut online = OnlineFfc::with_chaos(d, n, cfg);
            assert_eq!(online.chaos_config(), Some(cfg));
            let ffc = Ffc::new(d, n);
            let mut maint = RingMaintainer::new();
            let mut ring = Vec::new();
            maint.reset(&ffc, &[]).expect("in-range");
            verify_against_maintainer(online.outcome(), &ffc, &maint, &mut ring)
                .expect("chaos bring-up diverges");
            assert!(online.outcome().chaos);
            let g = dbg_graph::DeBruijn::new(d, n);
            let a = g.node("020").unwrap();
            let b = g.node("112").unwrap();
            for (inject, v) in [(true, a), (true, b), (false, a), (false, b)] {
                let cost = if inject {
                    maint.add_fault(&ffc, v).expect("in-range");
                    online.inject_fault(v)
                } else {
                    maint.clear_fault(&ffc, v).expect("in-range");
                    online.repair_fault(v)
                };
                assert!(cost.rounds > 0 && cost.messages_sent > 0);
                verify_against_maintainer(online.outcome(), &ffc, &maint, &mut ring)
                    .unwrap_or_else(|e| panic!("chaos event ({inject}, {v}) diverges: {e}"));
                // The adversary genuinely interfered.
                assert!(online.outcome().network.messages_dropped > 0);
            }
        }
    }

    #[test]
    fn online_event_costs_accumulate() {
        let mut online = OnlineFfc::new(2, 5);
        let bring_up = online.totals();
        assert!(bring_up.rounds > 0);
        let c1 = online.inject_fault(9);
        let c2 = online.repair_fault(9);
        assert_eq!(online.events(), 2);
        assert_eq!(
            online.totals().rounds,
            bring_up.rounds + c1.rounds + c2.rounds
        );
        assert!(online.faults().is_empty());
    }

    #[test]
    #[should_panic(expected = "not faulty")]
    fn repairing_a_healthy_processor_is_a_programming_error() {
        let mut online = OnlineFfc::new(2, 4);
        let _ = online.repair_fault(3);
    }

    /// The harness itself also validates a plain (non-online) run against
    /// a maintainer primed with the same faults — the single entry point
    /// the `ffc_distributed` exhaustive test shares.
    #[test]
    fn harness_accepts_fresh_runs() {
        let ffc = Ffc::new(3, 3);
        let runner = DistributedFfc::new(3, 3);
        let mut maint = RingMaintainer::new();
        let mut ring = Vec::new();
        let mut scratch = EmbedScratch::new();
        for faults in [vec![], vec![5], vec![5, 11]] {
            let outcome = runner.run(&faults);
            maint.reset(&ffc, &faults).expect("in-range");
            verify_against_maintainer(&outcome, &ffc, &maint, &mut ring)
                .expect("fresh run diverges");
            // And the maintainer agreed with the engine, closing the
            // three-way loop.
            let want = ffc.embed_into(&mut scratch, &faults);
            assert_eq!(maint.stats(), want);
        }
    }
}
