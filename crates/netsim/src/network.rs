//! A synchronous, round-based message-passing network.
//!
//! The model matches the assumptions of Section 2.4: computation proceeds
//! in lock-step rounds; in each round a processor may send one message to
//! every out-neighbour (multi-port communication); messages sent in round r
//! are delivered at the start of round r + 1. Failed processors neither
//! send nor receive; failed links silently drop traffic (and the drops are
//! counted, since a protocol that "works" by luck should be visible as
//! such in the statistics).
//!
//! [`Network::with_chaos`] degrades the fabric further: every message is
//! independently dropped, duplicated or delayed a bounded number of rounds
//! according to a seeded [`ChaosConfig`] — the adversary the chaos-tested
//! protocol ([`crate::ffc_distributed::DistributedFfc::run_chaos`]) must
//! survive. Chaos is deterministic given its seed, so a failing run is
//! replayable.

use dbg_graph::{FaultSet, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters accumulated over a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetworkStats {
    /// Completed communication rounds.
    pub rounds: usize,
    /// Messages handed to the fabric by senders.
    pub messages_sent: u64,
    /// Messages actually delivered to a live receiver.
    pub messages_delivered: u64,
    /// Messages dropped because of a faulty link or endpoint (or by
    /// chaos injection, including in-flight messages expired by
    /// [`Network::note_expired`]).
    pub messages_dropped: u64,
    /// Extra copies injected by chaos duplication (each also counts as
    /// sent, so conservation still reads `sent == delivered + dropped`).
    pub messages_duplicated: u64,
    /// Messages the chaos fabric held back at least one round.
    pub messages_delayed: u64,
}

/// A seeded model of fabric misbehaviour: per-message drop, duplication
/// and bounded delay. All probabilities are independent per message copy;
/// the stream is a pure function of [`ChaosConfig::seed`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Probability that a message copy is silently lost.
    pub drop: f64,
    /// Probability that a message is duplicated (one extra copy).
    pub duplicate: f64,
    /// Maximum extra rounds a copy may be held back (uniform in
    /// `0..=max_delay`).
    pub max_delay: usize,
    /// RNG seed for the chaos stream.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop: 0.10,
            duplicate: 0.05,
            max_delay: 2,
            seed: 0xC4A05,
        }
    }
}

impl ChaosConfig {
    /// A drop-only adversary at the given probability.
    #[must_use]
    pub fn drop_only(drop: f64, seed: u64) -> Self {
        ChaosConfig {
            drop,
            duplicate: 0.0,
            max_delay: 0,
            seed,
        }
    }

    /// Re-seeds the stream (e.g. per event in an online session).
    #[must_use]
    pub fn reseed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// An outgoing message: `(from, to, payload)`.
pub type Outgoing<M> = (usize, usize, M);

/// Per-round message accounting: what one [`Network::exchange`] moved.
/// The online FFC harness asserts these against the centralized
/// maintainer's phase work (e.g. broadcast-round sends against the
/// forward-level histogram).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RoundTrace {
    /// Messages handed to the fabric this round.
    pub sent: u64,
    /// Messages delivered to a live receiver this round.
    pub delivered: u64,
    /// Messages dropped by faulty links/endpoints this round.
    pub dropped: u64,
}

/// A synchronous message-passing network over a topology with faults.
#[derive(Debug)]
pub struct Network<'a, T: Topology> {
    topology: &'a T,
    faults: &'a FaultSet,
    stats: NetworkStats,
    /// Per-round accounting, recorded only when tracing is enabled
    /// ([`Network::with_trace`]) — long-running collectives (thousands of
    /// rounds) should not accumulate an unread log.
    trace: Vec<RoundTrace>,
    trace_enabled: bool,
    /// Chaos injection state, if enabled ([`Network::with_chaos`]).
    chaos: Option<(ChaosConfig, StdRng)>,
}

impl<'a, T: Topology> Network<'a, T> {
    /// Creates a network over `topology` with the given fault set.
    #[must_use]
    pub fn new(topology: &'a T, faults: &'a FaultSet) -> Self {
        Network {
            topology,
            faults,
            stats: NetworkStats::default(),
            trace: Vec::new(),
            trace_enabled: false,
            chaos: None,
        }
    }

    /// Enables per-round message tracing ([`Network::trace`]); off by
    /// default so unbounded simulations don't grow an unread log.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// Arms the chaos adversary: subsequent [`Network::exchange_chaos`]
    /// calls drop, duplicate and delay messages per `cfg`.
    #[must_use]
    pub fn with_chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some((cfg, StdRng::seed_from_u64(cfg.seed)));
        self
    }

    /// The chaos configuration, if armed.
    #[must_use]
    pub fn chaos_config(&self) -> Option<ChaosConfig> {
        self.chaos.as_ref().map(|(cfg, _)| *cfg)
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &T {
        self.topology
    }

    /// The number of processors (including failed ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.topology.node_count()
    }

    /// Whether the network has no processors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topology.node_count() == 0
    }

    /// Whether processor `v` is alive.
    #[must_use]
    pub fn alive(&self, v: usize) -> bool {
        !self.faults.node_is_faulty(v)
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Per-round message accounting, one entry per completed
    /// [`Network::exchange`] (in round order). Empty unless tracing was
    /// enabled with [`Network::with_trace`].
    #[must_use]
    pub fn trace(&self) -> &[RoundTrace] {
        &self.trace
    }

    /// Executes one synchronous round: takes every message produced by the
    /// senders this round and returns, for each node, the inbox it will see
    /// at the start of the next round.
    ///
    /// # Panics
    /// Panics if a message is sent along a pair that is not an edge of the
    /// topology — that is a protocol bug, not a fault.
    pub fn exchange<M>(&mut self, outgoing: Vec<Outgoing<M>>) -> Vec<Vec<M>> {
        let mut inboxes: Vec<Vec<M>> = (0..self.len()).map(|_| Vec::new()).collect();
        let mut round = RoundTrace::default();
        for (from, to, payload) in outgoing {
            assert!(
                self.topology.has_edge(from, to),
                "protocol bug: message sent along non-edge {from} -> {to}"
            );
            self.stats.messages_sent += 1;
            round.sent += 1;
            if self.faults.node_is_faulty(from)
                || self.faults.node_is_faulty(to)
                || self.faults.edge_is_faulty(from, to)
            {
                self.stats.messages_dropped += 1;
                round.dropped += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            round.delivered += 1;
            inboxes[to].push(payload);
        }
        self.stats.rounds += 1;
        if self.trace_enabled {
            self.trace.push(round);
        } else {
            let _ = round;
        }
        inboxes
    }

    /// Executes one synchronous round through the chaos adversary
    /// ([`Network::with_chaos`]): each message copy is independently
    /// dropped, duplicated (the extra copy also counts as sent) or held
    /// back up to `max_delay` rounds in `pending` — entries are
    /// `(due_round, to, payload)`, delivered by the `exchange_chaos` call
    /// whose round matures them. Without an armed chaos config this is
    /// exactly [`Network::exchange`] (and `pending` stays empty).
    ///
    /// Per-round conservation (`sent == delivered + dropped` within one
    /// [`RoundTrace`]) does **not** hold under delay; the global law holds
    /// again once every pending message has matured or been expired via
    /// [`Network::note_expired`].
    ///
    /// # Panics
    /// Panics if a message is sent along a non-edge (a protocol bug —
    /// chaos degrades delivery, never addressing).
    pub fn exchange_chaos<M: Clone>(
        &mut self,
        outgoing: Vec<Outgoing<M>>,
        pending: &mut Vec<(usize, usize, M)>,
    ) -> Vec<Vec<M>> {
        let Some((cfg, mut rng)) = self.chaos.take() else {
            debug_assert!(pending.is_empty(), "pending messages without chaos");
            return self.exchange(outgoing);
        };
        let mut inboxes: Vec<Vec<M>> = (0..self.len()).map(|_| Vec::new()).collect();
        let mut round = RoundTrace::default();
        // Mature the copies whose delay ends this round. Their `sent` was
        // accounted when they entered the fabric.
        let now = self.stats.rounds;
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, to, payload) = pending.swap_remove(i);
                self.stats.messages_delivered += 1;
                round.delivered += 1;
                inboxes[to].push(payload);
            } else {
                i += 1;
            }
        }
        for (from, to, payload) in outgoing {
            assert!(
                self.topology.has_edge(from, to),
                "protocol bug: message sent along non-edge {from} -> {to}"
            );
            let copies = if rng.gen_bool(cfg.duplicate) { 2 } else { 1 };
            if copies == 2 {
                self.stats.messages_duplicated += 1;
            }
            for _ in 0..copies {
                self.stats.messages_sent += 1;
                round.sent += 1;
                let faulty = self.faults.node_is_faulty(from)
                    || self.faults.node_is_faulty(to)
                    || self.faults.edge_is_faulty(from, to);
                if faulty || rng.gen_bool(cfg.drop) {
                    self.stats.messages_dropped += 1;
                    round.dropped += 1;
                    continue;
                }
                let delay = if cfg.max_delay > 0 {
                    rng.gen_range(0..cfg.max_delay + 1)
                } else {
                    0
                };
                if delay > 0 {
                    self.stats.messages_delayed += 1;
                    pending.push((now + delay, to, payload.clone()));
                } else {
                    self.stats.messages_delivered += 1;
                    round.delivered += 1;
                    inboxes[to].push(payload.clone());
                }
            }
        }
        self.stats.rounds += 1;
        if self.trace_enabled {
            self.trace.push(round);
        }
        self.chaos = Some((cfg, rng));
        inboxes
    }

    /// Writes off `count` in-flight messages as dropped — called when a
    /// protocol phase (or the whole run) ends with copies still delayed in
    /// the pending queue, restoring the global conservation law.
    pub fn note_expired(&mut self, count: u64) {
        self.stats.messages_dropped += count;
    }

    /// Runs a round in which every live node computes its outgoing messages
    /// from its current inbox via `step(node, inbox) -> messages`, returning
    /// the next inboxes. Convenience wrapper over [`Network::exchange`].
    pub fn round<M, F>(&mut self, inboxes: &[Vec<M>], mut step: F) -> Vec<Vec<M>>
    where
        F: FnMut(usize, &[M]) -> Vec<(usize, M)>,
    {
        let mut outgoing = Vec::new();
        #[allow(clippy::needless_range_loop)] // v is a node id; inboxes is indexed incidentally
        for v in 0..self.len() {
            if !self.alive(v) {
                continue;
            }
            for (to, payload) in step(v, &inboxes[v]) {
                outgoing.push((v, to, payload));
            }
        }
        self.exchange(outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::DeBruijn;

    #[test]
    fn messages_travel_one_hop_per_round() {
        let g = DeBruijn::new(2, 3);
        let faults = FaultSet::new();
        let mut net = Network::new(&g, &faults);
        // 000 sends its id to 001.
        let inboxes = net.exchange(vec![(0usize, 1usize, 42u32)]);
        assert_eq!(inboxes[1], vec![42]);
        assert!(inboxes[0].is_empty());
        let stats = net.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages_delivered, 1);
        assert_eq!(stats.messages_dropped, 0);
    }

    #[test]
    fn faulty_nodes_and_links_drop_messages() {
        let g = DeBruijn::new(2, 3);
        let mut faults = FaultSet::new();
        faults.fail_node(1);
        faults.fail_edge(2, 4);
        let mut net = Network::new(&g, &faults);
        let inboxes = net.exchange(vec![(0, 1, "a"), (2, 4, "b"), (2, 5, "c")]);
        assert!(inboxes[1].is_empty());
        assert!(inboxes[4].is_empty());
        assert_eq!(inboxes[5], vec!["c"]);
        assert_eq!(net.stats().messages_dropped, 2);
        assert_eq!(net.stats().messages_delivered, 1);
        assert!(!net.alive(1));
        assert!(net.alive(0));
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn sending_over_a_non_edge_is_a_protocol_bug() {
        let g = DeBruijn::new(2, 3);
        let faults = FaultSet::new();
        let mut net = Network::new(&g, &faults);
        let _ = net.exchange(vec![(0usize, 7usize, ())]);
    }

    #[test]
    fn chaos_exchange_conserves_messages_globally() {
        let g = DeBruijn::new(2, 4);
        let faults = FaultSet::new();
        let cfg = ChaosConfig {
            drop: 0.25,
            duplicate: 0.2,
            max_delay: 3,
            seed: 99,
        };
        let mut net = Network::new(&g, &faults).with_chaos(cfg);
        let mut pending: Vec<(usize, usize, u32)> = Vec::new();
        let mut handed = 0u64;
        for round in 0..40 {
            let mut outgoing = Vec::new();
            if round < 30 {
                for v in 0..g.len() {
                    for u in g.successors(v) {
                        outgoing.push((v, u, v as u32));
                        handed += 1;
                    }
                }
            }
            let _ = net.exchange_chaos(outgoing, &mut pending);
        }
        assert!(pending.is_empty(), "delays are bounded, queue must drain");
        let s = net.stats();
        assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped);
        assert_eq!(s.messages_sent, handed + s.messages_duplicated);
        assert!(s.messages_dropped > 0, "drop=0.25 over thousands of sends");
        assert!(s.messages_duplicated > 0);
        assert!(s.messages_delayed > 0);
        // Determinism: the same seed replays the same stream.
        let mut net2 = Network::new(&g, &faults).with_chaos(cfg);
        let mut pending2: Vec<(usize, usize, u32)> = Vec::new();
        for round in 0..40 {
            let mut outgoing = Vec::new();
            if round < 30 {
                for v in 0..g.len() {
                    for u in g.successors(v) {
                        outgoing.push((v, u, v as u32));
                    }
                }
            }
            let _ = net2.exchange_chaos(outgoing, &mut pending2);
        }
        assert_eq!(net.stats(), net2.stats());
    }

    #[test]
    fn chaos_expiry_restores_conservation() {
        let g = DeBruijn::new(2, 3);
        let faults = FaultSet::new();
        let cfg = ChaosConfig {
            drop: 0.0,
            duplicate: 0.0,
            max_delay: 5,
            seed: 3,
        };
        let mut net = Network::new(&g, &faults).with_chaos(cfg);
        let mut pending: Vec<(usize, usize, ())> = Vec::new();
        for _ in 0..4 {
            let outgoing: Vec<_> = (0..g.len())
                .flat_map(|v| g.successors(v).into_iter().map(move |u| (v, u, ())))
                .collect();
            let _ = net.exchange_chaos(outgoing, &mut pending);
        }
        let leftover = pending.len() as u64;
        net.note_expired(leftover);
        pending.clear();
        let s = net.stats();
        assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped);
    }

    #[test]
    fn round_helper_skips_dead_nodes() {
        let g = DeBruijn::new(2, 2);
        let mut faults = FaultSet::new();
        faults.fail_node(3);
        let mut net = Network::new(&g, &faults);
        let empty: Vec<Vec<u32>> = vec![Vec::new(); 4];
        // Every node tries to flood its id to all successors.
        let inboxes = net.round(&empty, |v, _| {
            g.successors(v).into_iter().map(|u| (u, v as u32)).collect()
        });
        // Node 3 is dead: it neither sent nor received.
        assert!(inboxes[3].is_empty());
        // Node 1 receives from 0 (edge 0->1) but not from dead 3... (3->1 does not exist in B(2,2): 3=11 -> 10,11)
        assert!(inboxes[1].contains(&0));
        assert_eq!(net.stats().rounds, 1);
    }
}
