//! A synchronous, round-based message-passing network.
//!
//! The model matches the assumptions of Section 2.4: computation proceeds
//! in lock-step rounds; in each round a processor may send one message to
//! every out-neighbour (multi-port communication); messages sent in round r
//! are delivered at the start of round r + 1. Failed processors neither
//! send nor receive; failed links silently drop traffic (and the drops are
//! counted, since a protocol that "works" by luck should be visible as
//! such in the statistics).

use dbg_graph::{FaultSet, Topology};

/// Counters accumulated over a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetworkStats {
    /// Completed communication rounds.
    pub rounds: usize,
    /// Messages handed to the fabric by senders.
    pub messages_sent: u64,
    /// Messages actually delivered to a live receiver.
    pub messages_delivered: u64,
    /// Messages dropped because of a faulty link or endpoint.
    pub messages_dropped: u64,
}

/// An outgoing message: `(from, to, payload)`.
pub type Outgoing<M> = (usize, usize, M);

/// Per-round message accounting: what one [`Network::exchange`] moved.
/// The online FFC harness asserts these against the centralized
/// maintainer's phase work (e.g. broadcast-round sends against the
/// forward-level histogram).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RoundTrace {
    /// Messages handed to the fabric this round.
    pub sent: u64,
    /// Messages delivered to a live receiver this round.
    pub delivered: u64,
    /// Messages dropped by faulty links/endpoints this round.
    pub dropped: u64,
}

/// A synchronous message-passing network over a topology with faults.
#[derive(Debug)]
pub struct Network<'a, T: Topology> {
    topology: &'a T,
    faults: &'a FaultSet,
    stats: NetworkStats,
    /// Per-round accounting, recorded only when tracing is enabled
    /// ([`Network::with_trace`]) — long-running collectives (thousands of
    /// rounds) should not accumulate an unread log.
    trace: Vec<RoundTrace>,
    trace_enabled: bool,
}

impl<'a, T: Topology> Network<'a, T> {
    /// Creates a network over `topology` with the given fault set.
    #[must_use]
    pub fn new(topology: &'a T, faults: &'a FaultSet) -> Self {
        Network {
            topology,
            faults,
            stats: NetworkStats::default(),
            trace: Vec::new(),
            trace_enabled: false,
        }
    }

    /// Enables per-round message tracing ([`Network::trace`]); off by
    /// default so unbounded simulations don't grow an unread log.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &T {
        self.topology
    }

    /// The number of processors (including failed ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.topology.node_count()
    }

    /// Whether the network has no processors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topology.node_count() == 0
    }

    /// Whether processor `v` is alive.
    #[must_use]
    pub fn alive(&self, v: usize) -> bool {
        !self.faults.node_is_faulty(v)
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Per-round message accounting, one entry per completed
    /// [`Network::exchange`] (in round order). Empty unless tracing was
    /// enabled with [`Network::with_trace`].
    #[must_use]
    pub fn trace(&self) -> &[RoundTrace] {
        &self.trace
    }

    /// Executes one synchronous round: takes every message produced by the
    /// senders this round and returns, for each node, the inbox it will see
    /// at the start of the next round.
    ///
    /// # Panics
    /// Panics if a message is sent along a pair that is not an edge of the
    /// topology — that is a protocol bug, not a fault.
    pub fn exchange<M>(&mut self, outgoing: Vec<Outgoing<M>>) -> Vec<Vec<M>> {
        let mut inboxes: Vec<Vec<M>> = (0..self.len()).map(|_| Vec::new()).collect();
        let mut round = RoundTrace::default();
        for (from, to, payload) in outgoing {
            assert!(
                self.topology.has_edge(from, to),
                "protocol bug: message sent along non-edge {from} -> {to}"
            );
            self.stats.messages_sent += 1;
            round.sent += 1;
            if self.faults.node_is_faulty(from)
                || self.faults.node_is_faulty(to)
                || self.faults.edge_is_faulty(from, to)
            {
                self.stats.messages_dropped += 1;
                round.dropped += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            round.delivered += 1;
            inboxes[to].push(payload);
        }
        self.stats.rounds += 1;
        if self.trace_enabled {
            self.trace.push(round);
        } else {
            let _ = round;
        }
        inboxes
    }

    /// Runs a round in which every live node computes its outgoing messages
    /// from its current inbox via `step(node, inbox) -> messages`, returning
    /// the next inboxes. Convenience wrapper over [`Network::exchange`].
    pub fn round<M, F>(&mut self, inboxes: &[Vec<M>], mut step: F) -> Vec<Vec<M>>
    where
        F: FnMut(usize, &[M]) -> Vec<(usize, M)>,
    {
        let mut outgoing = Vec::new();
        #[allow(clippy::needless_range_loop)] // v is a node id; inboxes is indexed incidentally
        for v in 0..self.len() {
            if !self.alive(v) {
                continue;
            }
            for (to, payload) in step(v, &inboxes[v]) {
                outgoing.push((v, to, payload));
            }
        }
        self.exchange(outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::DeBruijn;

    #[test]
    fn messages_travel_one_hop_per_round() {
        let g = DeBruijn::new(2, 3);
        let faults = FaultSet::new();
        let mut net = Network::new(&g, &faults);
        // 000 sends its id to 001.
        let inboxes = net.exchange(vec![(0usize, 1usize, 42u32)]);
        assert_eq!(inboxes[1], vec![42]);
        assert!(inboxes[0].is_empty());
        let stats = net.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages_delivered, 1);
        assert_eq!(stats.messages_dropped, 0);
    }

    #[test]
    fn faulty_nodes_and_links_drop_messages() {
        let g = DeBruijn::new(2, 3);
        let mut faults = FaultSet::new();
        faults.fail_node(1);
        faults.fail_edge(2, 4);
        let mut net = Network::new(&g, &faults);
        let inboxes = net.exchange(vec![(0, 1, "a"), (2, 4, "b"), (2, 5, "c")]);
        assert!(inboxes[1].is_empty());
        assert!(inboxes[4].is_empty());
        assert_eq!(inboxes[5], vec!["c"]);
        assert_eq!(net.stats().messages_dropped, 2);
        assert_eq!(net.stats().messages_delivered, 1);
        assert!(!net.alive(1));
        assert!(net.alive(0));
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn sending_over_a_non_edge_is_a_protocol_bug() {
        let g = DeBruijn::new(2, 3);
        let faults = FaultSet::new();
        let mut net = Network::new(&g, &faults);
        let _ = net.exchange(vec![(0usize, 7usize, ())]);
    }

    #[test]
    fn round_helper_skips_dead_nodes() {
        let g = DeBruijn::new(2, 2);
        let mut faults = FaultSet::new();
        faults.fail_node(3);
        let mut net = Network::new(&g, &faults);
        let empty: Vec<Vec<u32>> = vec![Vec::new(); 4];
        // Every node tries to flood its id to all successors.
        let inboxes = net.round(&empty, |v, _| {
            g.successors(v).into_iter().map(|u| (u, v as u32)).collect()
        });
        // Node 3 is dead: it neither sent nor received.
        assert!(inboxes[3].is_empty());
        // Node 1 receives from 0 (edge 0->1) but not from dead 3... (3->1 does not exist in B(2,2): 3=11 -> 10,11)
        assert!(inboxes[1].contains(&0));
        assert_eq!(net.stats().rounds, 1);
    }
}
