//! The distributed fault-free-cycle protocol (Section 2.4), executed on the
//! synchronous message-passing fabric of [`crate::network`].
//!
//! Every processor starts knowing only the network parameters (d, n), its
//! own label, and the identity of the distinguished root R. The protocol
//! runs in five phases, all of whose decisions are made from node-local
//! state and received messages:
//!
//! 1. **Necklace probe** (n rounds): each node circulates a token around
//!    its necklace; if the token fails to return the necklace contains a
//!    faulty processor and the node withdraws from the computation.
//! 2. **Broadcast** (K rounds, K = eccentricity of R in B*): R floods a
//!    token; each node records the round of first receipt as its level and
//!    its minimal same-round sender as its parent — the spanning tree T′ of
//!    Step 1.1.
//! 3. **Necklace-level aggregation** (n rounds): members of each necklace
//!    exchange (level, parent) records, so all of them can agree on the
//!    earliest-reached node Y, the tree label w, and the parent necklace of
//!    Step 1.2.
//! 4. **w-group formation** (1 + n rounds): the node of each child necklace
//!    whose suffix is w announces its necklace to its de Bruijn successors;
//!    the announcements are circulated so that every member necklace of T_w
//!    learns the whole group and can orient the w-cycle of the modified
//!    tree D (Step 2).
//! 5. **Successor computation** (0 rounds): each node decides locally
//!    whether to leave its necklace through the w-edge of D or to follow
//!    its necklace successor (Step 3).
//!
//! The resulting successor pointers trace exactly the Hamiltonian cycle of
//! B* produced by the centralized algorithm in `debruijn_core::ffc`, which
//! the tests verify node for node. The total number of communication
//! rounds is K + 3n + 1 = O(K + n), matching the paper's bound.

use std::collections::{BTreeMap, BTreeSet};

use dbg_graph::{DeBruijn, FaultSet, Topology};
use debruijn_core::Ffc;

use crate::network::{ChaosConfig, Network, NetworkStats, RoundTrace};

/// One processor's protocol state.
#[derive(Clone, Debug, Default)]
struct NodeState {
    /// Necklace members in rotation order starting at this node (filled
    /// when the probe returns).
    necklace: Vec<usize>,
    /// Whether the probe returned — i.e. the whole necklace is fault-free.
    necklace_alive: bool,
    /// Broadcast level (round of first token receipt).
    level: Option<usize>,
    /// Broadcast parent (minimal sender among first-round receipts).
    parent: Option<usize>,
    /// (node, level, parent) records accumulated from necklace mates.
    records: BTreeMap<usize, (usize, usize)>,
    /// The necklace's tree label w, if it is a non-root necklace of B*.
    tree_label: Option<u64>,
    /// The representative of the parent necklace in T.
    parent_rep: Option<usize>,
    /// For each label w, the representatives of the necklaces known to form
    /// the w-group of D (parent and children).
    groups: BTreeMap<u64, BTreeSet<usize>>,
    /// The node's successor in the fault-free cycle H.
    successor: Option<usize>,
}

/// Messages exchanged by the protocol.
#[derive(Clone, Debug)]
enum Msg {
    /// Necklace probe: originating node plus the members accumulated so far.
    Probe { origin: usize, members: Vec<usize> },
    /// Broadcast token carrying its sender.
    Token { sender: usize },
    /// Chaos-mode broadcast token carrying the sender's current level —
    /// under message delay the receipt round no longer encodes distance,
    /// so the level travels explicitly and receivers min-fold it.
    TokenL { sender: usize, level: usize },
    /// Necklace-internal share of (node, level, parent) records.
    Share { records: Vec<(usize, usize, usize)> },
    /// A child necklace announcing itself to a w-group.
    Announce {
        label: u64,
        member_rep: usize,
        parent_rep: usize,
    },
    /// Necklace-internal circulation of w-group membership facts.
    Circulate { items: Vec<(u64, usize, usize)> },
}

/// Per-phase and total round counts, plus fabric statistics.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct DistributedRounds {
    /// Rounds spent probing necklaces (always n).
    pub probe: usize,
    /// Rounds spent broadcasting (the eccentricity of the root in B*, plus
    /// one final quiescent round used to detect termination).
    pub broadcast: usize,
    /// The largest broadcast level assigned — the eccentricity K itself.
    pub broadcast_depth: usize,
    /// Rounds spent sharing records inside necklaces (always n).
    pub share: usize,
    /// Rounds spent forming w-groups (always n + 1).
    pub group: usize,
    /// Total communication rounds.
    pub total: usize,
}

/// The outcome of one distributed FFC execution.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The root processor R.
    pub root: usize,
    /// The fault-free cycle traced by the successor pointers, if the walk
    /// from the root closed properly (it always does when B* is strongly
    /// connected, in particular for f ≤ d − 2 faults).
    pub cycle: Option<Vec<usize>>,
    /// Round accounting.
    pub rounds: DistributedRounds,
    /// Message accounting from the fabric.
    pub network: NetworkStats,
    /// Per-round message accounting (probe rounds first, then broadcast,
    /// share and group rounds, in execution order).
    pub trace: Vec<RoundTrace>,
    /// How many nodes received their broadcast level at each round
    /// (index = level; `[0]` is the root). This is the protocol-side twin
    /// of the centralized maintainer's forward-level histogram, which the
    /// online harness asserts it against.
    pub broadcast_level_counts: Vec<usize>,
    /// Whether the run went through the chaos fabric
    /// ([`DistributedFfc::run_chaos`]). Under chaos the per-round message
    /// identities (and per-round conservation, because of delay) no longer
    /// hold, so the verification harness skips those checks and keeps the
    /// convergence ones.
    pub chaos: bool,
}

/// The distributed FFC protocol runner for a fixed B(d,n).
#[derive(Clone, Debug)]
pub struct DistributedFfc {
    graph: DeBruijn,
    /// Centralized embedder, used only for root selection and by callers
    /// that want to cross-check the distributed result.
    reference: Ffc,
}

impl DistributedFfc {
    /// Creates the runner for B(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        DistributedFfc {
            graph: DeBruijn::new(d, n),
            reference: Ffc::new(d, n),
        }
    }

    /// The underlying de Bruijn graph.
    #[must_use]
    pub fn graph(&self) -> &DeBruijn {
        &self.graph
    }

    /// The centralized reference embedder (same parameters).
    #[must_use]
    pub fn reference(&self) -> &Ffc {
        &self.reference
    }

    /// Runs the protocol with the given faulty processors, rooted at the
    /// same processor the centralized algorithm would pick.
    #[must_use]
    pub fn run(&self, faulty_nodes: &[usize]) -> DistributedOutcome {
        let mask = self.reference.faulty_necklace_mask(faulty_nodes);
        let root = self
            .reference
            .pick_root(self.reference.default_root(), &mask);
        self.run_from(faulty_nodes, root)
    }

    /// Runs the protocol rooted at (the necklace representative of) `root`.
    #[must_use]
    pub fn run_from(&self, faulty_nodes: &[usize], root: usize) -> DistributedOutcome {
        let g = &self.graph;
        let space = g.space();
        let d = space.d();
        let n = space.n() as usize;
        let suffix_count = space.msd_place();
        let total = g.len();
        // All rotation-class lookups below reuse the centralized embedder's
        // precomputed partition tables (flat node → representative lookups)
        // instead of recomputing O(n) canonical rotations per query.
        let rep_of = |v: usize| self.reference.representative_of(v);
        let root = rep_of(root);

        let faults = FaultSet::from_nodes(faulty_nodes.iter().copied());
        let mut net = Network::new(g, &faults).with_trace();
        let mut states: Vec<NodeState> = (0..total).map(|_| NodeState::default()).collect();
        let mut rounds = DistributedRounds::default();

        // ------------------------------------------------------------------
        // Phase 1: necklace probe (n rounds).
        // ------------------------------------------------------------------
        let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); total];
        for _ in 0..n {
            let mut outgoing = Vec::new();
            #[allow(clippy::needless_range_loop)] // node id v is the protagonist, not the inbox
            for v in 0..total {
                if !net.alive(v) {
                    continue;
                }
                let succ = space.rotate_left(v as u64) as usize;
                // Launch the probe in the first round.
                if net.stats().rounds == 0 {
                    outgoing.push((
                        v,
                        succ,
                        Msg::Probe {
                            origin: v,
                            members: vec![v],
                        },
                    ));
                }
                // Forward probes received last round (unless they are home).
                for msg in &inboxes[v] {
                    if let Msg::Probe { origin, members } = msg {
                        if *origin == v {
                            continue;
                        }
                        let mut members = members.clone();
                        members.push(v);
                        outgoing.push((
                            v,
                            succ,
                            Msg::Probe {
                                origin: *origin,
                                members,
                            },
                        ));
                    }
                }
            }
            // Record probes that have come home before the exchange wipes them.
            for (v, inbox) in inboxes.iter().enumerate() {
                for msg in inbox {
                    if let Msg::Probe { origin, members } = msg {
                        if *origin == v {
                            states[v].necklace_alive = true;
                            states[v].necklace = members.clone();
                        }
                    }
                }
            }
            inboxes = net.exchange(outgoing);
        }
        // Final sweep for probes that returned on the last round.
        for (v, inbox) in inboxes.iter().enumerate() {
            for msg in inbox {
                if let Msg::Probe { origin, members } = msg {
                    if *origin == v {
                        states[v].necklace_alive = true;
                        states[v].necklace = members.clone();
                    }
                }
            }
        }
        rounds.probe = n;

        // ------------------------------------------------------------------
        // Phase 2: broadcast from the root (K rounds + 1 quiescent round).
        // ------------------------------------------------------------------
        let mut broadcast_round = 0usize;
        if states[root].necklace_alive {
            states[root].level = Some(0);
            let mut frontier = vec![root];
            loop {
                broadcast_round += 1;
                let mut outgoing = Vec::new();
                for &v in &frontier {
                    g.visit_successors(v, |u| {
                        outgoing.push((v, u, Msg::Token { sender: v }));
                    });
                }
                if outgoing.is_empty() {
                    break;
                }
                let delivered = net.exchange(outgoing);
                let mut next = Vec::new();
                for (v, inbox) in delivered.iter().enumerate() {
                    if !states[v].necklace_alive || states[v].level.is_some() {
                        continue;
                    }
                    let mut best_sender: Option<usize> = None;
                    for msg in inbox {
                        if let Msg::Token { sender } = msg {
                            best_sender = Some(best_sender.map_or(*sender, |b| b.min(*sender)));
                        }
                    }
                    if let Some(parent) = best_sender {
                        states[v].level = Some(broadcast_round);
                        states[v].parent = Some(parent);
                        next.push(v);
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
        }
        rounds.broadcast = broadcast_round;
        rounds.broadcast_depth = states.iter().filter_map(|s| s.level).max().unwrap_or(0);

        // ------------------------------------------------------------------
        // Phase 3: necklace-level record sharing (n rounds).
        // ------------------------------------------------------------------
        for (v, state) in states.iter_mut().enumerate() {
            if state.necklace_alive {
                if let Some(level) = state.level {
                    state
                        .records
                        .insert(v, (level, state.parent.unwrap_or(usize::MAX)));
                }
            }
        }
        for _ in 0..n {
            let mut outgoing = Vec::new();
            for (v, state) in states.iter().enumerate() {
                if !net.alive(v) || !state.necklace_alive {
                    continue;
                }
                let succ = space.rotate_left(v as u64) as usize;
                let records: Vec<(usize, usize, usize)> = state
                    .records
                    .iter()
                    .map(|(&node, &(level, parent))| (node, level, parent))
                    .collect();
                outgoing.push((v, succ, Msg::Share { records }));
            }
            let delivered = net.exchange(outgoing);
            for (v, inbox) in delivered.iter().enumerate() {
                for msg in inbox {
                    if let Msg::Share { records } = msg {
                        for &(node, level, parent) in records {
                            states[v].records.insert(node, (level, parent));
                        }
                    }
                }
            }
        }
        rounds.share = n;

        // Local step 1.2: pick Y, the tree label w and the parent necklace.
        self.local_tree_labels(&mut states, root, d);

        // ------------------------------------------------------------------
        // Phase 4: w-group formation (1 announcement round + n circulation).
        // ------------------------------------------------------------------
        let mut outgoing = Vec::new();
        for (v, state) in states.iter().enumerate() {
            if !net.alive(v) || !state.necklace_alive {
                continue;
            }
            let (Some(label), Some(parent_rep)) = (state.tree_label, state.parent_rep) else {
                continue;
            };
            if v as u64 % suffix_count != label {
                continue; // only the node with suffix w announces
            }
            let member_rep = rep_of(v);
            g.visit_successors(v, |u| {
                outgoing.push((
                    v,
                    u,
                    Msg::Announce {
                        label,
                        member_rep,
                        parent_rep,
                    },
                ));
            });
        }
        let delivered = net.exchange(outgoing);
        // Absorb announcements relevant to the receiver's necklace.
        for (v, inbox) in delivered.iter().enumerate() {
            if !states[v].necklace_alive {
                continue;
            }
            let my_rep = rep_of(v);
            for msg in inbox {
                if let Msg::Announce {
                    label,
                    member_rep,
                    parent_rep,
                } = *msg
                {
                    let i_am_parent = my_rep == parent_rep;
                    let i_am_sibling = states[v].tree_label == Some(label)
                        && states[v].parent_rep == Some(parent_rep);
                    if i_am_parent || i_am_sibling {
                        let entry = states[v].groups.entry(label).or_default();
                        entry.insert(member_rep);
                        entry.insert(parent_rep);
                        entry.insert(my_rep);
                    }
                }
            }
        }
        // Circulate group knowledge around each necklace.
        for _ in 0..n {
            let mut outgoing = Vec::new();
            for (v, state) in states.iter().enumerate() {
                if !net.alive(v) || !state.necklace_alive {
                    continue;
                }
                let succ = space.rotate_left(v as u64) as usize;
                let items: Vec<(u64, usize, usize)> = state
                    .groups
                    .iter()
                    .flat_map(|(&label, reps)| reps.iter().map(move |&r| (label, r, r)))
                    .collect();
                outgoing.push((v, succ, Msg::Circulate { items }));
            }
            let delivered = net.exchange(outgoing);
            for (v, inbox) in delivered.iter().enumerate() {
                for msg in inbox {
                    if let Msg::Circulate { items } = msg {
                        for &(label, rep, _) in items {
                            states[v].groups.entry(label).or_default().insert(rep);
                        }
                    }
                }
            }
        }
        rounds.group = n + 1;

        // ------------------------------------------------------------------
        // Phase 5: local successor computation (no communication).
        // ------------------------------------------------------------------
        self.local_successors(&mut states);

        rounds.total = rounds.probe + rounds.broadcast + rounds.share + rounds.group;

        // Per-level receiver counts of the broadcast phase (the protocol
        // twin of the centralized forward-level histogram).
        let broadcast_level_counts = level_histogram(&states);

        // Trace the cycle from the root.
        let cycle = trace_cycle(&states, root, total);

        DistributedOutcome {
            root,
            cycle,
            rounds,
            network: net.stats(),
            trace: net.trace().to_vec(),
            broadcast_level_counts,
            chaos: false,
        }
    }

    /// Runs the protocol through the chaos fabric ([`ChaosConfig`]:
    /// message drop, duplication, bounded delay), rooted at the same
    /// processor the centralized algorithm would pick.
    ///
    /// The chaos variant hardens each phase by **retry with timeout and
    /// round resynchronization**: every node keeps re-sending its current
    /// knowledge each round (probes and their relay caches, its broadcast
    /// level, its record set, its group facts), receivers fold messages
    /// with idempotent min-/union-updates, and a phase ends only after the
    /// global state has been quiescent for `max_delay + 12` consecutive
    /// rounds (so a lost message is re-offered next round and a delayed
    /// one cannot slip in after the phase closes). Broadcast tokens carry
    /// their sender's level explicitly ([`Msg::TokenL`]) because receipt
    /// rounds no longer encode BFS distance under delay.
    ///
    /// The fixpoint of each phase equals the perfect-fabric phase result,
    /// so the outcome's root, cycle and level histogram are bit-identical
    /// to [`DistributedFfc::run`] — which
    /// [`crate::online::verify_against_maintainer`] asserts — while round
    /// and message counts reflect the retries ([`DistributedOutcome::chaos`]
    /// tells the harness to skip the per-round identities).
    #[must_use]
    pub fn run_chaos(&self, faulty_nodes: &[usize], cfg: ChaosConfig) -> DistributedOutcome {
        let mask = self.reference.faulty_necklace_mask(faulty_nodes);
        let root = self
            .reference
            .pick_root(self.reference.default_root(), &mask);
        self.run_chaos_from(faulty_nodes, root, cfg)
    }

    /// [`DistributedFfc::run_chaos`] rooted at (the necklace
    /// representative of) `root`.
    #[must_use]
    pub fn run_chaos_from(
        &self,
        faulty_nodes: &[usize],
        root: usize,
        cfg: ChaosConfig,
    ) -> DistributedOutcome {
        let g = &self.graph;
        let space = g.space();
        let d = space.d();
        let n = space.n() as usize;
        let suffix_count = space.msd_place();
        let total = g.len();
        let rep_of = |v: usize| self.reference.representative_of(v);
        let root = rep_of(root);

        let faults = FaultSet::from_nodes(faulty_nodes.iter().copied());
        let mut net = Network::new(g, &faults).with_trace().with_chaos(cfg);
        let mut states: Vec<NodeState> = (0..total).map(|_| NodeState::default()).collect();
        let mut rounds = DistributedRounds::default();
        let mut pending: Vec<(usize, usize, Msg)> = Vec::new();
        // A phase ends after this many rounds without any state change:
        // long enough that every delayed copy has matured and a dropped
        // message has been re-offered many times (false-stall probability
        // is at most drop^patience per needed edge).
        let patience = cfg.max_delay + 12;
        // Backstop against a pathological chaos stream; generous next to
        // the perfect protocol's K + 3n + 1 rounds.
        let cap = 60 * (n + 1) + 240;

        // Closes a phase: expire whatever the fabric still holds so the
        // global conservation law is restored at every phase boundary.
        fn close_phase<T: Topology>(
            net: &mut Network<'_, T>,
            pending: &mut Vec<(usize, usize, Msg)>,
        ) {
            net.note_expired(pending.len() as u64);
            pending.clear();
        }

        // ------------------------------------------------------------------
        // Phase 1: necklace probe, continuously re-launched and relayed.
        // ------------------------------------------------------------------
        // relay caches: origin -> members accumulated up to this node.
        let mut probe_relay: Vec<BTreeMap<usize, Vec<usize>>> =
            (0..total).map(|_| BTreeMap::new()).collect();
        let mut quiet = 0usize;
        let mut used = 0usize;
        while quiet < patience && used < cap {
            let mut outgoing = Vec::new();
            for v in 0..total {
                if !net.alive(v) {
                    continue;
                }
                let succ = space.rotate_left(v as u64) as usize;
                if !states[v].necklace_alive {
                    outgoing.push((
                        v,
                        succ,
                        Msg::Probe {
                            origin: v,
                            members: vec![v],
                        },
                    ));
                }
                for (&origin, members) in &probe_relay[v] {
                    outgoing.push((
                        v,
                        succ,
                        Msg::Probe {
                            origin,
                            members: members.clone(),
                        },
                    ));
                }
            }
            let delivered = net.exchange_chaos(outgoing, &mut pending);
            used += 1;
            let mut changed = false;
            for (v, inbox) in delivered.iter().enumerate() {
                for msg in inbox {
                    if let Msg::Probe { origin, members } = msg {
                        if *origin == v {
                            if !states[v].necklace_alive {
                                states[v].necklace_alive = true;
                                states[v].necklace = members.clone();
                                changed = true;
                            }
                        } else if !probe_relay[v].contains_key(origin) {
                            let mut members = members.clone();
                            members.push(v);
                            probe_relay[v].insert(*origin, members);
                            changed = true;
                        }
                    }
                }
            }
            quiet = if changed { 0 } else { quiet + 1 };
        }
        close_phase(&mut net, &mut pending);
        rounds.probe = used;

        // ------------------------------------------------------------------
        // Phase 2: broadcast with explicit levels, re-sent every round.
        // ------------------------------------------------------------------
        if states[root].necklace_alive {
            states[root].level = Some(0);
        }
        let mut quiet = 0usize;
        let mut used = 0usize;
        while quiet < patience && used < cap {
            let mut outgoing = Vec::new();
            for (v, state) in states.iter().enumerate() {
                if !net.alive(v) || !state.necklace_alive {
                    continue;
                }
                if let Some(level) = state.level {
                    g.visit_successors(v, |u| {
                        outgoing.push((v, u, Msg::TokenL { sender: v, level }));
                    });
                }
            }
            if outgoing.is_empty() && pending.is_empty() {
                break; // dead root: nothing will ever flow
            }
            let delivered = net.exchange_chaos(outgoing, &mut pending);
            used += 1;
            let mut changed = false;
            for (v, inbox) in delivered.iter().enumerate() {
                if !states[v].necklace_alive || v == root {
                    continue;
                }
                for msg in inbox {
                    if let Msg::TokenL { sender, level } = *msg {
                        let cand = level + 1;
                        match states[v].level {
                            Some(cur) if cur < cand => {}
                            Some(cur) if cur == cand => {
                                // Same level: the parent is the minimal
                                // in-neighbour one level up, min-folded.
                                if states[v].parent.is_none_or(|p| sender < p) {
                                    states[v].parent = Some(sender);
                                    changed = true;
                                }
                            }
                            _ => {
                                states[v].level = Some(cand);
                                states[v].parent = Some(sender);
                                changed = true;
                            }
                        }
                    }
                }
            }
            quiet = if changed { 0 } else { quiet + 1 };
        }
        close_phase(&mut net, &mut pending);
        rounds.broadcast = used;
        rounds.broadcast_depth = states.iter().filter_map(|s| s.level).max().unwrap_or(0);

        // ------------------------------------------------------------------
        // Phase 3: necklace-level record sharing as a grow-only set union.
        // ------------------------------------------------------------------
        for (v, state) in states.iter_mut().enumerate() {
            if state.necklace_alive {
                if let Some(level) = state.level {
                    state
                        .records
                        .insert(v, (level, state.parent.unwrap_or(usize::MAX)));
                }
            }
        }
        let mut quiet = 0usize;
        let mut used = 0usize;
        while quiet < patience && used < cap {
            let mut outgoing = Vec::new();
            for (v, state) in states.iter().enumerate() {
                if !net.alive(v) || !state.necklace_alive {
                    continue;
                }
                let succ = space.rotate_left(v as u64) as usize;
                let records: Vec<(usize, usize, usize)> = state
                    .records
                    .iter()
                    .map(|(&node, &(level, parent))| (node, level, parent))
                    .collect();
                outgoing.push((v, succ, Msg::Share { records }));
            }
            let delivered = net.exchange_chaos(outgoing, &mut pending);
            used += 1;
            let mut changed = false;
            for (v, inbox) in delivered.iter().enumerate() {
                for msg in inbox {
                    if let Msg::Share { records } = msg {
                        for &(node, level, parent) in records {
                            if states[v].records.insert(node, (level, parent)).is_none() {
                                changed = true;
                            }
                        }
                    }
                }
            }
            quiet = if changed { 0 } else { quiet + 1 };
        }
        close_phase(&mut net, &mut pending);
        rounds.share = used;

        // Local step 1.2, unchanged: the shared records have converged to
        // the perfect-fabric fixpoint.
        self.local_tree_labels(&mut states, root, d);

        // ------------------------------------------------------------------
        // Phase 4: w-group formation — announcements and circulation are
        // both re-sent every round and folded as set unions.
        // ------------------------------------------------------------------
        let mut quiet = 0usize;
        let mut used = 0usize;
        while quiet < patience && used < cap {
            let mut outgoing = Vec::new();
            for (v, state) in states.iter().enumerate() {
                if !net.alive(v) || !state.necklace_alive {
                    continue;
                }
                if let (Some(label), Some(parent_rep)) = (state.tree_label, state.parent_rep) {
                    if v as u64 % suffix_count == label {
                        let member_rep = rep_of(v);
                        g.visit_successors(v, |u| {
                            outgoing.push((
                                v,
                                u,
                                Msg::Announce {
                                    label,
                                    member_rep,
                                    parent_rep,
                                },
                            ));
                        });
                    }
                }
                let items: Vec<(u64, usize, usize)> = state
                    .groups
                    .iter()
                    .flat_map(|(&label, reps)| reps.iter().map(move |&r| (label, r, r)))
                    .collect();
                if !items.is_empty() {
                    let succ = space.rotate_left(v as u64) as usize;
                    outgoing.push((v, succ, Msg::Circulate { items }));
                }
            }
            if outgoing.is_empty() && pending.is_empty() {
                break; // no tree edges at all (e.g. root-only component)
            }
            let delivered = net.exchange_chaos(outgoing, &mut pending);
            used += 1;
            let mut changed = false;
            for (v, inbox) in delivered.iter().enumerate() {
                if !states[v].necklace_alive {
                    continue;
                }
                let my_rep = rep_of(v);
                for msg in inbox {
                    match msg {
                        Msg::Announce {
                            label,
                            member_rep,
                            parent_rep,
                        } => {
                            let i_am_parent = my_rep == *parent_rep;
                            let i_am_sibling = states[v].tree_label == Some(*label)
                                && states[v].parent_rep == Some(*parent_rep);
                            if i_am_parent || i_am_sibling {
                                let entry = states[v].groups.entry(*label).or_default();
                                changed |= entry.insert(*member_rep);
                                changed |= entry.insert(*parent_rep);
                                changed |= entry.insert(my_rep);
                            }
                        }
                        Msg::Circulate { items } => {
                            for &(label, rep, _) in items {
                                changed |= states[v].groups.entry(label).or_default().insert(rep);
                            }
                        }
                        _ => {}
                    }
                }
            }
            quiet = if changed { 0 } else { quiet + 1 };
        }
        close_phase(&mut net, &mut pending);
        rounds.group = used;

        // Phase 5: local successor computation (no communication).
        self.local_successors(&mut states);

        rounds.total = rounds.probe + rounds.broadcast + rounds.share + rounds.group;
        let broadcast_level_counts = level_histogram(&states);
        let cycle = trace_cycle(&states, root, total);

        DistributedOutcome {
            root,
            cycle,
            rounds,
            network: net.stats(),
            trace: net.trace().to_vec(),
            broadcast_level_counts,
            chaos: true,
        }
    }

    /// Local step 1.2, shared by the perfect and chaos runners: from the
    /// shared necklace records, each node of a non-root live necklace
    /// derives the earliest-reached node Y, the tree label w = Y div d and
    /// the representative of the parent necklace.
    fn local_tree_labels(&self, states: &mut [NodeState], root: usize, d: u64) {
        let rep_of = |v: usize| self.reference.representative_of(v);
        let root_rep = rep_of(root);
        #[allow(clippy::needless_range_loop)] // reads and writes disjoint fields of states[v]
        for v in 0..states.len() {
            if !states[v].necklace_alive || states[v].level.is_none() {
                continue;
            }
            let my_rep = rep_of(v);
            if my_rep == root_rep {
                continue; // the root necklace has no tree edge
            }
            let chosen = states[v]
                .records
                .iter()
                .min_by_key(|(&node, &(level, _))| (level, node))
                .map(|(&node, &(_, parent))| (node, parent));
            if let Some((y, parent)) = chosen {
                states[v].tree_label = Some(y as u64 / d);
                states[v].parent_rep = Some(rep_of(parent));
            }
        }
    }

    /// Phase 5, shared by the perfect and chaos runners: each node decides
    /// locally whether to leave its necklace through the w-edge of D or to
    /// follow its necklace successor (Step 3).
    fn local_successors(&self, states: &mut [NodeState]) {
        let space = self.graph.space();
        let d = space.d();
        let suffix_count = space.msd_place();
        let rep_of = |v: usize| self.reference.representative_of(v);
        #[allow(clippy::needless_range_loop)] // reads and writes disjoint fields of states[v]
        for v in 0..states.len() {
            if !states[v].necklace_alive || states[v].level.is_none() {
                continue;
            }
            let w = v as u64 % suffix_count;
            let my_rep = rep_of(v);
            let successor = match states[v].groups.get(&w) {
                Some(members) if members.contains(&my_rep) => {
                    // Leave through the w-edge of D: next member in
                    // representative order, wrapping around.
                    let ordered: Vec<usize> = members.iter().copied().collect();
                    let idx = ordered
                        .iter()
                        .position(|&r| r == my_rep)
                        .expect("member set contains self");
                    let target = ordered[(idx + 1) % ordered.len()];
                    (0..d)
                        .map(|beta| (beta, beta * suffix_count + w))
                        .find(|&(_, beta_w)| rep_of(beta_w as usize) == target)
                        .map(|(beta, _)| (w * d + beta) as usize)
                        .expect("the target necklace contains a node of the form βw")
                }
                _ => space.rotate_left(v as u64) as usize,
            };
            states[v].successor = Some(successor);
        }
    }
}

/// Per-level receiver counts of the broadcast phase (the protocol twin of
/// the centralized forward-level histogram).
fn level_histogram(states: &[NodeState]) -> Vec<usize> {
    let mut counts = Vec::new();
    for state in states {
        if let Some(level) = state.level {
            if counts.len() <= level {
                counts.resize(level + 1, 0usize);
            }
            counts[level] += 1;
        }
    }
    counts
}

/// Follows successor pointers from the root; returns the cycle if the walk
/// closes back at the root without repeating any node.
fn trace_cycle(states: &[NodeState], root: usize, total: usize) -> Option<Vec<usize>> {
    let mut cycle = Vec::new();
    let mut seen = vec![false; total];
    let mut v = root;
    loop {
        if seen[v] {
            return None;
        }
        seen[v] = true;
        cycle.push(v);
        v = states[v].successor?;
        if v == root {
            return Some(cycle);
        }
        if cycle.len() > total {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::is_cycle;

    fn compare_with_centralized(d: u64, n: u32, faults: &[usize]) -> DistributedOutcome {
        let runner = DistributedFfc::new(d, n);
        let outcome = runner.run(faults);
        let reference = runner.reference().embed(faults);
        let cycle = outcome
            .cycle
            .clone()
            .expect("distributed protocol must close the cycle");
        assert_eq!(
            cycle.len(),
            reference.cycle.len(),
            "distributed and centralized cycle lengths differ (d={d}, n={n})"
        );
        assert_eq!(
            cycle, reference.cycle,
            "distributed cycle deviates from centralized (d={d}, n={n})"
        );
        assert_eq!(outcome.rounds.broadcast_depth, reference.eccentricity);
        outcome
    }

    #[test]
    fn matches_centralized_without_faults() {
        for (d, n) in [(2u64, 4u32), (3, 3), (4, 2)] {
            let out = compare_with_centralized(d, n, &[]);
            assert_eq!(out.rounds.probe, n as usize);
        }
    }

    #[test]
    fn matches_centralized_with_example_2_1_faults() {
        let g = DeBruijn::new(3, 3);
        let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
        let out = compare_with_centralized(3, 3, &faults);
        assert_eq!(out.cycle.unwrap().len(), 21);
    }

    #[test]
    fn matches_centralized_under_guaranteed_fault_loads() {
        for (d, n) in [(4u64, 3u32), (5, 2), (4, 2)] {
            let space = dbg_algebra::words::WordSpace::new(d, n);
            for f in 1..=(d - 2) as usize {
                let faults: Vec<usize> = (0..f as u64)
                    .map(|a| {
                        let mut digits = vec![a; n as usize];
                        digits[n as usize - 1] = d - 1;
                        space.from_digits(&digits) as usize
                    })
                    .collect();
                let out = compare_with_centralized(d, n, &faults);
                // O(K + n) round bound: K ≤ 2n for f ≤ d − 2.
                assert!(out.rounds.total <= 2 * n as usize + 3 * n as usize + 2);
            }
        }
    }

    #[test]
    fn round_budget_is_k_plus_3n_plus_1() {
        let out = compare_with_centralized(2, 6, &[]);
        let n = 6usize;
        // broadcast uses depth+1 rounds (the last one detects quiescence).
        assert!(out.rounds.broadcast <= out.rounds.broadcast_depth + 1);
        assert_eq!(
            out.rounds.total,
            out.rounds.probe + out.rounds.broadcast + out.rounds.share + out.rounds.group
        );
        assert_eq!(
            out.rounds.probe + out.rounds.share + out.rounds.group,
            3 * n + 1
        );
    }

    #[test]
    fn cycle_is_fault_free_and_valid() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let runner = DistributedFfc::new(2, 7);
        let g = runner.graph();
        for _ in 0..5 {
            let fault = rng.gen_range(0..g.len());
            let out = runner.run(&[fault]);
            let cycle = out.cycle.expect("single fault keeps B* strongly connected");
            assert!(is_cycle(g, &cycle));
            // No node of the faulty necklace appears.
            let space = g.space();
            let rep = space.canonical_rotation(fault as u64);
            assert!(cycle
                .iter()
                .all(|&v| space.canonical_rotation(v as u64) != rep));
        }
    }

    #[test]
    fn dead_root_component_reports_no_cycle_gracefully() {
        // Fail every necklace except the root's own: the cycle degenerates
        // to the root necklace itself.
        let runner = DistributedFfc::new(2, 3);
        let g = runner.graph();
        let faults = vec![
            g.node("011").unwrap(),
            g.node("111").unwrap(),
            g.node("000").unwrap(),
        ];
        let out = runner.run(&faults);
        let cycle = out.cycle.expect("the root necklace survives");
        assert_eq!(cycle.len(), 3); // the necklace of 001
    }

    /// Exhaustive cross-implementation check: on every fault set of size
    /// ≤ 2, the distributed protocol, the centralized incremental engine
    /// (`RingMaintainer`, via the shared online harness — which also
    /// pins the protocol's per-round message counts against the
    /// maintainer's phase work), the centralized serial engine and the
    /// centralized **parallel** engine (`embed_into_parallel`, at a
    /// genuinely multi-threaded shard count) must all trace the identical
    /// cycle (same nodes, same order). Both B(2,5) and B(3,3) push past
    /// the f ≤ d−2 guarantee, so this also covers fault loads where B*
    /// needs a genuine component search.
    #[test]
    fn exhaustively_matches_centralized_on_small_fault_sets() {
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let runner = DistributedFfc::new(d, n);
            let total = runner.graph().len();
            let mut scratch = debruijn_core::EmbedScratch::new();
            let mut maint = debruijn_core::RingMaintainer::new();
            let mut ring = Vec::new();
            let mut fault_sets: Vec<Vec<usize>> = vec![Vec::new()];
            fault_sets.extend((0..total).map(|a| vec![a]));
            for a in 0..total {
                for b in (a + 1)..total {
                    fault_sets.push(vec![a, b]);
                }
            }
            for faults in &fault_sets {
                let distributed = runner.run(faults);
                // The shared harness covers root, ring bytes, broadcast
                // levels and per-round message counts against the
                // centralized maintainer…
                maint.reset(runner.reference(), faults).expect("in-range");
                crate::online::verify_against_maintainer(
                    &distributed,
                    runner.reference(),
                    &maint,
                    &mut ring,
                )
                .unwrap_or_else(|e| panic!("{faults:?} in B({d},{n}): {e}"));
                // …and the serial + parallel engines close the loop.
                let reference = runner.reference().embed(faults);
                assert_eq!(
                    reference.cycle, ring,
                    "serial engine differs for {faults:?} in B({d},{n})"
                );
                let parallel = runner
                    .reference()
                    .embed_into_parallel(&mut scratch, faults, 3);
                assert_eq!(parallel.root, reference.root, "{faults:?} in B({d},{n})");
                assert_eq!(
                    scratch.cycle(),
                    &ring[..],
                    "parallel engine deviates from the protocol for {faults:?} in B({d},{n})"
                );
            }
        }
    }

    /// The chaos-hardened protocol must converge bit-identically to the
    /// perfect-fabric run — same root, same cycle, same level histogram —
    /// under ≥10% message drop combined with duplication and delay, on
    /// fault loads both inside and past the d − 2 guarantee.
    #[test]
    fn chaos_run_converges_to_the_perfect_fabric_result() {
        let cfgs = [
            ChaosConfig::drop_only(0.10, 0xA11CE),
            ChaosConfig {
                drop: 0.15,
                duplicate: 0.10,
                max_delay: 2,
                seed: 0xB0B,
            },
            ChaosConfig {
                drop: 0.25,
                duplicate: 0.05,
                max_delay: 3,
                seed: 7,
            },
        ];
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let runner = DistributedFfc::new(d, n);
            let total = runner.graph().len();
            let fault_sets: Vec<Vec<usize>> = vec![
                vec![],
                vec![1],
                vec![total / 2],
                vec![1, total / 2],
                vec![0, 1, 2],
            ];
            for faults in &fault_sets {
                let perfect = runner.run(faults);
                for cfg in cfgs {
                    let chaotic = runner.run_chaos(faults, cfg);
                    assert!(chaotic.chaos);
                    assert_eq!(
                        chaotic.root, perfect.root,
                        "{faults:?} in B({d},{n}) under {cfg:?}"
                    );
                    assert_eq!(
                        chaotic.cycle, perfect.cycle,
                        "{faults:?} in B({d},{n}) under {cfg:?}"
                    );
                    assert_eq!(
                        chaotic.broadcast_level_counts, perfect.broadcast_level_counts,
                        "{faults:?} in B({d},{n}) under {cfg:?}"
                    );
                    let s = chaotic.network;
                    assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped);
                    assert!(s.messages_dropped > 0, "the adversary did nothing");
                }
            }
        }
    }

    /// Chaos runs are a pure function of the seed: replaying the same
    /// configuration reproduces the message accounting bit for bit.
    #[test]
    fn chaos_runs_are_deterministic() {
        let runner = DistributedFfc::new(3, 3);
        let cfg = ChaosConfig::default();
        let a = runner.run_chaos(&[5, 11], cfg);
        let b = runner.run_chaos(&[5, 11], cfg);
        assert_eq!(a.network, b.network);
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.rounds.total, b.rounds.total);
    }

    #[test]
    fn message_accounting_is_consistent() {
        let runner = DistributedFfc::new(3, 3);
        let out = runner.run(&[]);
        let s = out.network;
        assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped);
        assert_eq!(s.messages_dropped, 0, "no faults, nothing to drop");
        assert!(s.rounds >= out.rounds.total);
    }
}
