//! Synchronous message-passing simulation of de Bruijn networks and the
//! distributed fault-free-cycle protocol (Section 2.4 of Rowley & Bose).
//!
//! The thesis describes the FFC algorithm twice: as a graph construction
//! (Chapter 2, reproduced in `debruijn-core::ffc`) and as a *network-level
//! distributed algorithm* in which every processor only ever uses its own
//! state and the messages it receives from direct neighbours, finishing in
//! O(K + n) communication rounds. This crate builds the second view:
//!
//! * [`network`] — a synchronous round-based message-passing fabric over
//!   any [`Topology`](dbg_graph::Topology), with node and link fault
//!   injection, edge-validity enforcement and message accounting.
//! * [`ffc_distributed`] — the five-phase distributed FFC protocol
//!   (necklace probing, broadcast, necklace-level tree construction,
//!   w-group cycling, local successor computation), whose output is checked
//!   against the centralized algorithm.
//! * [`ring`] — ring-structured collective communication (all-to-all
//!   broadcast over one embedded ring, or split across several edge-disjoint
//!   rings), the workload that motivates the ring embeddings in the first
//!   place (Chapter 3 introduction).
//! * [`online`] — the online fault-injection protocol: a long-lived
//!   session absorbing a stream of inject/repair events, each triggering
//!   one distributed reconfiguration whose per-round message counts are
//!   verified against the centralized incremental engine
//!   ([`RingMaintainer`](debruijn_core::RingMaintainer)) by a shared
//!   harness.
//! * [`sweep`] — distributed Monte-Carlo sweeps driven by the centralized
//!   batch engine's deterministic [`SweepPlan`](debruijn_core::SweepPlan)
//!   seeding: a remote worker reconstructs any trial's fault set from
//!   `(plan, trial index)` alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ffc_distributed;
pub mod network;
pub mod online;
pub mod ring;
pub mod sweep;

pub use ffc_distributed::{DistributedFfc, DistributedOutcome};
pub use network::{ChaosConfig, Network, NetworkStats, RoundTrace};
pub use online::{verify_against_maintainer, OnlineEventCost, OnlineFfc};
pub use ring::{all_to_all_broadcast, split_all_to_all_broadcast, RingBroadcastReport};
pub use sweep::{distributed_sweep, distributed_sweep_range, DistributedTrial};
