// A deliberately-bad fixture: atomic orderings with no audit header.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(x: &AtomicU64) -> u64 {
    x.fetch_add(1, Ordering::Relaxed)
}
