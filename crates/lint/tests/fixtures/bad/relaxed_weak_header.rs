//! ATOMICS: Relaxed everywhere, because it benchmarked faster.
//!
//! (A deliberately-bad fixture: the header names Relaxed but declares no
//! protocol that justifies it, and the second load below is not audited
//! at all.)
use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(x: &AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}

pub fn sync_read(x: &AtomicU64) -> u64 {
    x.load(Ordering::Acquire)
}
