// A deliberately-bad fixture: three unsafe sites with no SAFETY comment.
pub struct Wrapper(*const u8);

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

pub fn erase(p: *const u8) -> *const u8 {
    // An ordinary comment is not a safety argument.
    unsafe { std::mem::transmute::<*const u8, *const u8>(p) }
}
