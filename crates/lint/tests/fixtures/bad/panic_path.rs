//! A deliberately-bad fixture standing in for a repair/serve-path module:
//! four naked panic-family sites, one justified site, and a test module
//! (the last two must NOT be flagged).

pub fn repair(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("repair input");
    if a > b {
        panic!("inconsistent");
    }
    todo!("finish the repair path")
}

pub fn justified(x: Option<u32>) -> u32 {
    // PANIC-OK: `x` is populated by `repair` before every call, checked
    // by the exhaustive differential suite.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
