//! A known-good crate root: declares the required forbid.
#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
