//! A known-good fixture: every rule satisfied at once.
//!
//! ATOMICS: this module's cells follow a single-writer protocol — one
//! owner thread stores with Relaxed, readers join it through the
//! Acquire/Release pair on the ready flag (AcqRel on the RMW), SeqCst
//! only in the shutdown edge.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(cell: &AtomicU64, ready: &AtomicBool, v: u64) {
    cell.store(v, Ordering::Relaxed);
    ready.store(true, Ordering::Release);
}

pub fn consume(cell: &AtomicU64, ready: &AtomicBool) -> Option<u64> {
    if ready.swap(false, Ordering::AcqRel) {
        Some(cell.load(Ordering::Relaxed))
    } else {
        None
    }
}

pub fn shutdown(ready: &AtomicBool) {
    ready.store(false, Ordering::SeqCst);
}

pub fn acquire_read(ready: &AtomicBool) -> bool {
    ready.load(Ordering::Acquire)
}

/// A justified unsafe site.
pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees the slice holds at least one
    // byte, so the unchecked read is in bounds.
    unsafe { *bytes.get_unchecked(0) }
}

pub fn no_panic(x: Option<u32>) -> u32 {
    // PANIC-OK: callers construct `x` as Some by contract; pinned by the
    // fixture test.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_expect() {
        assert_eq!(Some(7).unwrap(), 7);
        let v: Result<u32, ()> = Ok(7);
        assert_eq!(v.expect("ok"), 7);
    }
}
