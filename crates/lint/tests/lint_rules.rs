//! Self-tests for `debruijn-lint`: every rule is demonstrated live by a
//! known-bad fixture asserted to produce exactly the expected
//! diagnostics, the known-good corpus is asserted clean, and the real
//! workspace is asserted clean under the checked-in policy (the same
//! gate CI runs).

use debruijn_lint::{lint_file, lint_workspace, Config, Rule};
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let contents = std::fs::read_to_string(&path).expect("fixture readable");
    (PathBuf::from(rel), contents)
}

/// Lints one fixture and returns its `(rule, line)` pairs, sorted.
fn findings(rel: &str, config: &Config) -> Vec<(Rule, usize)> {
    let (path, contents) = fixture(rel);
    let mut out: Vec<(Rule, usize)> = lint_file(&path, &contents, config)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    out.sort();
    out
}

/// A config that points the path-scoped rules at the fixture names.
fn fixture_config() -> Config {
    let mut c = Config::repo_default();
    c.no_panic_modules = vec![
        PathBuf::from("panic_path.rs"),
        PathBuf::from("clean_module.rs"),
    ];
    c
}

#[test]
fn missing_safety_comment_fires_per_unsafe_site() {
    assert_eq!(
        findings("bad/missing_safety.rs", &fixture_config()),
        vec![
            (Rule::SafetyComment, 5),
            (Rule::SafetyComment, 8),
            (Rule::SafetyComment, 12),
        ]
    );
}

#[test]
fn ordering_without_header_fires() {
    assert_eq!(
        findings("bad/relaxed_no_header.rs", &fixture_config()),
        vec![(Rule::AtomicsHeader, 5)]
    );
}

#[test]
fn weak_header_fires_for_unlisted_ordering_and_unjustified_relaxed() {
    assert_eq!(
        findings("bad/relaxed_weak_header.rs", &fixture_config()),
        vec![(Rule::AtomicsHeader, 9), (Rule::AtomicsHeader, 13)]
    );
}

#[test]
fn crate_root_without_forbid_fires() {
    assert_eq!(
        findings("bad/missing_forbid/src/lib.rs", &fixture_config()),
        vec![(Rule::ForbidUnsafe, 1)]
    );
}

#[test]
fn panic_family_on_the_repair_path_fires() {
    assert_eq!(
        findings("bad/panic_path.rs", &fixture_config()),
        vec![
            (Rule::NoPanicPath, 6),
            (Rule::NoPanicPath, 7),
            (Rule::NoPanicPath, 9),
            (Rule::NoPanicPath, 11),
        ]
    );
}

#[test]
fn allowlisted_crate_root_may_omit_forbid() {
    let mut config = fixture_config();
    config
        .unsafe_allowlist
        .push(PathBuf::from("bad/missing_forbid/src/lib.rs"));
    assert_eq!(findings("bad/missing_forbid/src/lib.rs", &config), vec![]);
}

#[test]
fn good_corpus_is_clean() {
    // clean_module.rs is linted AS a no-panic path module (the config
    // names it), so its PANIC-OK waiver and cfg(test) exemption are
    // exercised, not skipped.
    assert_eq!(findings("good/clean_module.rs", &fixture_config()), vec![]);
    assert_eq!(
        findings("good/forbidden/src/lib.rs", &fixture_config()),
        vec![]
    );
}

#[test]
fn real_workspace_is_clean_under_the_checked_in_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = lint_workspace(root, &Config::repo_default());
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
}
