//! The `debruijn-lint` binary: lints the workspace and exits non-zero on
//! any finding. Usage:
//!
//! ```text
//! debruijn-lint [--check] [--root <dir>]
//! ```
//!
//! `--check` is the CI spelling (identical behaviour — the lint always
//! gates); `--root` overrides the workspace root, which is otherwise
//! located by walking up from the current directory to the first
//! directory containing a `Cargo.toml` with a `[workspace]` section.

#![forbid(unsafe_code)]

use debruijn_lint::{lint_workspace, Config};
use std::path::PathBuf;
use std::process::ExitCode;

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return start,
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: debruijn-lint [--check] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        find_workspace_root(std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
    });
    let diags = lint_workspace(&root, &Config::repo_default());
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("debruijn-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!("debruijn-lint: {} error(s)", diags.len());
        ExitCode::FAILURE
    }
}
