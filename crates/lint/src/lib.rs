//! `debruijn-lint`: the workspace's concurrency-correctness lint.
//!
//! A deliberately lightweight line/token scanner (no syn, no registry
//! deps) that walks every `.rs` file of the workspace and enforces the
//! project invariants that `rustc`/clippy cannot see — the prose claims
//! the concurrent engine's safety rests on, pinned as hard CI errors:
//!
//! * **`safety-comment`** — every `unsafe` block/impl/fn must carry a
//!   `// SAFETY:` comment in the contiguous comment block directly above
//!   it (or trailing on the same line). An unexplained `unsafe` is an
//!   unreviewable one.
//! * **`atomics-header`** — every module that names an atomic memory
//!   ordering (`Ordering::Relaxed`, `Acquire`, `Release`, `AcqRel`,
//!   `SeqCst`) must carry a module-level `ATOMICS:` audit header whose
//!   block names **each** ordering the module uses and the protocol that
//!   justifies it. `Relaxed` is only legal in modules whose header
//!   declares a `barrier-phased` or `single-writer` protocol — those are
//!   the two disciplines under which a relaxed store is provably not a
//!   data-race-hiding shortcut (and the `racecheck` shadow detector
//!   executes exactly that claim, see `debruijn_core::bitreach`).
//! * **`forbid-unsafe`** — every crate root (`src/lib.rs`,
//!   `src/main.rs`, `src/bin/*.rs`) must declare
//!   `#![forbid(unsafe_code)]` unless the crate is on the explicit
//!   allowlist (`vendor/shardpool` only, whose lifetime-erasing job
//!   publication is the one audited `unsafe` island of the workspace).
//! * **`no-panic-path`** — in the repair/serve path modules
//!   (`ffc/session.rs`, `serve.rs`) the panic family (`.unwrap()`,
//!   `.expect(`, `panic!`, `todo!`) is forbidden outside `#[cfg(test)]`
//!   code: PR 6's contract is that the repair path returns typed errors,
//!   never unwinds. A site that is unreachable by construction may carry
//!   a `// PANIC-OK: <why>` justification on the same line (or in the
//!   comment block directly above) — the lint turns every such panic
//!   into an explicit, reviewable claim, exactly like `SAFETY:` does
//!   for `unsafe`.
//!
//! The scanner strips string literals and comments before matching code
//! tokens (so a log message containing `.unwrap(` or a doc sentence
//! mentioning `unsafe` never fires), and conversely searches only
//! comment text for the `SAFETY:` / `ATOMICS:` / `PANIC-OK:` markers.
//! Known limits (documented, fixture-pinned): nested block comments are
//! treated as one comment, and `#[cfg(test)]` detection assumes the
//! conventional trailing `mod tests { .. }` layout this repo uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` without an adjacent `SAFETY:` comment.
    SafetyComment,
    /// Atomic `Ordering::*` use without a covering `ATOMICS:` header.
    AtomicsHeader,
    /// Crate root without `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Panic-family call in a no-panic path module.
    NoPanicPath,
}

impl Rule {
    /// The stable id used in diagnostics and fixture assertions.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::AtomicsHeader => "atomics-header",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::NoPanicPath => "no-panic-path",
        }
    }
}

/// One lint finding: file, 1-based line, rule and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number the finding anchors to.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.path.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lint configuration: which crates may hold `unsafe`, which modules are
/// on the no-panic path, and which directories the walker skips.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate roots (relative paths) allowed to omit `#![forbid(unsafe_code)]`.
    pub unsafe_allowlist: Vec<PathBuf>,
    /// Path suffixes of modules where the panic family is forbidden.
    pub no_panic_modules: Vec<PathBuf>,
    /// Directory names / relative prefixes the walker skips.
    pub skip: Vec<PathBuf>,
}

impl Config {
    /// The repository's checked-in policy.
    #[must_use]
    pub fn repo_default() -> Self {
        Config {
            unsafe_allowlist: vec![PathBuf::from("vendor/shardpool/src/lib.rs")],
            no_panic_modules: vec![
                PathBuf::from("crates/core/src/ffc/session.rs"),
                PathBuf::from("crates/core/src/serve.rs"),
            ],
            skip: vec![
                PathBuf::from("target"),
                PathBuf::from(".git"),
                // Deliberately-bad lint fixtures.
                PathBuf::from("crates/lint/tests/fixtures"),
            ],
        }
    }
}

/// The atomic orderings the `atomics-header` rule tracks.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One preprocessed source line.
struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so token matching never fires inside
    /// literals or prose.
    code: String,
    /// Text of the line's comment (after `//`, `//!` or `///`), if any;
    /// for lines inside a block comment, the line's raw text.
    comment: Option<String>,
    /// The line holds nothing but comment (and whitespace).
    comment_only: bool,
    /// The line is a lone attribute (`#[...]` / `#![...]`).
    attr_only: bool,
}

/// Cross-line scanner state: inside a `/* */` comment or a multi-line
/// string literal.
#[derive(Default)]
struct ScanState {
    in_block: bool,
    in_string: bool,
}

/// Strips comments and literal contents from `raw`, threading the
/// in-block-comment / in-string state across lines. Returns the
/// preprocessed line.
fn preprocess(raw: &str, state: &mut ScanState) -> Line {
    let in_block = &mut state.in_block;
    let bytes = raw.as_bytes();
    let mut code = String::with_capacity(raw.len());
    let mut comment: Option<String> = None;
    let mut i = 0;
    if state.in_string {
        // Finish (or continue) the open string literal.
        loop {
            if i >= bytes.len() {
                return Line {
                    code,
                    comment: None,
                    comment_only: false,
                    attr_only: false,
                };
            }
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    code.push('"');
                    i += 1;
                    state.in_string = false;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    if *in_block {
        // Finish (or continue) the open block comment.
        match raw.find("*/") {
            Some(end) => {
                comment = Some(raw[..end].to_string());
                *in_block = false;
                i = end + 2;
            }
            None => {
                return Line {
                    code: String::new(),
                    comment: Some(raw.to_string()),
                    comment_only: true,
                    attr_only: false,
                };
            }
        }
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: everything after is comment text.
                let text = raw[i + 2..].trim_start_matches(['/', '!']).to_string();
                comment = Some(match comment {
                    Some(prev) => format!("{prev} {text}"),
                    None => text,
                });
                break;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => match raw[i + 2..].find("*/") {
                Some(rel) => {
                    let text = raw[i + 2..i + 2 + rel].to_string();
                    comment = Some(match comment {
                        Some(prev) => format!("{prev} {text}"),
                        None => text,
                    });
                    i += 2 + rel + 2;
                }
                None => {
                    comment = Some(raw[i + 2..].to_string());
                    *in_block = true;
                    break;
                }
            },
            '"' => {
                // String literal: keep delimiters, blank the contents.
                // A literal that the line does not close carries over to
                // the next line via `in_string`.
                code.push('"');
                i += 1;
                loop {
                    if i >= bytes.len() {
                        state.in_string = true;
                        break;
                    }
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            code.push('"');
                            i += 1;
                            state.in_string = false;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal is '\..' or 'x'.
                let is_escaped = i + 1 < bytes.len() && bytes[i + 1] == b'\\';
                let is_plain = i + 2 < bytes.len() && bytes[i + 2] == b'\'';
                if is_escaped || is_plain {
                    code.push_str("' '");
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    let code_trim = code.trim().to_string();
    let comment_only = code_trim.is_empty() && comment.is_some();
    let attr_only = code_trim.starts_with("#[") || code_trim.starts_with("#![");
    Line {
        code,
        comment,
        comment_only,
        attr_only,
    }
}

/// Whether `code` contains `needle` as a standalone word (non-identifier
/// characters, or the line boundary, on both sides).
fn has_word(code: &str, needle: &str) -> bool {
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Whether the contiguous comment/attribute block directly above line
/// `idx` (or the line's own comment) mentions `marker`.
fn block_above_mentions(lines: &[Line], idx: usize, marker: &str) -> bool {
    if let Some(c) = &lines[idx].comment {
        if c.contains(marker) {
            return true;
        }
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.comment_only {
            if l.comment.as_deref().is_some_and(|c| c.contains(marker)) {
                return true;
            }
        } else if !l.attr_only {
            break;
        }
    }
    false
}

/// Line ranges (0-based, inclusive start / exclusive end) covered by a
/// trailing-style `#[cfg(test)] mod .. { .. }` region.
fn test_regions(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.trim() == "#[cfg(test)]" {
            // Find the item the attribute decorates.
            let mut j = i + 1;
            while j < lines.len() && (lines[j].comment_only || lines[j].attr_only) {
                j += 1;
            }
            if j < lines.len() && lines[j].code.trim_start().starts_with("mod ") {
                // Brace-match from the mod header to the region's end.
                let mut depth = 0i64;
                let mut opened = false;
                let mut k = j;
                while k < lines.len() {
                    for c in lines[k].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    k += 1;
                    if opened && depth <= 0 {
                        break;
                    }
                }
                regions.push((i, k));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Lints one file's contents. `path` is the root-relative path used in
/// diagnostics and for the path-scoped rules.
#[must_use]
pub fn lint_file(path: &Path, contents: &str, config: &Config) -> Vec<Diagnostic> {
    let mut state = ScanState::default();
    let lines: Vec<Line> = contents
        .lines()
        .map(|raw| preprocess(raw, &mut state))
        .collect();
    let mut out = Vec::new();
    let diag = |line: usize, rule: Rule, message: String| Diagnostic {
        path: path.to_path_buf(),
        line,
        rule,
        message,
    };

    // --- safety-comment -------------------------------------------------
    for (i, l) in lines.iter().enumerate() {
        if has_word(&l.code, "unsafe") && !block_above_mentions(&lines, i, "SAFETY") {
            out.push(diag(
                i + 1,
                Rule::SafetyComment,
                "`unsafe` without a `// SAFETY:` comment directly above (or trailing) \
                 — state the invariant that makes this sound"
                    .to_string(),
            ));
        }
    }

    // --- atomics-header -------------------------------------------------
    let mut used: Vec<(&str, usize)> = Vec::new();
    for ord in ORDERINGS {
        let token = format!("Ordering::{ord}");
        for (i, l) in lines.iter().enumerate() {
            if has_word(&l.code, &token) {
                used.push((ord, i + 1));
                break;
            }
        }
    }
    if !used.is_empty() {
        // The audit block: the first ATOMICS: comment line plus the
        // contiguous comment lines that follow it.
        let header_at = lines
            .iter()
            .position(|l| l.comment.as_deref().is_some_and(|c| c.contains("ATOMICS:")));
        match header_at {
            None => out.push(diag(
                used[0].1,
                Rule::AtomicsHeader,
                format!(
                    "module uses Ordering::{} but has no `ATOMICS:` audit header \
                     naming the protocol that justifies its orderings",
                    used[0].0
                ),
            )),
            Some(h) => {
                let mut audit = String::new();
                for l in &lines[h..] {
                    match &l.comment {
                        Some(c) if l.comment_only || audit.is_empty() => {
                            audit.push_str(c);
                            audit.push(' ');
                        }
                        _ => break,
                    }
                }
                for &(ord, line) in &used {
                    if !audit.contains(ord) {
                        out.push(diag(
                            line,
                            Rule::AtomicsHeader,
                            format!(
                                "Ordering::{ord} is used but the `ATOMICS:` header does not \
                                 name {ord} — every ordering must be audited"
                            ),
                        ));
                    }
                }
                let relaxed = used.iter().find(|(o, _)| *o == "Relaxed");
                if let Some(&(_, line)) = relaxed {
                    if !audit.contains("barrier-phased") && !audit.contains("single-writer") {
                        out.push(diag(
                            line,
                            Rule::AtomicsHeader,
                            "Ordering::Relaxed is only legal under a declared `barrier-phased` \
                             or `single-writer` protocol — the ATOMICS: header names neither"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }

    // --- forbid-unsafe --------------------------------------------------
    let is_crate_root = path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || path
            .parent()
            .is_some_and(|p| p.ends_with("src/bin") && path.extension().is_some());
    if is_crate_root && !config.unsafe_allowlist.iter().any(|a| path.ends_with(a)) {
        let has_forbid = lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            out.push(diag(
                1,
                Rule::ForbidUnsafe,
                "crate root must declare #![forbid(unsafe_code)] (only allowlisted \
                 crates may hold unsafe code)"
                    .to_string(),
            ));
        }
    }

    // --- no-panic-path --------------------------------------------------
    if config.no_panic_modules.iter().any(|m| path.ends_with(m)) {
        let regions = test_regions(&lines);
        let in_tests = |i: usize| regions.iter().any(|&(a, b)| a <= i && i < b);
        let tokens = [".unwrap()", ".expect(", "panic!", "todo!"];
        for (i, l) in lines.iter().enumerate() {
            if in_tests(i) {
                continue;
            }
            for t in tokens {
                if l.code.contains(t) && !block_above_mentions(&lines, i, "PANIC-OK") {
                    out.push(diag(
                        i + 1,
                        Rule::NoPanicPath,
                        format!(
                            "`{t}` on the repair/serve path — return a typed error, or \
                             justify an unreachable-by-construction site with `// PANIC-OK:`"
                        ),
                    ));
                }
            }
        }
    }

    out
}

/// Recursively collects the `.rs` files under `root`, skipping the
/// configured directories, in sorted order.
fn collect_rs(root: &Path, config: &Config) -> Vec<PathBuf> {
    fn walk(dir: &Path, root: &Path, config: &Config, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        entries.sort();
        for p in entries {
            let rel = p.strip_prefix(root).unwrap_or(&p);
            if config
                .skip
                .iter()
                .any(|s| rel == s || p.file_name().is_some_and(|n| *s == *n))
            {
                continue;
            }
            if p.is_dir() {
                walk(&p, root, config, out);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, config, &mut out);
    out
}

/// Lints every `.rs` file under `root` and returns all diagnostics,
/// sorted by path and line.
#[must_use]
pub fn lint_workspace(root: &Path, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in collect_rs(root, config) {
        let Ok(contents) = std::fs::read_to_string(&p) else {
            continue;
        };
        let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
        out.extend(lint_file(&rel, &contents, config));
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}
