//! Sanity suite for the `racecheck` shadow race detector: a deliberate
//! two-writer conflict must fire, and the two legal patterns (writers
//! separated by a synchronisation edge, concurrent min-reductions) must
//! stay silent. Run with `cargo test -p dbg-core --features racecheck`.
#![cfg(feature = "racecheck")]
#![forbid(unsafe_code)]

use debruijn_core::bitreach::racecheck::sync_edge;
use debruijn_core::AtomicCells;
use std::sync::Mutex;

/// The detector keys on the process-global phase epoch, and any test in
/// this binary that exercises the engine bumps it; a bump landing between
/// a pair of deliberately conflicting writes would split them into
/// different epochs and mask the expected report. Serializing the tests
/// in this file keeps the injections deterministic.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f`, which is expected to panic with a racecheck report in a
/// spawned thread, with the default panic hook silenced so the expected
/// report does not spray a backtrace into the test output.
fn violation_message(f: impl FnOnce() -> Box<dyn std::any::Any + Send>) -> String {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let payload = f();
    std::panic::set_hook(prev);
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("racecheck panics carry a formatted message")
}

#[test]
fn second_store_from_another_thread_in_same_phase_is_caught() {
    let _g = lock();
    let mut cells = AtomicCells::default();
    cells.grow(4);
    cells.store(0, 1);
    let msg = violation_message(|| {
        std::thread::scope(|s| {
            s.spawn(|| cells.store(0, 2))
                .join()
                .expect_err("the second writer must trip the detector")
        })
    });
    assert!(msg.contains("racecheck:"), "unexpected panic: {msg}");
    assert!(
        msg.contains("single-writer-per-word-per-phase"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn store_then_fetch_min_from_another_thread_is_caught() {
    let _g = lock();
    let mut cells = AtomicCells::default();
    cells.grow(4);
    cells.store(2, 7);
    let msg = violation_message(|| {
        std::thread::scope(|s| {
            s.spawn(|| cells.fetch_min(2, 3))
                .join()
                .expect_err("a cross-writer store/min mix must trip the detector")
        })
    });
    assert!(msg.contains("racecheck:"), "unexpected panic: {msg}");
}

#[test]
fn writers_separated_by_a_sync_edge_are_legal() {
    let _g = lock();
    let mut cells = AtomicCells::default();
    cells.grow(4);
    cells.store(0, 1);
    sync_edge();
    std::thread::scope(|s| {
        s.spawn(|| cells.store(0, 2))
            .join()
            .expect("a phase-separated second writer is the sanctioned pattern");
    });
    assert_eq!(cells.load(0), 2);
}

#[test]
fn concurrent_fetch_min_reduction_is_legal() {
    let _g = lock();
    let mut cells = AtomicCells::default();
    cells.grow(1);
    cells.store(0, u64::MAX);
    sync_edge();
    let cells = &cells;
    std::thread::scope(|s| {
        for v in [41u64, 17, 29, 23] {
            s.spawn(move || cells.fetch_min(0, v));
        }
    });
    assert_eq!(cells.load(0), 17);
}

#[test]
fn one_writer_may_rewrite_a_word_within_a_phase() {
    let _g = lock();
    let mut cells = AtomicCells::default();
    cells.grow(2);
    cells.store(1, 1);
    cells.store(1, 2);
    cells.fetch_min(1, 0);
    assert_eq!(cells.load(1), 0);
}
