//! Validation helpers shared by tests, benchmarks and examples.
//!
//! A ring embedding with unit dilation and congestion is simply a simple
//! cycle of the (faulty) host graph, so "did the algorithm work?" always
//! reduces to a handful of checks collected here.

use std::collections::HashSet;

use dbg_graph::algo::cycles::{all_pairwise_edge_disjoint, is_cycle};
use dbg_graph::{DeBruijn, Topology};

/// Whether `cycle` is a simple cycle of B(d,n).
#[must_use]
pub fn is_debruijn_ring(d: u64, n: u32, cycle: &[usize]) -> bool {
    let g = DeBruijn::new(d, n);
    is_cycle(&g, cycle)
}

/// Whether `cycle` is a Hamiltonian cycle of B(d,n).
#[must_use]
pub fn is_debruijn_hamiltonian(d: u64, n: u32, cycle: &[usize]) -> bool {
    let g = DeBruijn::new(d, n);
    cycle.len() == g.len() && is_cycle(&g, cycle)
}

/// Whether the ring avoids every node in `faulty_nodes`.
#[must_use]
pub fn ring_avoids_nodes(cycle: &[usize], faulty_nodes: &[usize]) -> bool {
    let faults: HashSet<usize> = faulty_nodes.iter().copied().collect();
    cycle.iter().all(|v| !faults.contains(v))
}

/// Whether the ring uses none of the directed edges in `faulty_edges`.
#[must_use]
pub fn ring_avoids_edges(cycle: &[usize], faulty_edges: &[(usize, usize)]) -> bool {
    let faults: HashSet<(usize, usize)> = faulty_edges.iter().copied().collect();
    (0..cycle.len()).all(|i| !faults.contains(&(cycle[i], cycle[(i + 1) % cycle.len()])))
}

/// Whether every pair of cycles in the family is edge-disjoint.
#[must_use]
pub fn family_is_edge_disjoint(cycles: &[Vec<usize>]) -> bool {
    all_pairwise_edge_disjoint(cycles)
}

/// Whether `cycle` is a simple cycle of an arbitrary topology — re-exported
/// for callers that work with butterflies or hypercubes.
#[must_use]
pub fn is_ring_of<T: Topology + ?Sized>(graph: &T, cycle: &[usize]) -> bool {
    is_cycle(graph, cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debruijn_ring_checks() {
        // 000 → 001 → 010 → 100 → 000 is a 4-cycle of B(2,3).
        let g = DeBruijn::new(2, 3);
        let cycle = vec![
            g.node("000").unwrap(),
            g.node("001").unwrap(),
            g.node("010").unwrap(),
            g.node("100").unwrap(),
        ];
        assert!(is_debruijn_ring(2, 3, &cycle));
        assert!(!is_debruijn_hamiltonian(2, 3, &cycle));
        assert!(ring_avoids_nodes(&cycle, &[g.node("111").unwrap()]));
        assert!(!ring_avoids_nodes(&cycle, &[g.node("010").unwrap()]));
        assert!(ring_avoids_edges(
            &cycle,
            &[(g.node("001").unwrap(), g.node("011").unwrap())]
        ));
        assert!(!ring_avoids_edges(
            &cycle,
            &[(g.node("000").unwrap(), g.node("001").unwrap())]
        ));
    }

    #[test]
    fn family_disjointness_wrapper() {
        assert!(family_is_edge_disjoint(&[vec![0, 1, 2], vec![0, 2, 1]]));
        assert!(!family_is_edge_disjoint(&[vec![0, 1, 2], vec![1, 2, 0]]));
    }
}
