//! Validation helpers shared by tests, benchmarks and examples.
//!
//! A ring embedding with unit dilation and congestion is simply a simple
//! cycle of the (faulty) host graph, so "did the algorithm work?" always
//! reduces to a handful of checks collected here.
//!
//! A **ring** here always means a cycle of at least [`MIN_RING_LEN`] = 3
//! processors: that is the embedding the paper constructs, and shorter
//! sequences are degenerate as *rings* even when they are legitimate
//! directed cycles of the graph — a single node's wrap-around "edge"
//! `(v, v)` is a self-pair, and a 2-node "ring" is just one pair of
//! processors talking over their mutual links, not a ring topology. The
//! helpers in this module therefore reject them outright instead of
//! accidentally validating them (the regression the boundary tests pin
//! down); callers that need raw directed-cycle checks, 2-cycles
//! included, should use `dbg_graph::algo::cycles::is_cycle` directly.

use std::collections::HashSet;

use dbg_graph::algo::cycles::{all_pairwise_edge_disjoint, is_cycle};
use dbg_graph::{DeBruijn, Topology};

/// The shortest node sequence the verify helpers accept as a ring.
/// `(cycle[i], cycle[(i + 1) % len])` degenerates to a self-pair at
/// length 1, and a 2-node sequence — although a genuine directed
/// 2-cycle when both edges exist — is a point-to-point link pair, not a
/// ring embedding.
pub const MIN_RING_LEN: usize = 3;

/// Whether `cycle` is a simple cycle of B(d,n) with at least
/// [`MIN_RING_LEN`] nodes.
#[must_use]
pub fn is_debruijn_ring(d: u64, n: u32, cycle: &[usize]) -> bool {
    let g = DeBruijn::new(d, n);
    cycle.len() >= MIN_RING_LEN && is_cycle(&g, cycle)
}

/// Whether `cycle` is a Hamiltonian cycle of B(d,n) (n ≥ 2, so every
/// Hamiltonian cycle clears [`MIN_RING_LEN`]).
#[must_use]
pub fn is_debruijn_hamiltonian(d: u64, n: u32, cycle: &[usize]) -> bool {
    let g = DeBruijn::new(d, n);
    cycle.len() == g.len() && cycle.len() >= MIN_RING_LEN && is_cycle(&g, cycle)
}

/// Whether the ring avoids every node in `faulty_nodes`.
#[must_use]
pub fn ring_avoids_nodes(cycle: &[usize], faulty_nodes: &[usize]) -> bool {
    let faults: HashSet<usize> = faulty_nodes.iter().copied().collect();
    cycle.iter().all(|v| !faults.contains(v))
}

/// Whether the ring uses none of the directed edges in `faulty_edges`.
/// Degenerate rings (shorter than [`MIN_RING_LEN`]) are rejected: their
/// wrap-around pairs are not genuine edges, so "avoids everything" would
/// be vacuously — and misleadingly — true.
#[must_use]
pub fn ring_avoids_edges(cycle: &[usize], faulty_edges: &[(usize, usize)]) -> bool {
    if cycle.len() < MIN_RING_LEN {
        return false;
    }
    let faults: HashSet<(usize, usize)> = faulty_edges.iter().copied().collect();
    (0..cycle.len()).all(|i| !faults.contains(&(cycle[i], cycle[(i + 1) % cycle.len()])))
}

/// Whether every pair of cycles in the family is edge-disjoint.
#[must_use]
pub fn family_is_edge_disjoint(cycles: &[Vec<usize>]) -> bool {
    all_pairwise_edge_disjoint(cycles)
}

/// Whether `cycle` is a simple cycle of at least [`MIN_RING_LEN`] nodes
/// of an arbitrary topology — re-exported for callers that work with
/// butterflies or hypercubes.
#[must_use]
pub fn is_ring_of<T: Topology + ?Sized>(graph: &T, cycle: &[usize]) -> bool {
    cycle.len() >= MIN_RING_LEN && is_cycle(graph, cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debruijn_ring_checks() {
        // 000 → 001 → 010 → 100 → 000 is a 4-cycle of B(2,3).
        let g = DeBruijn::new(2, 3);
        let cycle = vec![
            g.node("000").unwrap(),
            g.node("001").unwrap(),
            g.node("010").unwrap(),
            g.node("100").unwrap(),
        ];
        assert!(is_debruijn_ring(2, 3, &cycle));
        assert!(!is_debruijn_hamiltonian(2, 3, &cycle));
        assert!(ring_avoids_nodes(&cycle, &[g.node("111").unwrap()]));
        assert!(!ring_avoids_nodes(&cycle, &[g.node("010").unwrap()]));
        assert!(ring_avoids_edges(
            &cycle,
            &[(g.node("001").unwrap(), g.node("011").unwrap())]
        ));
        assert!(!ring_avoids_edges(
            &cycle,
            &[(g.node("000").unwrap(), g.node("001").unwrap())]
        ));
    }

    /// The degenerate boundary: length-1 and length-2 "cycles" — whose
    /// wrap-around pairs are a self-pair and a doubly-used link — must be
    /// rejected by every ring helper, and length 3 accepted. Regression
    /// for the verify helpers vacuously passing short sequences.
    #[test]
    fn rings_shorter_than_three_are_rejected() {
        let g = DeBruijn::new(2, 3);
        // 000 carries a genuine self-loop and 010 ⇄ 101 a genuine 2-cycle,
        // so these are the strongest short inputs: every edge they use
        // exists, and they are still not rings.
        let loop1 = vec![g.node("000").unwrap()];
        let two = vec![g.node("010").unwrap(), g.node("101").unwrap()];
        let three = vec![
            g.node("011").unwrap(),
            g.node("110").unwrap(),
            g.node("101").unwrap(),
        ];
        for short in [&[] as &[usize], &loop1, &two] {
            assert!(!is_debruijn_ring(2, 3, short), "{short:?}");
            assert!(!is_ring_of(&g, short), "{short:?}");
            assert!(!ring_avoids_edges(short, &[]), "{short:?}");
        }
        assert!(is_debruijn_ring(2, 3, &three));
        assert!(is_ring_of(&g, &three));
        assert!(ring_avoids_edges(&three, &[]));
        assert_eq!(MIN_RING_LEN, 3);
        // A degenerate "Hamiltonian" can only occur below n = 2; the
        // length gate closes that door too.
        assert!(!is_debruijn_hamiltonian(2, 1, &[0, 1]));
    }

    #[test]
    fn family_disjointness_wrapper() {
        assert!(family_is_edge_disjoint(&[vec![0, 1, 2], vec![0, 2, 1]]));
        assert!(!family_is_edge_disjoint(&[vec![0, 1, 2], vec![1, 2, 0]]));
    }
}
