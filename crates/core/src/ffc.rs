//! The fault-free cycle (FFC) algorithm for node failures (Chapter 2).
//!
//! Given a set of faulty processors in B(d,n), the algorithm
//!
//! 1. declares every necklace containing a faulty node *faulty* and removes
//!    it, keeping the component B* of what remains that contains the root;
//! 2. builds a spanning tree T of the necklace adjacency graph N* from the
//!    propagation pattern of a broadcast out of the root R (each w-labeled
//!    subtree T_w has height one because nodes wα and wβ share their
//!    earliest predecessor);
//! 3. turns every T_w into a directed cycle of w-edges (the modified tree
//!    D) and reads off a successor function: node αw leaves its necklace
//!    through the w-edge of D if its necklace has one, and otherwise
//!    follows its own necklace.
//!
//! The resulting successor function traces a Hamiltonian cycle of B*
//! (Proposition 2.1). When f ≤ d−2 processors fail the cycle has length at
//! least d^n − n·f and the broadcast finishes within 2n rounds
//! (Proposition 2.2); a single failure in the binary graph still leaves a
//! cycle of length ≥ 2^n − (n+1) (Proposition 2.3).
//!
//! # The embedding engine
//!
//! The paper's headline experiments (Tables 2.1/2.2) re-run this embedding
//! thousands of times per (d, n, f) cell, so the hot path is organised as
//! an *engine*: [`Ffc::new`] precomputes immutable flat tables once (node →
//! necklace id, necklace representatives/lengths, and a CSR layout of
//! necklace members), and a reusable [`EmbedScratch`] owns every piece of
//! per-call mutable state — stamped visit masks, BFS queues, the successor
//! array, and the output cycle buffer. After the first call at a given
//! (d, n) ("warm-up"), [`Ffc::embed_into`] performs **no heap allocation**:
//! buffers are stamp-invalidated, not cleared, and only ever grow.
//!
//! Per call the engine does:
//!
//! * **Component**: instead of a whole-graph Tarjan SCC pass, a
//!   forward-BFS and a backward-BFS from the root over the implicit
//!   successor/predecessor arithmetic of B(d,n), restricted to live nodes;
//!   the intersection of the two reachable sets is exactly the strongly
//!   connected component B* of the root.
//! * **Broadcast**: a level-synchronous BFS with minimal-predecessor tie
//!   breaking over B* only.
//! * **Cycle construction**: the w-group tables are flat arrays keyed by
//!   necklace id / edge label (no hash maps); the successor function is
//!   materialised into a flat array and the cycle is read off by pointer
//!   chasing.
//!
//! The textbook formulation (materialised SCCs + hash-map groups) is kept
//! as [`Ffc::embed_reference`]; it is used by the differential tests and
//! as the baseline in the Criterion benchmarks.
//!
//! This module is the *centralized* reference implementation; the
//! message-passing version that mirrors Section 2.4 round by round lives in
//! the `dbg-netsim` crate and is checked against this one.

use std::collections::HashMap;

use dbg_graph::algo::bfs::bfs_tree;
use dbg_graph::algo::components::scc_component_ids;
use dbg_graph::{DeBruijn, Topology};
use dbg_necklace::NecklacePartition;

use crate::bitreach::{AtomicCells, BitReach, BitScratch, ParBitScratch, SpaceTooLarge};

/// The FFC embedder for a fixed B(d,n): owns the necklace partition and the
/// engine's immutable lookup tables so that repeated embeddings (e.g. the
/// Monte-Carlo sweeps of Tables 2.1/2.2) recompute nothing.
#[derive(Clone, Debug)]
pub struct Ffc {
    graph: DeBruijn,
    partition: NecklacePartition,
    tables: EngineTables,
}

/// Immutable engine constants shared by every embedding at a fixed (d, n).
/// The per-necklace tables (representatives, lengths, member CSR) live on
/// the [`NecklacePartition`], which builds them in its single
/// FKM-enumeration pass — the engine no longer duplicates them.
#[derive(Clone, Debug)]
struct EngineTables {
    /// Alphabet size d, as usize for index arithmetic.
    d: usize,
    /// d^(n−1): the place value of the leading digit, and the number of
    /// distinct (n−1)-digit edge labels.
    suffix_count: usize,
    /// d^n.
    n_nodes: usize,
    /// Number of necklaces.
    n_necks: usize,
    /// The bit-parallel reachability engine for this shape.
    reach: BitReach,
}

/// The result of one FFC embedding.
#[derive(Clone, Debug)]
pub struct FfcOutcome {
    /// The root processor R used for the broadcast (always the minimal node
    /// of its necklace).
    pub root: usize,
    /// The fault-free cycle, as a sequence of node ids. Its length equals
    /// the size of B*. A single-node "cycle" is only meaningful when that
    /// node carries a self-loop (the constant words).
    pub cycle: Vec<usize>,
    /// |B*|: the number of nodes in the surviving component of the root.
    pub component_size: usize,
    /// The eccentricity of the root within B* — the number of broadcast
    /// rounds Step 1.1 needs (the K of the O(K + n) bound).
    pub eccentricity: usize,
    /// Number of faulty necklaces removed.
    pub faulty_necklaces: usize,
    /// Total number of nodes removed with the faulty necklaces (N_F ≤ n·f).
    pub removed_nodes: usize,
}

impl FfcOutcome {
    /// The paper's guaranteed minimum cycle length d^n − n·f for `f` faults
    /// (meaningful when f ≤ d−2).
    #[must_use]
    pub fn guarantee(d: u64, n: u32, faults: usize) -> usize {
        let total = dbg_algebra::num::pow(d, n) as usize;
        total.saturating_sub(n as usize * faults)
    }
}

/// The scalar results of one [`Ffc::embed_into`] call; the cycle itself
/// stays in the scratch's buffer ([`EmbedScratch::cycle`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbedStats {
    /// The root processor R used for the broadcast.
    pub root: usize,
    /// |B*| — also the length of the cycle left in the scratch.
    pub component_size: usize,
    /// Eccentricity of the root within B* (broadcast rounds).
    pub eccentricity: usize,
    /// Number of faulty necklaces removed.
    pub faulty_necklaces: usize,
    /// Nodes removed with the faulty necklaces.
    pub removed_nodes: usize,
}

const NONE: u32 = u32::MAX;

/// Reusable per-call state for the embedding engine.
///
/// One scratch serves any number of [`Ffc::embed_into`] calls (including
/// across different (d, n) — buffers grow to the largest graph seen and
/// never shrink). Invalidation is by stamping: each call increments a
/// call counter and a slot is "set this call" iff it holds the current
/// stamp, so no O(d^n) clearing happens between calls. After the first
/// call at a fixed (d, n), **no method of this type allocates**.
#[derive(Clone, Debug, Default)]
pub struct EmbedScratch {
    /// Monotone per-call stamp; slot arrays compare against this.
    stamp: u32,
    /// Stamp for the stats-only reachability arrays below. One byte per
    /// slot quarters the hot working set of `embed_stats_into` (the sweep
    /// engine's fast path); it wraps every 255 calls, at which point the
    /// arrays are cleared once (amortised O(1/255) per call).
    stamp8: u8,
    // Per-necklace state.
    /// Stamp: necklace is faulty this call.
    faulty: Vec<u32>,
    /// Stamp: `best_key` is valid this call.
    best_stamp: Vec<u32>,
    /// Packed (broadcast level << 32 | node): the earliest-reached member.
    best_key: Vec<u64>,
    // Per-node state.
    /// Stamp: reached by the root-repair probe.
    probe: Vec<u32>,
    /// Byte-stamp: forward-reachable, u8-stamp oracle path.
    fwd8: Vec<u8>,
    /// Byte-stamp: backward-reachable, u8-stamp oracle path.
    bwd8: Vec<u8>,
    /// Byte-stamp: broadcast-reached, u8-stamp oracle path.
    vis8: Vec<u8>,
    /// Word-packed bitmaps and frontiers of the bit-parallel reachability
    /// engine (fault mask, forward/backward/broadcast visited sets).
    bits: BitScratch,
    /// Shared-write bitmaps of the multi-shard parallel passes
    /// ([`Ffc::embed_into_parallel`]).
    pbits: ParBitScratch,
    /// Parallel engine: packed (stamp << 32 | broadcast level) per node —
    /// one combined visited/level slot, so the parent lookup costs a
    /// single random read where the serial engine reads `vis` and `level`.
    plvl: AtomicCells,
    /// Parallel engine: per-necklace min (level << 32 | node) over B*
    /// (`u64::MAX` = necklace not in B* this call; cleared per call).
    pbest: AtomicCells,
    /// Parallel engine: bit `v` set ⟺ node `v` leaves its necklace
    /// through a w-edge. The streaming cycle readoff tests this bitmap
    /// (L2-resident even at B(2,20)) and computes the necklace rotation
    /// arithmetically, instead of loading a fully materialised successor
    /// array from DRAM on every step.
    exit_bits: Vec<u64>,
    /// Stamp: reached by the Step 1.1 broadcast (validity guard for
    /// `level`/`parent` when the engine assigns tree parents).
    vis: Vec<u32>,
    /// Broadcast level (valid when `vis` is stamped).
    level: Vec<u32>,
    /// Broadcast parent (valid when `vis` is stamped; `NONE` at the root).
    parent: Vec<u32>,
    /// Successor pointers over B* (valid where `vis` is stamped).
    succ: Vec<u32>,
    // Per-label state (indexed by (n−1)-digit edge label).
    /// Stamp: label has a w-group this call.
    label_stamp: Vec<u32>,
    /// Parent necklace of the label's w-group.
    label_parent: Vec<u32>,
    // Worklists (cleared per call; capacity persists).
    /// Current BFS frontier / FIFO queue.
    queue: Vec<u32>,
    /// Next BFS frontier.
    next: Vec<u32>,
    /// The nodes of B*, as emitted level by level from the broadcast.
    bstar: Vec<u32>,
    /// CSR boundaries of the broadcast levels within `bstar`.
    level_offsets: Vec<u32>,
    /// Live non-root necklaces of B*.
    live_necks: Vec<u32>,
    /// Packed (label << 32 | necklace id) w-group membership records.
    group_entries: Vec<u64>,
    /// Member necklaces of the w-group being wired.
    members: Vec<u32>,
    /// The output cycle of the most recent call.
    cycle: Vec<usize>,
}

impl EmbedScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first
    /// embedding that uses it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The fault-free cycle produced by the most recent
    /// [`Ffc::embed_into`] call on this scratch.
    #[must_use]
    pub fn cycle(&self) -> &[usize] {
        &self.cycle
    }

    /// Total bytes currently reserved by the scratch's buffers. Constant
    /// across repeated embeddings at a fixed (d, n) — the no-allocation
    /// property the engine tests pin down.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        4 * (self.faulty.capacity()
            + self.best_stamp.capacity()
            + self.probe.capacity()
            + self.vis.capacity()
            + self.level.capacity()
            + self.parent.capacity()
            + self.succ.capacity()
            + self.label_stamp.capacity()
            + self.label_parent.capacity()
            + self.queue.capacity()
            + self.next.capacity()
            + self.bstar.capacity()
            + self.level_offsets.capacity()
            + self.live_necks.capacity()
            + self.members.capacity())
            + (self.fwd8.capacity() + self.bwd8.capacity() + self.vis8.capacity())
            + self.bits.allocated_bytes()
            + self.pbits.allocated_bytes()
            + self.plvl.allocated_bytes()
            + self.pbest.allocated_bytes()
            + 8 * self.exit_bits.capacity()
            + 8 * (self.best_key.capacity() + self.group_entries.capacity())
            + std::mem::size_of::<usize>() * self.cycle.capacity()
    }

    /// Grows the slot arrays to the engine's sizes and advances the stamp.
    fn prepare(&mut self, t: &EngineTables) {
        if self.stamp == u32::MAX {
            // Stamp wrap-around (once per 2^32 calls): forget all slots.
            for arr in [
                &mut self.faulty,
                &mut self.best_stamp,
                &mut self.probe,
                &mut self.vis,
                &mut self.label_stamp,
            ] {
                arr.iter_mut().for_each(|s| *s = 0);
            }
            // The packed (stamp | level) slots of the parallel engine carry
            // the stamp in their high half; zero is never a current stamp.
            for i in 0..self.plvl.len() {
                self.plvl.store(i, 0);
            }
            self.stamp = 0;
        }
        self.stamp += 1;
        grow(&mut self.faulty, t.n_necks);
        grow(&mut self.best_stamp, t.n_necks);
        grow(&mut self.best_key, t.n_necks);
        grow(&mut self.probe, t.n_nodes);
        grow(&mut self.vis, t.n_nodes);
        grow(&mut self.level, t.n_nodes);
        grow(&mut self.parent, t.n_nodes);
        grow(&mut self.succ, t.n_nodes);
        grow(&mut self.label_stamp, t.suffix_count);
        grow(&mut self.label_parent, t.suffix_count);
        // Worklists are cleared and presized to their worst-case bounds, so
        // no fault pattern can grow them after the first call at this size:
        // frontiers and the cycle hold at most every node, the necklace
        // lists at most every necklace, each live necklace contributes
        // at most two group records (itself plus a first-seen parent), and
        // the broadcast can have at most one level per node (plus the two
        // CSR sentinels).
        reserve(&mut self.queue, t.n_nodes);
        reserve(&mut self.next, t.n_nodes);
        reserve(&mut self.bstar, t.n_nodes);
        reserve(&mut self.level_offsets, t.n_nodes + 2);
        reserve(&mut self.live_necks, t.n_necks);
        reserve(&mut self.group_entries, 2 * t.n_necks);
        reserve(&mut self.members, t.n_necks);
        reserve(&mut self.cycle, t.n_nodes);
    }

    /// Grows (and clears where required) the parallel engine's slot
    /// arrays: the packed level slots are stamp-invalidated like the rest
    /// of the scratch, while the per-necklace best keys and the exit
    /// bitmap are cleared per call — both are O(d^n / n) or smaller, a
    /// vanishing fraction of the embedding itself.
    fn prepare_parallel(&mut self, t: &EngineTables) {
        self.plvl.grow(t.n_nodes);
        self.pbest.grow(t.n_necks);
        for nid in 0..t.n_necks {
            self.pbest.store(nid, u64::MAX);
        }
        let words = t.n_nodes.div_ceil(64);
        if self.exit_bits.len() < words {
            self.exit_bits.resize(words, 0);
        }
        self.exit_bits[..words].fill(0);
    }

    /// Grows and (on wrap-around) clears the byte-stamped reachability
    /// arrays of the stats-only path, and advances their stamp.
    fn prepare_stats(&mut self, t: &EngineTables) {
        grow(&mut self.fwd8, t.n_nodes);
        grow(&mut self.bwd8, t.n_nodes);
        grow(&mut self.vis8, t.n_nodes);
        self.stamp8 = self.stamp8.wrapping_add(1);
        if self.stamp8 == 0 {
            for arr in [&mut self.fwd8, &mut self.bwd8, &mut self.vis8] {
                arr.iter_mut().for_each(|b| *b = 0);
            }
            self.stamp8 = 1;
        }
    }
}

/// Grows a slot vector to at least `len` entries without ever shrinking.
fn grow<T: Default + Clone>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// Empties a worklist and guarantees room for `cap` entries (shared with
/// the bit-parallel scratch's frontier queues).
pub(crate) fn reserve<T>(v: &mut Vec<T>, cap: usize) {
    v.clear();
    if v.capacity() < cap {
        v.reserve_exact(cap - v.len());
    }
}

/// A de Bruijn graph restricted to an alive-node mask, used by the
/// reference implementation for component and BFS computations without
/// materialising subgraphs.
struct Masked<'a> {
    graph: &'a DeBruijn,
    alive: &'a [bool],
}

impl Topology for Masked<'_> {
    fn node_count(&self) -> usize {
        self.graph.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        if !self.alive[v] {
            return;
        }
        self.graph.for_each_successor(v, &mut |u| {
            if self.alive[u] {
                visit(u);
            }
        });
    }
}

impl Ffc {
    /// Creates the embedder for B(d,n): one FKM necklace-enumeration pass
    /// builds the partition (membership table + member CSR) that the
    /// engine reads directly.
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        Self::with_shards(d, n, 1)
    }

    /// [`Ffc::new`], rejecting spaces whose node ids overflow the
    /// engine's u32 indexing with a typed error instead of panicking —
    /// and without allocating any table for the oversized graph.
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when d^n exceeds [`u32::MAX`] (or
    /// overflows u64 entirely).
    pub fn try_new(d: u64, n: u32) -> Result<Self, SpaceTooLarge> {
        Self::try_with_shards(d, n, 1)
    }

    /// [`Ffc::with_shards`] with the [`Ffc::try_new`] error contract.
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when d^n exceeds [`u32::MAX`] (or
    /// overflows u64 entirely).
    pub fn try_with_shards(d: u64, n: u32, shards: usize) -> Result<Self, SpaceTooLarge> {
        let n_nodes = dbg_algebra::num::checked_pow(d, n).ok_or(SpaceTooLarge { n_nodes: None })?;
        if u32::try_from(n_nodes).is_err() {
            return Err(SpaceTooLarge {
                n_nodes: Some(n_nodes),
            });
        }
        Ok(Self::build(d, n, shards))
    }

    /// [`Ffc::new`] with the partition's membership/CSR fill sharded over
    /// `shards` scoped threads ([`NecklacePartition::with_shards`]) — the
    /// table construction analogue of [`Ffc::embed_batch`]'s sharding,
    /// useful for B(2,20)-scale setup on multi-core hosts. The tables are
    /// bit-identical at any shard count.
    ///
    /// # Panics
    /// Panics if d^n overflows the engine's u32 node indexing
    /// ([`Ffc::try_with_shards`] is the non-panicking variant).
    #[must_use]
    pub fn with_shards(d: u64, n: u32, shards: usize) -> Self {
        match Self::try_with_shards(d, n, shards) {
            Ok(ffc) => ffc,
            Err(e) => panic!("engine tables index nodes with u32; B({d},{n}) is too large: {e}"),
        }
    }

    /// Constructs the embedder once the node count has been validated.
    fn build(d: u64, n: u32, shards: usize) -> Self {
        let graph = DeBruijn::new(d, n);
        let n_nodes = graph.len();
        let partition = NecklacePartition::with_shards(graph.space(), shards);
        let tables = EngineTables {
            d: graph.d() as usize,
            suffix_count: graph.space().msd_place() as usize,
            n_nodes,
            n_necks: partition.len(),
            reach: BitReach::new(graph.d() as usize, n_nodes),
        };
        Ffc {
            graph,
            partition,
            tables,
        }
    }

    /// The underlying de Bruijn graph.
    #[must_use]
    pub fn graph(&self) -> &DeBruijn {
        &self.graph
    }

    /// The necklace partition of the node set.
    #[must_use]
    pub fn partition(&self) -> &NecklacePartition {
        &self.partition
    }

    /// The representative (minimal member) of `v`'s necklace — a flat table
    /// lookup, unlike the O(n) `WordSpace::canonical_rotation`.
    #[must_use]
    pub fn representative_of(&self, v: usize) -> usize {
        self.partition
            .necklace(self.partition.membership()[v] as usize)
            .representative() as usize
    }

    /// The members of necklace `id` in rotation order starting at its
    /// representative (a slice of the partition's precomputed CSR layout).
    #[must_use]
    pub fn necklace_members(&self, id: usize) -> &[u32] {
        self.partition.members(id)
    }

    /// The default root R = 0…01 used by the paper's simulations.
    #[must_use]
    pub fn default_root(&self) -> usize {
        1
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at the
    /// default root R = 0…01 (if R's necklace is faulty, the nearest
    /// non-faulty node found by a breadth-first probe is used instead,
    /// matching the protocol of Section 2.5.2).
    ///
    /// Allocates a fresh [`EmbedScratch`] per call; steady-state callers
    /// (sweeps, services) should hold a scratch and use
    /// [`Ffc::embed_into`].
    #[must_use]
    pub fn embed(&self, faulty_nodes: &[usize]) -> FfcOutcome {
        let mut scratch = EmbedScratch::new();
        let stats = self.embed_into(&mut scratch, faulty_nodes);
        outcome_from(stats, std::mem::take(&mut scratch.cycle))
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at (the
    /// necklace representative of) `root`.
    ///
    /// # Panics
    /// Panics if `root`'s necklace is itself faulty.
    #[must_use]
    pub fn embed_from(&self, faulty_nodes: &[usize], root: usize) -> FfcOutcome {
        let mut scratch = EmbedScratch::new();
        let stats = self.embed_into_from(&mut scratch, faulty_nodes, root);
        outcome_from(stats, std::mem::take(&mut scratch.cycle))
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes` using `scratch`
    /// for all mutable state; the cycle is left in [`EmbedScratch::cycle`].
    /// Root selection follows [`Ffc::embed`]. After the scratch has warmed
    /// up at this (d, n), the call performs no heap allocation.
    pub fn embed_into(&self, scratch: &mut EmbedScratch, faulty_nodes: &[usize]) -> EmbedStats {
        self.engine_embed(scratch, faulty_nodes, None)
    }

    /// [`Ffc::embed_into`] with an explicit root, like [`Ffc::embed_from`].
    ///
    /// # Panics
    /// Panics if `root`'s necklace is itself faulty.
    pub fn embed_into_from(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
        root: usize,
    ) -> EmbedStats {
        self.engine_embed(scratch, faulty_nodes, Some(root))
    }

    /// [`Ffc::embed_into`] on the multi-shard parallel engine: produces
    /// **bit-identical** [`EmbedStats`] and cycle bytes to the serial
    /// engine on the same faults, at every shard count (the serial path
    /// is retained as the differential oracle; exhaustive ≤2-fault
    /// equality plus B(2,14) property tests pin the contract).
    ///
    /// What runs differently:
    ///
    /// * the forward/backward component passes and the level-emitting
    ///   broadcast run on the word-range-sharded bit engine
    ///   ([`crate::bitreach`]'s `*_par` passes) over `shards` scoped
    ///   threads;
    /// * the level-CSR scatter (stamping each B* node's broadcast level)
    ///   and the per-necklace earliest-member reduction are fused into
    ///   one sharded pass over the emitted levels;
    /// * spanning-tree parents are computed **only for the d^n/n chosen
    ///   necklace nodes** (a packed stamp|level slot makes each lookup
    ///   one random read), not for every node of B*;
    /// * the successor function is never materialised for
    ///   necklace-following nodes: the streaming cycle readoff computes
    ///   the rotation arithmetically and consults the override slots only
    ///   at w-edge exits, flagged by an L2-resident exit bitmap.
    ///
    /// Those last three make the path faster than [`Ffc::embed_into`]
    /// even at `shards == 1` (where no threads are spawned at all) —
    /// see the `"mode": "full"` tiers of `BENCH_ffc.json`. `shards` is
    /// clamped to at least 1; `shards - 1` scoped worker threads are
    /// spawned per call, so steady-state callers on small graphs should
    /// keep `shards == 1`. Root selection follows [`Ffc::embed_into`].
    /// After warm-up the call performs no heap allocation beyond the
    /// worker threads themselves.
    pub fn embed_into_parallel(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
        shards: usize,
    ) -> EmbedStats {
        self.engine_embed_parallel(scratch, faulty_nodes, shards.max(1))
    }

    /// The scalar half of an embedding, without materialising the cycle:
    /// identical [`EmbedStats`] to [`Ffc::embed_into`] on the same faults
    /// (same root-repair policy, same component, same eccentricity), but
    /// the spanning-tree, successor-function and cycle-readoff phases are
    /// skipped entirely and [`EmbedScratch::cycle`] is left empty.
    ///
    /// This is the hot path of Monte-Carlo sweeps that only tabulate
    /// component sizes and eccentricities (Tables 2.1/2.2):
    /// [`Ffc::embed_batch`] uses it whenever the plan does not request
    /// cycles. The reachability passes run on the bit-parallel engine
    /// ([`crate::bitreach`]): direction-optimizing BFS whose dense regime
    /// advances 64 nodes per word op, with faulty necklaces masked out as
    /// word-packed pre-visited bits. Like `embed_into`, it performs no
    /// heap allocation after the scratch has warmed up at this (d, n).
    pub fn embed_stats_into(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
    ) -> EmbedStats {
        let t = &self.tables;
        let reach = t.reach;
        let s = scratch;
        s.prepare(t);
        reach.prepare(&mut s.bits);

        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);
        let membership = self.partition.membership();
        let preferred = self.default_root();
        let root = if s.faulty[membership[preferred] as usize] != s.stamp {
            preferred
        } else {
            self.probe_for_live_root(s, preferred)
        };
        let root = self.representative_of(root);

        // Forward pass first: when B* turns out to equal the forward set
        // (the common light-fault case) its depth *is* the broadcast
        // eccentricity and the third pass is skipped entirely.
        let (fwd_count, fwd_depth) = reach.forward(&mut s.bits, root);
        reach.backward(&mut s.bits, root);
        let component_size = reach.component_size(&s.bits, removed_nodes);
        let eccentricity = if component_size == fwd_count {
            fwd_depth
        } else {
            reach.broadcast_depth(&mut s.bits, root)
        };

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// The u8-stamp stats path of PR 2, retained verbatim as the
    /// differential oracle for the bit-parallel engine and as the baseline
    /// the `bench_ffc` large-graph tiers compare against. Semantically
    /// identical to [`Ffc::embed_stats_into`].
    pub fn embed_stats_into_u8(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
    ) -> EmbedStats {
        let t = &self.tables;
        let membership = self.partition.membership();
        let d = t.d;
        let s = scratch;
        s.prepare(t);
        s.prepare_stats(t);
        let stamp = s.stamp;
        let stamp8 = s.stamp8;

        // Fault marking and root repair: byte-for-byte the policy of
        // `engine_embed` with `forced_root = None`. Every node of a faulty
        // necklace is additionally pre-stamped as "already visited" in the
        // byte-stamped fwd8/bwd8/vis8 arrays (O(n·f) stores via the
        // necklace CSR): the BFS loops below then never enqueue a dead
        // node, and their liveness check collapses into the visited check —
        // a single one-byte load per edge instead of the membership →
        // faulty indirection.
        let mut faulty_necklaces = 0usize;
        let mut removed_nodes = 0usize;
        for &v in faulty_nodes {
            assert!(v < t.n_nodes, "faulty node id {v} out of range");
            let nid = membership[v] as usize;
            if s.faulty[nid] != stamp {
                s.faulty[nid] = stamp;
                faulty_necklaces += 1;
                removed_nodes += self.partition.necklace(nid).len();
                for &member in self.partition.members(nid) {
                    s.fwd8[member as usize] = stamp8;
                    s.bwd8[member as usize] = stamp8;
                    s.vis8[member as usize] = stamp8;
                }
            }
        }
        let preferred = self.default_root();
        let root = if s.faulty[membership[preferred] as usize] != stamp {
            preferred
        } else {
            self.probe_for_live_root(s, preferred)
        };
        let root = self.representative_of(root);

        // The reachability passes are monomorphised on whether d is a power
        // of two: the per-edge `% suffix` / `/ d` then compile to masks and
        // shifts instead of hardware divisions, which dominate the
        // otherwise load-light loops of the binary graphs.
        let (component_size, eccentricity) = if d.is_power_of_two() {
            self.stats_reach::<true>(s, root, stamp8)
        } else {
            self.stats_reach::<false>(s, root, stamp8)
        };

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// Shared fault marking of the bit-parallel paths: stamps each faulty
    /// necklace once and kills its members in the word-packed fault mask.
    /// Returns `(faulty_necklaces, removed_nodes)`.
    fn mark_faults_bits(&self, s: &mut EmbedScratch, faulty_nodes: &[usize]) -> (usize, usize) {
        let t = &self.tables;
        let membership = self.partition.membership();
        let stamp = s.stamp;
        let mut faulty_necklaces = 0usize;
        let mut removed_nodes = 0usize;
        for &v in faulty_nodes {
            assert!(v < t.n_nodes, "faulty node id {v} out of range");
            let nid = membership[v] as usize;
            if s.faulty[nid] != stamp {
                s.faulty[nid] = stamp;
                faulty_necklaces += 1;
                let members = self.partition.members(nid);
                removed_nodes += members.len();
                for &member in members {
                    t.reach.kill(&mut s.bits, member as usize);
                }
            }
        }
        (faulty_necklaces, removed_nodes)
    }

    /// The reachability passes of [`Ffc::embed_stats_into_u8`] (the
    /// retained u8-stamp oracle — the production stats path runs on
    /// [`crate::bitreach`]): forward BFS,
    /// backward BFS and (only when needed) the broadcast over B*. Returns
    /// (|B*|, eccentricity of the root within B*). `POW2` selects the
    /// shift/mask address arithmetic for power-of-two d.
    fn stats_reach<const POW2: bool>(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        stamp8: u8,
    ) -> (usize, usize) {
        let t = &self.tables;
        let d = t.d;
        let suffix = t.suffix_count;
        let d_log = d.trailing_zeros();
        let suffix_log = suffix.trailing_zeros();
        let suffix_mask = suffix.wrapping_sub(1);
        debug_assert!(!POW2 || (d.is_power_of_two() && suffix.is_power_of_two()));
        let succ_base = |v: usize| -> usize {
            if POW2 {
                (v & suffix_mask) << d_log
            } else {
                (v % suffix) * d
            }
        };
        let pred_base = |v: usize| -> usize {
            if POW2 {
                v >> d_log
            } else {
                v / d
            }
        };
        let pred_step = |a: usize| -> usize {
            if POW2 {
                a << suffix_log
            } else {
                a * suffix
            }
        };

        // Forward reachability, level-synchronous so its depth doubles as
        // the broadcast depth when B* turns out to be the whole forward set.
        s.queue.clear();
        s.fwd8[root] = stamp8;
        s.queue.push(root as u32);
        let mut fwd_count = 1usize;
        let mut fwd_depth = 0u32;
        loop {
            s.next.clear();
            for &v in &s.queue {
                let base = succ_base(v as usize);
                for a in 0..d {
                    let u = base + a;
                    if s.fwd8[u] != stamp8 {
                        s.fwd8[u] = stamp8;
                        s.next.push(u as u32);
                    }
                }
            }
            if s.next.is_empty() {
                break;
            }
            fwd_count += s.next.len();
            fwd_depth += 1;
            std::mem::swap(&mut s.queue, &mut s.next);
        }

        // Backward reachability (plain FIFO); |B*| is counted, not listed.
        s.queue.clear();
        s.bwd8[root] = stamp8;
        s.queue.push(root as u32);
        let mut component_size = 1usize;
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            let base = pred_base(v);
            for a in 0..d {
                let u = base + pred_step(a);
                if s.bwd8[u] != stamp8 {
                    s.bwd8[u] = stamp8;
                    s.queue.push(u as u32);
                    if s.fwd8[u] == stamp8 {
                        component_size += 1;
                    }
                }
            }
        }

        // Eccentricity of the root within B*. When every forward-reachable
        // node is also backward-reachable (B* equals the forward set — the
        // common case for light fault loads), the forward BFS above *was*
        // the broadcast, so its depth is the answer and the third pass is
        // skipped. Otherwise run the broadcast restricted to B*, levels
        // only (the spanning-tree parents are not needed for stats).
        let eccentricity = if component_size == fwd_count {
            fwd_depth as usize
        } else {
            s.queue.clear();
            s.vis8[root] = stamp8;
            s.queue.push(root as u32);
            let mut depth = 0u32;
            loop {
                s.next.clear();
                for &v in &s.queue {
                    let base = succ_base(v as usize);
                    for a in 0..d {
                        let u = base + a;
                        if s.fwd8[u] == stamp8 && s.bwd8[u] == stamp8 && s.vis8[u] != stamp8 {
                            s.vis8[u] = stamp8;
                            s.next.push(u as u32);
                        }
                    }
                }
                if s.next.is_empty() {
                    break;
                }
                depth += 1;
                std::mem::swap(&mut s.queue, &mut s.next);
            }
            depth as usize
        };
        (component_size, eccentricity)
    }

    /// The boolean per-necklace fault mask induced by a set of faulty nodes.
    #[must_use]
    pub fn faulty_necklace_mask(&self, faulty_nodes: &[usize]) -> Vec<bool> {
        for &v in faulty_nodes {
            assert!(v < self.graph.len(), "faulty node id {v} out of range");
        }
        self.partition
            .faulty_necklaces(faulty_nodes.iter().map(|&v| v as u64))
    }

    /// Picks a live root: `preferred` if its necklace survives, otherwise
    /// the repair root — the **nearest live node by breadth-first distance
    /// from `preferred` over the full graph (faults ignored while
    /// searching), ties broken by minimal node id**.
    ///
    /// The repair policy is implemented exactly once: this method stamps a
    /// throwaway scratch from the mask and delegates to the engine's
    /// `probe_for_live_root`, so the two public entry points cannot drift
    /// apart (an exhaustive differential test additionally pins the
    /// policy).
    ///
    /// # Panics
    /// Panics if every necklace is faulty.
    #[must_use]
    pub fn pick_root(&self, preferred: usize, faulty_mask: &[bool]) -> usize {
        let alive = |v: usize| !faulty_mask[self.partition.id_of(v as u64)];
        if alive(preferred) {
            return preferred;
        }
        let mut scratch = EmbedScratch::new();
        scratch.prepare(&self.tables);
        let stamp = scratch.stamp;
        for (nid, &faulty) in faulty_mask.iter().enumerate() {
            if faulty {
                scratch.faulty[nid] = stamp;
            }
        }
        self.probe_for_live_root(&mut scratch, preferred)
    }

    // ------------------------------------------------------------------
    // The engine.
    // ------------------------------------------------------------------

    /// One full embedding on reusable state. `forced_root` is `Some` for
    /// [`Ffc::embed_into_from`] (panics if its necklace is faulty) and
    /// `None` for the default-root-with-repair policy of [`Ffc::embed_into`].
    fn engine_embed(
        &self,
        s: &mut EmbedScratch,
        faulty_nodes: &[usize],
        forced_root: Option<usize>,
    ) -> EmbedStats {
        let t = &self.tables;
        let reach = t.reach;
        let membership = self.partition.membership();
        let d = t.d;
        let suffix = t.suffix_count;
        s.prepare(t);
        // The bit scratch sizes its bitmaps and clears the fault mask
        // here, not in `prepare` — the u8 oracle path never pays for it.
        reach.prepare(&mut s.bits);
        let stamp = s.stamp;

        // Mark faulty necklaces: stamped per necklace, and every member
        // killed in the word-packed fault mask of the bit engine.
        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);

        // Root selection (Section 2.5.2): the preferred root if live, else
        // the nearest live node by a breadth-first probe over the *full*
        // graph — identical to `pick_root`, but allocation-free.
        let root = match forced_root {
            Some(r) => {
                assert!(r < t.n_nodes, "root id {r} out of range");
                assert!(
                    s.faulty[membership[r] as usize] != stamp,
                    "the requested root lies on a faulty necklace"
                );
                r
            }
            None => {
                let preferred = self.default_root();
                if s.faulty[membership[preferred] as usize] != stamp {
                    preferred
                } else {
                    self.probe_for_live_root(s, preferred)
                }
            }
        };
        // Normalise to the minimal node of its necklace so N(R) = [R].
        let root = self.representative_of(root);
        let root_neck = membership[root] as usize;

        // B*: the strongly connected component of the surviving graph that
        // contains the root — the intersection of the live forward- and
        // backward-reachable sets of the root, found by two
        // direction-optimizing bit-parallel passes (no Tarjan, no
        // materialised SCCs).
        let _ = reach.forward(&mut s.bits, root);
        reach.backward(&mut s.bits, root);
        let component_size = reach.component_size(&s.bits, removed_nodes);

        // Step 1.1: broadcast from the root over B*. The bit engine runs
        // the frontier expansion and emits the reached nodes level by
        // level into `bstar` (which therefore lists exactly B*); the
        // spanning-tree parents are then assigned per level with the
        // paper's minimal-predecessor tie-break: a node reached at level
        // l+1 hangs off its minimal predecessor at level l. Scanning a
        // node's d predecessors once is equivalent to the old per-edge
        // min-update over the frontier, and independent of scan order.
        let (reached, depth) =
            reach.broadcast_levels(&mut s.bits, root, &mut s.bstar, &mut s.level_offsets);
        debug_assert_eq!(reached, component_size, "broadcast must cover B*");
        s.vis[root] = stamp;
        s.level[root] = 0;
        s.parent[root] = NONE;
        for l in 1..=depth {
            let lo = s.level_offsets[l] as usize;
            let hi = s.level_offsets[l + 1] as usize;
            for idx in lo..hi {
                let u = s.bstar[idx] as usize;
                let base = u / d;
                let mut best = NONE;
                for a in 0..d {
                    let p = base + a * suffix;
                    if s.vis[p] == stamp && s.level[p] == (l - 1) as u32 && (p as u32) < best {
                        best = p as u32;
                    }
                }
                debug_assert!(best != NONE, "level-{l} node with no frontier predecessor");
                s.vis[u] = stamp;
                s.level[u] = l as u32;
                s.parent[u] = best;
            }
        }
        let eccentricity = depth;

        // Step 1.2: for every non-root live necklace of B*, the member Y
        // reached earliest (ties: minimal id) defines the tree edge — its
        // (n−1)-digit prefix is the label w, its BFS parent's necklace the
        // parent in T. One pass over B* with per-necklace best slots.
        for &v in &s.bstar {
            let v = v as usize;
            debug_assert!(s.vis[v] == stamp, "B* node not reached by the broadcast");
            let nid = membership[v] as usize;
            if nid == root_neck {
                continue;
            }
            let key = (u64::from(s.level[v]) << 32) | v as u64;
            if s.best_stamp[nid] != stamp {
                s.best_stamp[nid] = stamp;
                s.best_key[nid] = key;
                s.live_necks.push(nid as u32);
            } else if key < s.best_key[nid] {
                s.best_key[nid] = key;
            }
        }

        // Step 2: group the tree edges by label w and close each group
        // (children + parent necklace) into a directed cycle of w-edges —
        // the modified tree D. Flat arrays replace the reference
        // implementation's two hash maps: `label_parent` records the
        // single parent necklace of T_w (height-one property), and the
        // packed (label, necklace) records are sorted so each group is a
        // contiguous run, in necklace-id order.
        for &nid in &s.live_necks {
            let nid = nid as usize;
            let chosen = (s.best_key[nid] & u64::from(u32::MAX)) as usize;
            let parent = s.parent[chosen] as usize;
            debug_assert!(parent != NONE as usize, "non-root necklace chose the root");
            let label = chosen / d; // the (n−1)-digit prefix of Y
            debug_assert_eq!(parent % suffix, label);
            let parent_neck = membership[parent] as usize;
            if s.label_stamp[label] != stamp {
                s.label_stamp[label] = stamp;
                s.label_parent[label] = parent_neck as u32;
                s.group_entries
                    .push(((label as u64) << 32) | parent_neck as u64);
            } else {
                debug_assert_eq!(
                    s.label_parent[label] as usize, parent_neck,
                    "T_w must have a single parent necklace (height-one property)"
                );
            }
            s.group_entries.push(((label as u64) << 32) | nid as u64);
        }
        s.group_entries.sort_unstable();

        // Step 3: successor function. Default: follow the necklace (left
        // rotation). Then, for every w-edge of D from necklace m to
        // necklace m′: the unique member αw of m exits to wβ, where βw is
        // the member of m′ with suffix w.
        for &v in &s.bstar {
            let v = v as usize;
            s.succ[v] = ((v % suffix) * d + v / suffix) as u32;
        }
        self.wire_w_groups(s, false);

        // Read off the cycle from the root.
        let mut v = root;
        loop {
            s.cycle.push(v);
            v = s.succ[v] as usize;
            if v == root {
                break;
            }
            debug_assert!(
                s.cycle.len() <= component_size,
                "successor walk escaped B* or looped early"
            );
        }

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// The Step 2 → Step 3 wiring shared by the serial and parallel
    /// engines: walks the sorted `group_entries` runs, closes each
    /// w-group (children + parent necklace, in necklace-id order) into a
    /// directed cycle of w-edges — the modified tree D — and writes the
    /// successor override of every w-edge. With `mark_exit_bits` the exit
    /// nodes are additionally recorded in the word-packed exit bitmap the
    /// parallel engine's streaming readoff tests.
    fn wire_w_groups(&self, s: &mut EmbedScratch, mark_exit_bits: bool) {
        let t = &self.tables;
        let (d, suffix) = (t.d, t.suffix_count);
        let membership = self.partition.membership();
        let mut i = 0;
        while i < s.group_entries.len() {
            let label = (s.group_entries[i] >> 32) as usize;
            s.members.clear();
            let mut j = i;
            while j < s.group_entries.len() && (s.group_entries[j] >> 32) as usize == label {
                let nid = (s.group_entries[j] & u64::from(u32::MAX)) as u32;
                // Entries are sorted, so duplicates (a parent that is also
                // a child of the same label) are adjacent.
                if s.members.last() != Some(&nid) {
                    s.members.push(nid);
                }
                j += 1;
            }
            let k = s.members.len();
            for idx in 0..k {
                let m = s.members[idx] as usize;
                let target = s.members[(idx + 1) % k] as usize;
                let exit = (0..d)
                    .map(|alpha| alpha * suffix + label)
                    .find(|&cand| membership[cand] as usize == m)
                    .expect("a w-edge of D always has an exit node on the source necklace");
                let entry = (0..d)
                    .find(|&beta| membership[beta * suffix + label] as usize == target)
                    .map(|beta| label * d + beta)
                    .expect("a w-edge of D always has an entry node on the target necklace");
                debug_assert!(t.reach.in_bstar(&s.bits, entry));
                s.succ[exit] = entry as u32;
                if mark_exit_bits {
                    s.exit_bits[exit / 64] |= 1u64 << (exit % 64);
                }
            }
            i = j;
        }
    }

    /// One full embedding on the parallel engine (see
    /// [`Ffc::embed_into_parallel`] for the phase breakdown). Uses the
    /// default-root-with-repair policy of [`Ffc::embed_into`].
    fn engine_embed_parallel(
        &self,
        s: &mut EmbedScratch,
        faulty_nodes: &[usize],
        shards: usize,
    ) -> EmbedStats {
        let t = &self.tables;
        let reach = t.reach;
        let membership = self.partition.membership();
        let d = t.d;
        let suffix = t.suffix_count;
        s.prepare(t);
        s.prepare_parallel(t);
        reach.prepare(&mut s.bits);
        let stamp = s.stamp;

        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);

        let preferred = self.default_root();
        let root = if s.faulty[membership[preferred] as usize] != stamp {
            preferred
        } else {
            self.probe_for_live_root(s, preferred)
        };
        let root = self.representative_of(root);
        let root_neck = membership[root] as usize;

        // B* and the broadcast, on the word-range-sharded passes (which
        // delegate to the serial engine at one shard or on shapes without
        // dense sweeps — bit-identical either way).
        let (component_size, depth) = {
            let EmbedScratch {
                bits,
                pbits,
                bstar,
                level_offsets,
                ..
            } = s;
            let _ = reach.forward_par(bits, pbits, root, shards);
            reach.backward_par(bits, pbits, root, shards);
            let component_size = reach.component_size(bits, removed_nodes);
            let (reached, depth) =
                reach.broadcast_levels_par(bits, pbits, root, bstar, level_offsets, shards);
            debug_assert_eq!(reached, component_size, "broadcast must cover B*");
            (component_size, depth)
        };
        let eccentricity = depth;

        // Fused level scatter + Step 1.2 reduction: one sharded pass over
        // the emitted level CSR stamps every B* node's packed
        // (stamp | level) slot and folds each non-root necklace's
        // earliest (level, node) key with an atomic min. Contiguous CSR
        // chunks; every slot has one logical writer per call and the min
        // reduction is order-independent, so the result is identical at
        // any shard count.
        {
            let EmbedScratch {
                plvl,
                pbest,
                bstar,
                level_offsets,
                ..
            } = s;
            let bstar = &bstar[..];
            let offsets = &level_offsets[..];
            if shards == 1 {
                scan_levels::<false>(
                    plvl,
                    pbest,
                    bstar,
                    offsets,
                    membership,
                    stamp,
                    root_neck,
                    0..bstar.len(),
                );
            } else {
                std::thread::scope(|scope| {
                    for k in 1..shards {
                        let range = crate::bitreach::shard_words(bstar.len(), shards, k);
                        let (plvl, pbest) = (&*plvl, &*pbest);
                        scope.spawn(move || {
                            scan_levels::<true>(
                                plvl, pbest, bstar, offsets, membership, stamp, root_neck, range,
                            );
                        });
                    }
                    scan_levels::<true>(
                        plvl,
                        pbest,
                        bstar,
                        offsets,
                        membership,
                        stamp,
                        root_neck,
                        crate::bitreach::shard_words(bstar.len(), shards, 0),
                    );
                });
            }
        }

        // Steps 1.2 (tail) and 2: for every live non-root necklace, its
        // best key names the earliest-reached member Y; the spanning-tree
        // parent is computed **here, once per necklace** — the minimal
        // predecessor of Y one level up, a packed-slot compare per
        // candidate — instead of being materialised for every node of B*
        // like the serial engine does. Group records and their sort are
        // byte-identical to the serial engine's.
        let stamp_hi = u64::from(stamp) << 32;
        for nid in 0..t.n_necks {
            let key = s.pbest.load(nid);
            if key == u64::MAX {
                continue;
            }
            debug_assert_ne!(nid, root_neck, "the root necklace has no tree edge");
            let chosen = (key & u64::from(u32::MAX)) as usize;
            let lstar = (key >> 32) as u32;
            debug_assert!(lstar >= 1, "non-root necklace reached at level 0");
            let label = chosen / d; // the (n−1)-digit prefix of Y
            let want = stamp_hi | u64::from(lstar - 1);
            let parent = (0..d)
                .map(|a| label + a * suffix)
                .find(|&p| s.plvl.load(p) == want)
                .expect("chosen node with no frontier predecessor");
            let parent_neck = membership[parent] as usize;
            if s.label_stamp[label] != stamp {
                s.label_stamp[label] = stamp;
                s.label_parent[label] = parent_neck as u32;
                s.group_entries
                    .push(((label as u64) << 32) | parent_neck as u64);
            } else {
                debug_assert_eq!(
                    s.label_parent[label] as usize, parent_neck,
                    "T_w must have a single parent necklace (height-one property)"
                );
            }
            s.group_entries.push(((label as u64) << 32) | nid as u64);
        }
        s.group_entries.sort_unstable();

        // Step 3: wire the w-edges (successor overrides + exit bitmap).
        self.wire_w_groups(s, true);

        // Streaming cycle readoff: necklace rotation is arithmetic, the
        // exit bitmap says when to consult the override slot instead.
        if d.is_power_of_two() && suffix.is_power_of_two() {
            read_off_cycle::<true>(s, root, d, suffix, component_size);
        } else {
            read_off_cycle::<false>(s, root, d, suffix, component_size);
        }

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// The single implementation of root repair, shared by the engine and
    /// (via a stamped throwaway scratch) by [`Ffc::pick_root`]: the nearest
    /// live node by breadth-first distance from `preferred`, ties broken by
    /// minimal node id (each level is sorted before it is scanned). The
    /// exhaustive differential test `root_repair_order_is_identical` pins
    /// the policy.
    ///
    /// # Panics
    /// Panics if every necklace is faulty.
    fn probe_for_live_root(&self, s: &mut EmbedScratch, preferred: usize) -> usize {
        let t = &self.tables;
        let membership = self.partition.membership();
        let stamp = s.stamp;
        let (d, suffix) = (t.d, t.suffix_count);
        s.queue.clear();
        s.probe[preferred] = stamp;
        s.queue.push(preferred as u32);
        while !s.queue.is_empty() {
            s.next.clear();
            for &v in &s.queue {
                let base = (v as usize % suffix) * d;
                for a in 0..d {
                    let u = base + a;
                    if s.probe[u] != stamp {
                        s.probe[u] = stamp;
                        s.next.push(u as u32);
                    }
                }
            }
            s.next.sort_unstable();
            if let Some(&u) = s
                .next
                .iter()
                .find(|&&u| s.faulty[membership[u as usize] as usize] != stamp)
            {
                s.queue.clear();
                return u as usize;
            }
            std::mem::swap(&mut s.queue, &mut s.next);
        }
        panic!("every node of B(d,n) lies on a faulty necklace");
    }

    // ------------------------------------------------------------------
    // The reference implementation (differential tests, benchmarks).
    // ------------------------------------------------------------------

    /// The textbook formulation of the algorithm: materialised SCC search
    /// plus hash-map w-groups, rebuilding every intermediate from scratch.
    /// Kept as the differential-testing oracle for the engine and as the
    /// "naive fresh embed" baseline in the Criterion benchmarks.
    #[must_use]
    pub fn embed_reference(&self, faulty_nodes: &[usize]) -> FfcOutcome {
        let faulty_mask = self.faulty_necklace_mask(faulty_nodes);
        let root = self.pick_root(self.default_root(), &faulty_mask);
        self.embed_with_mask(root, &faulty_mask)
    }

    fn embed_with_mask(&self, root: usize, faulty_mask: &[bool]) -> FfcOutcome {
        let space = self.graph.space();
        let d = self.graph.d();
        let suffix_count = space.msd_place();
        let n_nodes = self.graph.len();

        // Root is normalised to the minimal node of its necklace so that
        // N(R) = [R], as Step 1.1 requires.
        let root = space.canonical_rotation(root as u64) as usize;

        // Per-node aliveness induced by the necklace fault mask.
        let alive: Vec<bool> = (0..n_nodes)
            .map(|v| !faulty_mask[self.partition.id_of(v as u64)])
            .collect();
        let faulty_necklaces = faulty_mask.iter().filter(|&&b| b).count();
        let removed_nodes = alive.iter().filter(|&&a| !a).count();

        // B*: the strongly connected component of the surviving graph that
        // contains the root. (The paper's "component" of a digraph.) The
        // node → component-id labelling makes the root lookup O(1) instead
        // of scanning every component's node list.
        let masked = Masked {
            graph: &self.graph,
            alive: &alive,
        };
        let (comp_ids, _) = scc_component_ids(&masked);
        let root_comp = comp_ids[root];
        let mut in_bstar = vec![false; n_nodes];
        let mut component_size = 0usize;
        for v in 0..n_nodes {
            if comp_ids[v] == root_comp {
                in_bstar[v] = true;
                component_size += 1;
            }
        }

        // Necklaces are unions of cycles, so they are wholly inside or
        // wholly outside B*.
        debug_assert!((0..n_nodes).all(|v| {
            !in_bstar[v] || {
                let rep = self.partition.necklace_of(v as u64).representative() as usize;
                in_bstar[rep]
            }
        }));

        // Step 1.1: broadcast from the root over B* (synchronous BFS with
        // minimal-predecessor tie-breaking).
        let restricted = Masked {
            graph: &self.graph,
            alive: &in_bstar,
        };
        let tree = bfs_tree(&restricted, root);
        let eccentricity = tree.depth();

        // Step 1.2: spanning tree T of N*. For every non-root live necklace
        // pick the node Y that received the broadcast first (ties: minimal
        // id); the tree edge enters [Y]'s necklace from the necklace of Y's
        // BFS parent, labeled with Y's (n−1)-digit prefix.
        let root_necklace = self.partition.id_of(root as u64);
        // label w -> (parent necklace, children necklaces)
        let mut groups: HashMap<u64, (usize, Vec<usize>)> = HashMap::new();
        for (id, neck) in self.partition.necklaces().iter().enumerate() {
            if faulty_mask[id] || id == root_necklace {
                continue;
            }
            let rep = neck.representative() as usize;
            if !in_bstar[rep] {
                continue;
            }
            let chosen = neck
                .nodes(space)
                .into_iter()
                .map(|c| c as usize)
                .min_by_key(|&v| (tree.level[v], v))
                .expect("necklaces are non-empty");
            debug_assert!(tree.reached(chosen), "B* node not reached by the broadcast");
            let parent = tree.parent[chosen];
            let parent_necklace = self.partition.id_of(parent as u64);
            let label = chosen as u64 / d; // the (n−1)-digit prefix of Y
            debug_assert_eq!(parent as u64 % suffix_count, label);
            let entry = groups.entry(label).or_insert((parent_necklace, Vec::new()));
            debug_assert_eq!(
                entry.0, parent_necklace,
                "T_w must have a single parent necklace (height-one property)"
            );
            entry.1.push(id);
        }

        // Step 2: modify each T_w into a directed cycle of w-edges (D).
        // Members are ordered by necklace representative, which coincides
        // with necklace id order.
        let mut d_edges: HashMap<(usize, u64), usize> = HashMap::new();
        for (&label, (parent, children)) in &groups {
            let mut members = children.clone();
            members.push(*parent);
            members.sort_unstable();
            members.dedup();
            let k = members.len();
            for i in 0..k {
                d_edges.insert((members[i], label), members[(i + 1) % k]);
            }
        }

        // Step 3: successor function and cycle extraction.
        let successor = |v: usize| -> usize {
            let w = v as u64 % suffix_count; // suffix of v = label of its exit edge
            let my_necklace = self.partition.id_of(v as u64);
            if let Some(&target) = d_edges.get(&(my_necklace, w)) {
                // Leave the necklace: successor is wβ where βw lies on the
                // target necklace.
                for beta in 0..d {
                    let entering = w * d + beta; // the node wβ
                    let beta_w = beta * suffix_count + w; // the node βw (same necklace)
                    if self.partition.id_of(beta_w) == target {
                        debug_assert!(in_bstar[entering as usize]);
                        return entering as usize;
                    }
                }
                unreachable!("a w-edge of D always has an entry node on the target necklace");
            }
            // Stay on the necklace.
            space.rotate_left(v as u64) as usize
        };

        let mut cycle = Vec::with_capacity(component_size);
        let mut v = root;
        loop {
            cycle.push(v);
            v = successor(v);
            if v == root {
                break;
            }
            debug_assert!(
                cycle.len() <= component_size,
                "successor walk escaped B* or looped early"
            );
        }

        FfcOutcome {
            root,
            cycle,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }
}

/// One shard of the parallel engine's fused level-scatter + best-key
/// pass: for every CSR index in `range`, stamps the node's packed
/// (stamp | level) slot and folds the necklace's (level, node) min.
/// `ATOMIC` selects `fetch_min` (cross-shard) vs a plain
/// load/compare/store (single shard, no locked instructions).
#[allow(clippy::too_many_arguments)] // one scatter kernel, not an API
fn scan_levels<const ATOMIC: bool>(
    plvl: &AtomicCells,
    pbest: &AtomicCells,
    bstar: &[u32],
    offsets: &[u32],
    membership: &[u32],
    stamp: u32,
    root_neck: usize,
    range: std::ops::Range<usize>,
) {
    if range.is_empty() {
        return;
    }
    let stamp_hi = u64::from(stamp) << 32;
    // Level of the first index: the last CSR boundary at or before it.
    let mut l = offsets.partition_point(|&o| (o as usize) <= range.start) - 1;
    for idx in range {
        while (offsets[l + 1] as usize) <= idx {
            l += 1;
        }
        let v = bstar[idx] as usize;
        plvl.store(v, stamp_hi | l as u64);
        let nid = membership[v] as usize;
        if nid == root_neck {
            continue;
        }
        let key = ((l as u64) << 32) | v as u64;
        if ATOMIC {
            pbest.fetch_min(nid, key);
        } else if key < pbest.load(nid) {
            pbest.store(nid, key);
        }
    }
}

/// The parallel engine's streaming readoff: walks the successor
/// permutation from `root` into the scratch's cycle buffer, computing
/// the necklace rotation arithmetically and consulting the override
/// slot only where the exit bitmap is set. `POW2` compiles the rotation
/// to masks and shifts.
fn read_off_cycle<const POW2: bool>(
    s: &mut EmbedScratch,
    root: usize,
    d: usize,
    suffix: usize,
    component_size: usize,
) {
    let d_log = d.trailing_zeros();
    let suffix_log = suffix.trailing_zeros();
    let suffix_mask = suffix.wrapping_sub(1);
    debug_assert!(!POW2 || (d.is_power_of_two() && suffix.is_power_of_two()));
    let mut v = root;
    loop {
        s.cycle.push(v);
        v = if s.exit_bits[v / 64] >> (v % 64) & 1 == 1 {
            s.succ[v] as usize
        } else if POW2 {
            ((v & suffix_mask) << d_log) | (v >> suffix_log)
        } else {
            (v % suffix) * d + v / suffix
        };
        if v == root {
            break;
        }
        debug_assert!(
            s.cycle.len() <= component_size,
            "successor walk escaped B* or looped early"
        );
    }
}

/// Builds an [`FfcOutcome`] from engine stats and an owned cycle buffer.
fn outcome_from(stats: EmbedStats, cycle: Vec<usize>) -> FfcOutcome {
    FfcOutcome {
        root: stats.root,
        cycle,
        component_size: stats.component_size,
        eccentricity: stats.eccentricity,
        faulty_necklaces: stats.faulty_necklaces,
        removed_nodes: stats.removed_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::is_cycle;
    use dbg_graph::FaultSet;

    /// Checks that an outcome's cycle is a genuine simple cycle of the
    /// faulty graph that avoids every faulty necklace.
    fn check_outcome(d: u64, n: u32, faulty_nodes: &[usize], out: &FfcOutcome) {
        let ffc = Ffc::new(d, n);
        let mask = ffc.faulty_necklace_mask(faulty_nodes);
        // Every cycle node is live.
        for &v in &out.cycle {
            assert!(
                !mask[ffc.partition().id_of(v as u64)],
                "cycle visits a faulty necklace"
            );
        }
        // The cycle is a simple cycle of the graph minus faulty necklaces.
        let dead: Vec<usize> = (0..ffc.graph().len())
            .filter(|&v| mask[ffc.partition().id_of(v as u64)])
            .collect();
        let faults = FaultSet::from_nodes(dead);
        let view = faults.view(ffc.graph());
        if out.cycle.len() > 1 {
            assert!(is_cycle(&view, &out.cycle), "FFC output is not a cycle");
        }
        assert_eq!(
            out.cycle.len(),
            out.component_size,
            "cycle must be Hamiltonian in B*"
        );
    }

    #[test]
    fn no_faults_gives_hamiltonian_cycle() {
        for (d, n) in [(2u64, 4u32), (2, 6), (3, 3), (4, 2), (5, 2)] {
            let ffc = Ffc::new(d, n);
            let out = ffc.embed(&[]);
            assert_eq!(out.cycle.len(), ffc.graph().len(), "d={d} n={n}");
            assert_eq!(out.faulty_necklaces, 0);
            assert_eq!(out.removed_nodes, 0);
            check_outcome(d, n, &[], &out);
        }
    }

    #[test]
    fn example_2_1_reproduced() {
        // Faults at 020 and 112 in B(3,3): a 21-node fault-free cycle exists.
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
        let out = ffc.embed(&faults);
        assert_eq!(out.component_size, 21);
        assert_eq!(out.cycle.len(), 21);
        assert_eq!(out.faulty_necklaces, 2);
        assert_eq!(out.removed_nodes, 6);
        check_outcome(3, 3, &faults, &out);
    }

    #[test]
    fn proposition_2_2_guarantee_holds() {
        // For f ≤ d−2 faults the cycle has length ≥ d^n − n·f and the
        // broadcast depth is at most 2n.
        for (d, n) in [(3u64, 3u32), (4, 3), (5, 2), (4, 4)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let max_f = (d - 2) as usize;
            // Exhaustive over single faults, plus structured multi-fault sets.
            for v in 0..total.min(80) {
                let out = ffc.embed(&[v]);
                assert!(
                    out.cycle.len() >= FfcOutcome::guarantee(d, n, 1),
                    "d={d} n={n} single fault at {v}: {} < {}",
                    out.cycle.len(),
                    FfcOutcome::guarantee(d, n, 1)
                );
                assert!(out.eccentricity <= 2 * n as usize);
            }
            if max_f >= 2 {
                // The paper's worst-case fault pattern {a^{n-1}(d-1)}.
                let space = ffc.graph().space();
                let worst: Vec<usize> = (0..max_f as u64)
                    .map(|a| {
                        let mut digits = vec![a; n as usize];
                        digits[n as usize - 1] = d - 1;
                        space.from_digits(&digits) as usize
                    })
                    .collect();
                let out = ffc.embed(&worst);
                assert!(out.cycle.len() >= FfcOutcome::guarantee(d, n, worst.len()));
                check_outcome(d, n, &worst, &out);
            }
        }
    }

    #[test]
    fn worst_case_pattern_is_tight() {
        // With faults {a^{n-1}(d-1) : 0 ≤ a ≤ f-1} each faulty necklace is
        // aperiodic and distinct, so exactly n·f nodes are removed and the
        // FFC cycle meets the optimum d^n − n·f exactly (Section 2.5).
        let (d, n) = (5u64, 3u32);
        let ffc = Ffc::new(d, n);
        let space = ffc.graph().space();
        for f in 1..=(d - 2) as usize {
            let faults: Vec<usize> = (0..f as u64)
                .map(|a| {
                    let mut digits = vec![a; n as usize];
                    digits[n as usize - 1] = d - 1;
                    space.from_digits(&digits) as usize
                })
                .collect();
            let out = ffc.embed(&faults);
            assert_eq!(out.cycle.len(), FfcOutcome::guarantee(d, n, f), "f={f}");
            check_outcome(d, n, &faults, &out);
        }
    }

    #[test]
    fn proposition_2_3_binary_single_fault() {
        // B(2,n) with one faulty node: cycle length ≥ 2^n − (n+1).
        for n in 4..=9u32 {
            let ffc = Ffc::new(2, n);
            let total = ffc.graph().len();
            for v in (0..total).step_by(7) {
                let out = ffc.embed(&[v]);
                let bound = total - (n as usize + 1);
                assert!(
                    out.cycle.len() >= bound,
                    "n={n} fault={v}: {} < {bound}",
                    out.cycle.len()
                );
                check_outcome(2, n, &[v], &out);
            }
        }
    }

    #[test]
    fn multiple_faults_on_same_necklace_cost_only_one_necklace() {
        let ffc = Ffc::new(3, 4);
        let g = ffc.graph();
        // 0112 and 1120 are rotations of each other.
        let faults = vec![g.node("0112").unwrap(), g.node("1120").unwrap()];
        let out = ffc.embed(&faults);
        assert_eq!(out.faulty_necklaces, 1);
        assert_eq!(out.removed_nodes, 4);
        assert_eq!(out.cycle.len(), 81 - 4);
        check_outcome(3, 4, &faults, &out);
    }

    #[test]
    fn root_is_rerouted_when_its_necklace_fails() {
        let ffc = Ffc::new(2, 5);
        // Fail the default root 00001 itself.
        let out = ffc.embed(&[1]);
        assert_ne!(out.root, 1);
        assert!(out.cycle.len() >= 32 - 6);
        check_outcome(2, 5, &[1], &out);
    }

    #[test]
    fn heavy_fault_load_still_yields_valid_cycle() {
        // Way beyond the d−2 guarantee: the algorithm still returns a valid
        // (possibly much shorter) cycle — this is what Tables 2.1/2.2 probe.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let ffc = Ffc::new(2, 8);
        for trial in 0..20 {
            let f = 5 + trial % 10;
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..256)).collect();
            let out = ffc.embed(&faults);
            check_outcome(2, 8, &faults, &out);
        }
    }

    #[test]
    fn embed_from_respects_requested_root() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let root = g.node("012").unwrap();
        let out = ffc.embed_from(&[g.node("020").unwrap()], root);
        // Root is normalised to its necklace representative — 012 already is.
        assert_eq!(out.root, root);
        assert!(out.cycle.contains(&root));
    }

    #[test]
    #[should_panic(expected = "faulty necklace")]
    fn embed_from_rejects_faulty_root() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let _ = ffc.embed_from(&[g.node("012").unwrap()], g.node("120").unwrap());
    }

    #[test]
    fn guarantee_helper() {
        assert_eq!(FfcOutcome::guarantee(4, 6, 2), 4096 - 12);
        assert_eq!(FfcOutcome::guarantee(2, 10, 50), 1024 - 500);
        assert_eq!(FfcOutcome::guarantee(2, 3, 100), 0);
    }

    // ------------------------------------------------------------------
    // Engine-specific tests.
    // ------------------------------------------------------------------

    /// The engine and the textbook reference must agree on every output
    /// field for identical inputs.
    fn assert_engine_matches_reference(ffc: &Ffc, scratch: &mut EmbedScratch, faults: &[usize]) {
        let reference = ffc.embed_reference(faults);
        let stats = ffc.embed_into(scratch, faults);
        assert_eq!(stats.root, reference.root, "root mismatch for {faults:?}");
        assert_eq!(
            scratch.cycle(),
            &reference.cycle[..],
            "cycle mismatch for {faults:?}"
        );
        assert_eq!(stats.component_size, reference.component_size);
        assert_eq!(stats.eccentricity, reference.eccentricity, "{faults:?}");
        assert_eq!(stats.faulty_necklaces, reference.faulty_necklaces);
        assert_eq!(stats.removed_nodes, reference.removed_nodes);
    }

    #[test]
    fn engine_matches_reference_exhaustively_on_single_faults() {
        for (d, n) in [(2u64, 6u32), (3, 3), (3, 4), (4, 3), (5, 2)] {
            let ffc = Ffc::new(d, n);
            let mut scratch = EmbedScratch::new();
            assert_engine_matches_reference(&ffc, &mut scratch, &[]);
            for v in 0..ffc.graph().len() {
                assert_engine_matches_reference(&ffc, &mut scratch, &[v]);
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_random_heavy_fault_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2026);
        for (d, n) in [(2u64, 8u32), (2, 10), (3, 5), (4, 4)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut scratch = EmbedScratch::new();
            for trial in 0..40 {
                let f = trial % 13;
                let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
                assert_engine_matches_reference(&ffc, &mut scratch, &faults);
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_sizes() {
        // One scratch, many graphs: buffers grow to the largest and results
        // stay correct when hopping between (d, n).
        let mut scratch = EmbedScratch::new();
        for (d, n) in [(2u64, 4u32), (4, 4), (2, 6), (3, 3), (2, 10), (3, 3)] {
            let ffc = Ffc::new(d, n);
            let stats = ffc.embed_into(&mut scratch, &[0]);
            assert_eq!(stats.component_size, scratch.cycle().len(), "d={d} n={n}");
        }
    }

    #[test]
    fn embed_into_does_not_allocate_after_warmup() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ffc = Ffc::new(2, 10);
        let total = ffc.graph().len();
        let mut scratch = EmbedScratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        // Warm up: the worst-case cycle length (no faults) sizes the cycle
        // buffer (and exercises the dense bit-parallel regime); a
        // faulty-root call sizes the probe path; a heavy fault load keeps
        // the bit passes in the sparse regime.
        let _ = ffc.embed_into(&mut scratch, &[]);
        let _ = ffc.embed_into(&mut scratch, &[1]);
        let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
        let _ = ffc.embed_into(&mut scratch, &heavy);
        let warm = scratch.allocated_bytes();
        let cycle_ptr = scratch.cycle().as_ptr();
        for trial in 0..200 {
            let f = if trial % 3 == 0 {
                250 + trial % 100
            } else {
                trial % 17
            };
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            let _ = ffc.embed_into(&mut scratch, &faults);
            assert_eq!(
                scratch.allocated_bytes(),
                warm,
                "scratch grew on trial {trial} (f={f})"
            );
        }
        // The cycle buffer never reallocated either.
        let _ = ffc.embed_into(&mut scratch, &[]);
        assert_eq!(scratch.cycle().as_ptr(), cycle_ptr);
        assert_eq!(scratch.allocated_bytes(), warm);
    }

    #[test]
    fn representative_and_members_match_partition() {
        let ffc = Ffc::new(3, 4);
        let space = ffc.graph().space();
        for v in 0..ffc.graph().len() {
            assert_eq!(
                ffc.representative_of(v),
                space.canonical_rotation(v as u64) as usize
            );
        }
        for (id, neck) in ffc.partition().necklaces().iter().enumerate() {
            let members: Vec<u64> = ffc
                .necklace_members(id)
                .iter()
                .map(|&v| u64::from(v))
                .collect();
            assert_eq!(members, neck.nodes(space));
        }
    }

    /// Root repair must be one policy, not two: for every fault set of size
    /// ≤ 2 that kills the preferred root's necklace — exhaustively in
    /// B(2,5) and B(3,3), and for non-default preferred roots as well —
    /// `pick_root` and the engine's `probe_for_live_root` must return the
    /// identical node ("nearest live node, ties broken by minimal id").
    #[test]
    fn root_repair_order_is_identical() {
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut scratch = EmbedScratch::new();
            let mut fault_sets: Vec<Vec<usize>> = (0..total).map(|a| vec![a]).collect();
            for a in 0..total {
                for b in (a + 1)..total {
                    fault_sets.push(vec![a, b]);
                }
            }
            for preferred in [ffc.default_root(), 0, total / 2, total - 1] {
                for faults in &fault_sets {
                    let mask = ffc.faulty_necklace_mask(faults);
                    if !mask[ffc.partition().id_of(preferred as u64)] {
                        continue; // repair only kicks in when the root dies
                    }
                    let picked = ffc.pick_root(preferred, &mask);
                    // Replay the engine's fault marking, then probe.
                    scratch.prepare(&ffc.tables);
                    let stamp = scratch.stamp;
                    for &v in faults {
                        scratch.faulty[ffc.partition().membership()[v] as usize] = stamp;
                    }
                    let probed = ffc.probe_for_live_root(&mut scratch, preferred);
                    assert_eq!(
                        probed, picked,
                        "repair roots diverge for preferred={preferred} faults={faults:?} \
                         in B({d},{n})"
                    );
                    // And the engine's public entry point agrees (modulo the
                    // normalisation to the necklace representative).
                    if preferred == ffc.default_root() {
                        let stats = ffc.embed_into(&mut scratch, faults);
                        assert_eq!(stats.root, ffc.representative_of(picked), "{faults:?}");
                    }
                }
            }
        }
    }

    /// `embed_stats_into` must report the identical scalars to the full
    /// pipeline — exhaustively over single faults and on random heavy
    /// loads, which exercises both the merged-broadcast fast path and the
    /// genuine three-pass fallback.
    #[test]
    fn stats_only_path_matches_full_pipeline() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for (d, n) in [(2u64, 6u32), (2, 9), (3, 4), (4, 3)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut full = EmbedScratch::new();
            let mut fast = EmbedScratch::new();
            let mut check = |faults: &[usize]| {
                let expected = ffc.embed_into(&mut full, faults);
                let got = ffc.embed_stats_into(&mut fast, faults);
                assert_eq!(got, expected, "stats diverge for {faults:?} in B({d},{n})");
                assert!(fast.cycle().is_empty(), "stats path must not build a cycle");
            };
            check(&[]);
            for v in 0..total {
                check(&[v]);
            }
            for trial in 0..60 {
                let f = trial % 17;
                let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
                check(&faults);
            }
        }
    }

    /// The no-allocation property must hold across *both* density regimes
    /// of the bit-parallel stats path — light faults drive the
    /// dense/bottom-up sweeps (and their fold buffers), heavy faults keep
    /// the pass sparse/top-down — and on the retained u8 oracle path.
    #[test]
    fn stats_only_path_does_not_allocate_after_warmup() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ffc = Ffc::new(2, 10);
        assert!(ffc.tables.reach.dense_capable());
        let total = ffc.graph().len();
        let mut scratch = EmbedScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        // Warm-up: no faults (dense regime, bottom-up buffers), a faulty
        // root (probe path), and a heavy load (sparse regime throughout).
        let _ = ffc.embed_stats_into(&mut scratch, &[]);
        let _ = ffc.embed_stats_into(&mut scratch, &[1]);
        let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
        let _ = ffc.embed_stats_into(&mut scratch, &heavy);
        let _ = ffc.embed_stats_into_u8(&mut scratch, &[1]);
        let warm = scratch.allocated_bytes();
        for trial in 0..200 {
            let f = match trial % 3 {
                0 => trial % 17,
                1 => 60 + trial % 40,
                _ => 250 + trial % 100,
            };
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            let _ = ffc.embed_stats_into(&mut scratch, &faults);
            assert_eq!(
                scratch.allocated_bytes(),
                warm,
                "bit path grew on trial {trial} (f={f})"
            );
            let _ = ffc.embed_stats_into_u8(&mut scratch, &faults);
            assert_eq!(
                scratch.allocated_bytes(),
                warm,
                "u8 path grew on trial {trial} (f={f})"
            );
        }
    }

    /// Satellite differential: the bit-parallel stats path, the retained
    /// u8-stamp path and the textbook reference must report identical
    /// scalars for **every** fault set of size ≤ 2 on B(2,5) and B(3,3).
    #[test]
    fn bit_u8_and_reference_stats_agree_exhaustively() {
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut bit = EmbedScratch::new();
            let mut u8s = EmbedScratch::new();
            let mut fault_sets: Vec<Vec<usize>> = vec![Vec::new()];
            fault_sets.extend((0..total).map(|a| vec![a]));
            for a in 0..total {
                for b in (a + 1)..total {
                    fault_sets.push(vec![a, b]);
                }
            }
            for faults in &fault_sets {
                let want = ffc.embed_reference(faults);
                let got_bit = ffc.embed_stats_into(&mut bit, faults);
                let got_u8 = ffc.embed_stats_into_u8(&mut u8s, faults);
                assert_eq!(got_bit, got_u8, "bit vs u8 for {faults:?} in B({d},{n})");
                assert_eq!(got_bit.root, want.root, "{faults:?}");
                assert_eq!(got_bit.component_size, want.component_size, "{faults:?}");
                assert_eq!(got_bit.eccentricity, want.eccentricity, "{faults:?}");
                assert_eq!(got_bit.faulty_necklaces, want.faulty_necklaces);
                assert_eq!(got_bit.removed_nodes, want.removed_nodes);
            }
        }
    }

    /// Satellite property test: on B(2,14) the bit-parallel path must
    /// agree with the u8 oracle under fault loads on both sides of the
    /// density-switch threshold — light loads run the dense bottom-up
    /// sweeps, heavy loads (component shredded) stay sparse top-down.
    #[test]
    fn bit_stats_match_u8_on_b2_14_across_density_regimes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ffc = Ffc::new(2, 14);
        assert!(ffc.tables.reach.dense_capable());
        let total = ffc.graph().len();
        let mut bit = EmbedScratch::new();
        let mut u8s = EmbedScratch::new();
        let mut rng = StdRng::seed_from_u64(0xB17);
        let mut check = |faults: &[usize]| {
            let got = ffc.embed_stats_into(&mut bit, faults);
            let want = ffc.embed_stats_into_u8(&mut u8s, faults);
            assert_eq!(got, want, "{} faults", faults.len());
        };
        check(&[]);
        for trial in 0..12 {
            // Dense side: a handful of faults, B* stays near-complete.
            let f = trial % 9;
            let light: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            check(&light);
            // Sparse side: thousands of faults shred the graph so no
            // frontier ever reaches the dense threshold.
            let f = 2000 + 500 * (trial % 4);
            let heavy: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            check(&heavy);
        }
    }

    /// Satellite exhaustive differential: the parallel engine must
    /// reproduce the serial engine's stats **and cycle bytes** for every
    /// fault set of size ≤ 2 on B(2,5) and B(3,3), at shard counts 1, 2
    /// and 5 (B(3,3) and B(2,5) both delegate the reachability passes —
    /// non-pow2 / sub-word shapes — so this also pins the delegation).
    #[test]
    fn parallel_engine_matches_serial_exhaustively_on_small_fault_sets() {
        for (d, n) in [(2u64, 5u32), (3, 3)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let mut serial = EmbedScratch::new();
            let mut par = EmbedScratch::new();
            let mut fault_sets: Vec<Vec<usize>> = vec![Vec::new()];
            fault_sets.extend((0..total).map(|a| vec![a]));
            for a in 0..total {
                for b in (a + 1)..total {
                    fault_sets.push(vec![a, b]);
                }
            }
            for faults in &fault_sets {
                let want = ffc.embed_into(&mut serial, faults);
                for shards in [1usize, 2, 5] {
                    let got = ffc.embed_into_parallel(&mut par, faults, shards);
                    assert_eq!(
                        got, want,
                        "stats diverge for {faults:?} x{shards} B({d},{n})"
                    );
                    assert_eq!(
                        par.cycle(),
                        serial.cycle(),
                        "cycle bytes diverge for {faults:?} x{shards} B({d},{n})"
                    );
                }
            }
        }
    }

    /// Satellite property test: on B(2,14) the parallel engine must match
    /// the serial engine under fault loads on both sides of the
    /// density-switch threshold, at shards 1, 2 and 5 — light loads run
    /// the sharded dense sweeps, heavy loads keep every level in the
    /// leader's sparse regime.
    #[test]
    fn parallel_engine_matches_serial_on_b2_14_across_density_regimes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ffc = Ffc::new(2, 14);
        assert!(ffc.tables.reach.dense_capable());
        let total = ffc.graph().len();
        let mut serial = EmbedScratch::new();
        let mut par = EmbedScratch::new();
        let mut rng = StdRng::seed_from_u64(0xFA12);
        let mut check = |faults: &[usize]| {
            let want = ffc.embed_into(&mut serial, faults);
            for shards in [1usize, 2, 5] {
                let got = ffc.embed_into_parallel(&mut par, faults, shards);
                assert_eq!(got, want, "{} faults x{shards}", faults.len());
                assert_eq!(
                    par.cycle(),
                    serial.cycle(),
                    "{} faults x{shards}",
                    faults.len()
                );
            }
        };
        check(&[]);
        for trial in 0..8 {
            // Dense side: a handful of faults, B* stays near-complete.
            let f = trial % 7;
            let light: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            check(&light);
            // Sparse side: thousands of faults shred the graph so no
            // frontier ever reaches the dense threshold.
            let f = 2000 + 500 * (trial % 4);
            let heavy: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            check(&heavy);
        }
    }

    /// The parallel engine honours the scratch's no-allocation contract
    /// once warmed up at a fixed (d, n) and shard count (worker threads
    /// aside — those are scoped and carry no scratch state).
    #[test]
    fn parallel_engine_does_not_allocate_after_warmup() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ffc = Ffc::new(2, 10);
        let total = ffc.graph().len();
        let mut scratch = EmbedScratch::new();
        let mut rng = StdRng::seed_from_u64(77);
        for shards in [1usize, 3] {
            let _ = ffc.embed_into_parallel(&mut scratch, &[], shards);
            let _ = ffc.embed_into_parallel(&mut scratch, &[1], shards);
            let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
            let _ = ffc.embed_into_parallel(&mut scratch, &heavy, shards);
            let warm = scratch.allocated_bytes();
            for trial in 0..60 {
                let f = [0usize, 5, 40, 300][trial % 4];
                let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
                let _ = ffc.embed_into_parallel(&mut scratch, &faults, shards);
                assert_eq!(
                    scratch.allocated_bytes(),
                    warm,
                    "scratch grew on trial {trial} x{shards}"
                );
            }
        }
    }

    /// Satellite regression: oversized spaces are rejected with the typed
    /// error before any table is allocated, instead of truncating node
    /// ids in release builds.
    #[test]
    fn try_new_rejects_oversized_spaces() {
        // B(2,32) has 2^32 nodes — one past the u32 id space.
        let err = Ffc::try_new(2, 32).expect_err("B(2,32) must not fit u32 ids");
        assert_eq!(err.n_nodes, Some(1 << 32));
        // B(2,64) overflows u64 entirely.
        let err = Ffc::try_new(2, 64).expect_err("B(2,64) overflows u64");
        assert_eq!(err.n_nodes, None);
        // In-range shapes still construct.
        assert!(Ffc::try_new(2, 10).is_ok());
        assert!(Ffc::try_with_shards(3, 3, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn new_panics_on_oversized_spaces() {
        let _ = Ffc::new(2, 32);
    }

    #[test]
    fn embed_into_from_matches_embed_from() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let root = g.node("012").unwrap();
        let faults = vec![g.node("020").unwrap()];
        let mut scratch = EmbedScratch::new();
        let stats = ffc.embed_into_from(&mut scratch, &faults, root);
        let out = ffc.embed_from(&faults, root);
        assert_eq!(stats.root, out.root);
        assert_eq!(scratch.cycle(), &out.cycle[..]);
    }
}
