//! The fault-free cycle (FFC) algorithm for node failures (Chapter 2).
//!
//! Given a set of faulty processors in B(d,n), the algorithm
//!
//! 1. declares every necklace containing a faulty node *faulty* and removes
//!    it, keeping the component B* of what remains that contains the root;
//! 2. builds a spanning tree T of the necklace adjacency graph N* from the
//!    propagation pattern of a broadcast out of the root R (each w-labeled
//!    subtree T_w has height one because nodes wα and wβ share their
//!    earliest predecessor);
//! 3. turns every T_w into a directed cycle of w-edges (the modified tree
//!    D) and reads off a successor function: node αw leaves its necklace
//!    through the w-edge of D if its necklace has one, and otherwise
//!    follows its own necklace.
//!
//! The resulting successor function traces a Hamiltonian cycle of B*
//! (Proposition 2.1). When f ≤ d−2 processors fail the cycle has length at
//! least d^n − n·f and the broadcast finishes within 2n rounds
//! (Proposition 2.2); a single failure in the binary graph still leaves a
//! cycle of length ≥ 2^n − (n+1) (Proposition 2.3).
//!
//! This module is the *centralized* reference implementation; the
//! message-passing version that mirrors Section 2.4 round by round lives in
//! the `dbg-netsim` crate and is checked against this one.

use std::collections::HashMap;

use dbg_graph::algo::bfs::bfs_tree;
use dbg_graph::algo::components::strongly_connected_components;
use dbg_graph::{DeBruijn, Topology};
use dbg_necklace::NecklacePartition;

/// The FFC embedder for a fixed B(d,n): owns the necklace partition so that
/// repeated embeddings (e.g. the Monte-Carlo sweeps of Tables 2.1/2.2) do
/// not recompute it.
#[derive(Clone, Debug)]
pub struct Ffc {
    graph: DeBruijn,
    partition: NecklacePartition,
}

/// The result of one FFC embedding.
#[derive(Clone, Debug)]
pub struct FfcOutcome {
    /// The root processor R used for the broadcast (always the minimal node
    /// of its necklace).
    pub root: usize,
    /// The fault-free cycle, as a sequence of node ids. Its length equals
    /// the size of B*. A single-node "cycle" is only meaningful when that
    /// node carries a self-loop (the constant words).
    pub cycle: Vec<usize>,
    /// |B*|: the number of nodes in the surviving component of the root.
    pub component_size: usize,
    /// The eccentricity of the root within B* — the number of broadcast
    /// rounds Step 1.1 needs (the K of the O(K + n) bound).
    pub eccentricity: usize,
    /// Number of faulty necklaces removed.
    pub faulty_necklaces: usize,
    /// Total number of nodes removed with the faulty necklaces (N_F ≤ n·f).
    pub removed_nodes: usize,
}

impl FfcOutcome {
    /// The paper's guaranteed minimum cycle length d^n − n·f for `f` faults
    /// (meaningful when f ≤ d−2).
    #[must_use]
    pub fn guarantee(d: u64, n: u32, faults: usize) -> usize {
        let total = dbg_algebra::num::pow(d, n) as usize;
        total.saturating_sub(n as usize * faults)
    }
}

/// A de Bruijn graph restricted to an alive-node mask, used internally for
/// component and BFS computations without materialising subgraphs.
struct Masked<'a> {
    graph: &'a DeBruijn,
    alive: &'a [bool],
}

impl Topology for Masked<'_> {
    fn node_count(&self) -> usize {
        self.graph.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        if !self.alive[v] {
            return;
        }
        self.graph.for_each_successor(v, &mut |u| {
            if self.alive[u] {
                visit(u);
            }
        });
    }
}

impl Ffc {
    /// Creates the embedder for B(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        let graph = DeBruijn::new(d, n);
        let partition = NecklacePartition::new(graph.space());
        Ffc { graph, partition }
    }

    /// The underlying de Bruijn graph.
    #[must_use]
    pub fn graph(&self) -> &DeBruijn {
        &self.graph
    }

    /// The necklace partition of the node set.
    #[must_use]
    pub fn partition(&self) -> &NecklacePartition {
        &self.partition
    }

    /// The default root R = 0…01 used by the paper's simulations.
    #[must_use]
    pub fn default_root(&self) -> usize {
        1
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at the
    /// default root R = 0…01 (if R's necklace is faulty, the nearest
    /// non-faulty node found by a breadth-first probe is used instead,
    /// matching the protocol of Section 2.5.2).
    #[must_use]
    pub fn embed(&self, faulty_nodes: &[usize]) -> FfcOutcome {
        let faulty_mask = self.faulty_necklace_mask(faulty_nodes);
        let root = self.pick_root(self.default_root(), &faulty_mask);
        self.embed_with_mask(root, &faulty_mask)
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at (the
    /// necklace representative of) `root`.
    ///
    /// # Panics
    /// Panics if `root`'s necklace is itself faulty.
    #[must_use]
    pub fn embed_from(&self, faulty_nodes: &[usize], root: usize) -> FfcOutcome {
        let faulty_mask = self.faulty_necklace_mask(faulty_nodes);
        assert!(
            !faulty_mask[self.partition.id_of(root as u64)],
            "the requested root lies on a faulty necklace"
        );
        self.embed_with_mask(root, &faulty_mask)
    }

    /// The boolean per-necklace fault mask induced by a set of faulty nodes.
    #[must_use]
    pub fn faulty_necklace_mask(&self, faulty_nodes: &[usize]) -> Vec<bool> {
        for &v in faulty_nodes {
            assert!(v < self.graph.len(), "faulty node id {v} out of range");
        }
        self.partition
            .faulty_necklaces(faulty_nodes.iter().map(|&v| v as u64))
    }

    /// Picks a live root: `preferred` if its necklace survives, otherwise
    /// the nearest live node found by BFS from `preferred` over the full
    /// graph (ignoring faults while searching), otherwise the smallest live
    /// node.
    #[must_use]
    pub fn pick_root(&self, preferred: usize, faulty_mask: &[bool]) -> usize {
        let alive = |v: usize| !faulty_mask[self.partition.id_of(v as u64)];
        if alive(preferred) {
            return preferred;
        }
        let tree = bfs_tree(&self.graph, preferred);
        if let Some(&v) = tree.order.iter().find(|&&v| alive(v)) {
            return v;
        }
        (0..self.graph.len())
            .find(|&v| alive(v))
            .expect("every node of B(d,n) lies on a faulty necklace")
    }

    fn embed_with_mask(&self, root: usize, faulty_mask: &[bool]) -> FfcOutcome {
        let space = self.graph.space();
        let d = self.graph.d();
        let suffix_count = space.msd_place();
        let n_nodes = self.graph.len();

        // Root is normalised to the minimal node of its necklace so that
        // N(R) = [R], as Step 1.1 requires.
        let root = space.canonical_rotation(root as u64) as usize;

        // Per-node aliveness induced by the necklace fault mask.
        let alive: Vec<bool> = (0..n_nodes)
            .map(|v| !faulty_mask[self.partition.id_of(v as u64)])
            .collect();
        let faulty_necklaces = faulty_mask.iter().filter(|&&b| b).count();
        let removed_nodes = alive.iter().filter(|&&a| !a).count();

        // B*: the strongly connected component of the surviving graph that
        // contains the root. (The paper's "component" of a digraph.)
        let masked = Masked {
            graph: &self.graph,
            alive: &alive,
        };
        let mut in_bstar = vec![false; n_nodes];
        let sccs = strongly_connected_components(&masked);
        let comp = sccs
            .iter()
            .find(|c| c.contains(&root))
            .expect("the root always belongs to some component");
        for &v in comp {
            in_bstar[v] = true;
        }
        // Degenerate case: a dead root component (possible only if the root
        // itself was faulty, which pick_root prevents) — keep alive nodes only.
        let component_size = comp.len();

        // Necklaces are unions of cycles, so they are wholly inside or
        // wholly outside B*.
        debug_assert!((0..n_nodes).all(|v| {
            !in_bstar[v] || {
                let rep = self.partition.necklace_of(v as u64).representative() as usize;
                in_bstar[rep]
            }
        }));

        // Step 1.1: broadcast from the root over B* (synchronous BFS with
        // minimal-predecessor tie-breaking).
        let restricted = Masked {
            graph: &self.graph,
            alive: &in_bstar,
        };
        let tree = bfs_tree(&restricted, root);
        let eccentricity = tree.depth();

        // Step 1.2: spanning tree T of N*. For every non-root live necklace
        // pick the node Y that received the broadcast first (ties: minimal
        // id); the tree edge enters [Y]'s necklace from the necklace of Y's
        // BFS parent, labeled with Y's (n−1)-digit prefix.
        let root_necklace = self.partition.id_of(root as u64);
        // label w -> (parent necklace, children necklaces)
        let mut groups: HashMap<u64, (usize, Vec<usize>)> = HashMap::new();
        for (id, neck) in self.partition.necklaces().iter().enumerate() {
            if faulty_mask[id] || id == root_necklace {
                continue;
            }
            let rep = neck.representative() as usize;
            if !in_bstar[rep] {
                continue;
            }
            let chosen = neck
                .nodes(space)
                .into_iter()
                .map(|c| c as usize)
                .min_by_key(|&v| (tree.level[v], v))
                .expect("necklaces are non-empty");
            debug_assert!(tree.reached(chosen), "B* node not reached by the broadcast");
            let parent = tree.parent[chosen];
            let parent_necklace = self.partition.id_of(parent as u64);
            let label = chosen as u64 / d; // the (n−1)-digit prefix of Y
            debug_assert_eq!(parent as u64 % suffix_count, label);
            let entry = groups.entry(label).or_insert((parent_necklace, Vec::new()));
            debug_assert_eq!(
                entry.0, parent_necklace,
                "T_w must have a single parent necklace (height-one property)"
            );
            entry.1.push(id);
        }

        // Step 2: modify each T_w into a directed cycle of w-edges (D).
        // Members are ordered by necklace representative, which coincides
        // with necklace id order.
        let mut d_edges: HashMap<(usize, u64), usize> = HashMap::new();
        for (&label, (parent, children)) in &groups {
            let mut members = children.clone();
            members.push(*parent);
            members.sort_unstable();
            members.dedup();
            let k = members.len();
            for i in 0..k {
                d_edges.insert((members[i], label), members[(i + 1) % k]);
            }
        }

        // Step 3: successor function and cycle extraction.
        let successor = |v: usize| -> usize {
            let w = v as u64 % suffix_count; // suffix of v = label of its exit edge
            let my_necklace = self.partition.id_of(v as u64);
            if let Some(&target) = d_edges.get(&(my_necklace, w)) {
                // Leave the necklace: successor is wβ where βw lies on the
                // target necklace.
                for beta in 0..d {
                    let entering = w * d + beta; // the node wβ
                    let beta_w = beta * suffix_count + w; // the node βw (same necklace)
                    if self.partition.id_of(beta_w) == target {
                        debug_assert!(in_bstar[entering as usize]);
                        return entering as usize;
                    }
                }
                unreachable!("a w-edge of D always has an entry node on the target necklace");
            }
            // Stay on the necklace.
            space.rotate_left(v as u64) as usize
        };

        let mut cycle = Vec::with_capacity(component_size);
        let mut v = root;
        loop {
            cycle.push(v);
            v = successor(v);
            if v == root {
                break;
            }
            debug_assert!(
                cycle.len() <= component_size,
                "successor walk escaped B* or looped early"
            );
        }

        FfcOutcome {
            root,
            cycle,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::is_cycle;
    use dbg_graph::FaultSet;

    /// Checks that an outcome's cycle is a genuine simple cycle of the
    /// faulty graph that avoids every faulty necklace.
    fn check_outcome(d: u64, n: u32, faulty_nodes: &[usize], out: &FfcOutcome) {
        let ffc = Ffc::new(d, n);
        let mask = ffc.faulty_necklace_mask(faulty_nodes);
        // Every cycle node is live.
        for &v in &out.cycle {
            assert!(!mask[ffc.partition().id_of(v as u64)], "cycle visits a faulty necklace");
        }
        // The cycle is a simple cycle of the graph minus faulty necklaces.
        let dead: Vec<usize> = (0..ffc.graph().len())
            .filter(|&v| mask[ffc.partition().id_of(v as u64)])
            .collect();
        let faults = FaultSet::from_nodes(dead);
        let view = faults.view(ffc.graph());
        if out.cycle.len() > 1 {
            assert!(is_cycle(&view, &out.cycle), "FFC output is not a cycle");
        }
        assert_eq!(out.cycle.len(), out.component_size, "cycle must be Hamiltonian in B*");
    }

    #[test]
    fn no_faults_gives_hamiltonian_cycle() {
        for (d, n) in [(2u64, 4u32), (2, 6), (3, 3), (4, 2), (5, 2)] {
            let ffc = Ffc::new(d, n);
            let out = ffc.embed(&[]);
            assert_eq!(out.cycle.len(), ffc.graph().len(), "d={d} n={n}");
            assert_eq!(out.faulty_necklaces, 0);
            assert_eq!(out.removed_nodes, 0);
            check_outcome(d, n, &[], &out);
        }
    }

    #[test]
    fn example_2_1_reproduced() {
        // Faults at 020 and 112 in B(3,3): a 21-node fault-free cycle exists.
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
        let out = ffc.embed(&faults);
        assert_eq!(out.component_size, 21);
        assert_eq!(out.cycle.len(), 21);
        assert_eq!(out.faulty_necklaces, 2);
        assert_eq!(out.removed_nodes, 6);
        check_outcome(3, 3, &faults, &out);
    }

    #[test]
    fn proposition_2_2_guarantee_holds() {
        // For f ≤ d−2 faults the cycle has length ≥ d^n − n·f and the
        // broadcast depth is at most 2n.
        for (d, n) in [(3u64, 3u32), (4, 3), (5, 2), (4, 4)] {
            let ffc = Ffc::new(d, n);
            let total = ffc.graph().len();
            let max_f = (d - 2) as usize;
            // Exhaustive over single faults, plus structured multi-fault sets.
            for v in 0..total.min(80) {
                let out = ffc.embed(&[v]);
                assert!(
                    out.cycle.len() >= FfcOutcome::guarantee(d, n, 1),
                    "d={d} n={n} single fault at {v}: {} < {}",
                    out.cycle.len(),
                    FfcOutcome::guarantee(d, n, 1)
                );
                assert!(out.eccentricity <= 2 * n as usize);
            }
            if max_f >= 2 {
                // The paper's worst-case fault pattern {a^{n-1}(d-1)}.
                let space = ffc.graph().space();
                let worst: Vec<usize> = (0..max_f as u64)
                    .map(|a| {
                        let mut digits = vec![a; n as usize];
                        digits[n as usize - 1] = d - 1;
                        space.from_digits(&digits) as usize
                    })
                    .collect();
                let out = ffc.embed(&worst);
                assert!(out.cycle.len() >= FfcOutcome::guarantee(d, n, worst.len()));
                check_outcome(d, n, &worst, &out);
            }
        }
    }

    #[test]
    fn worst_case_pattern_is_tight() {
        // With faults {a^{n-1}(d-1) : 0 ≤ a ≤ f-1} each faulty necklace is
        // aperiodic and distinct, so exactly n·f nodes are removed and the
        // FFC cycle meets the optimum d^n − n·f exactly (Section 2.5).
        let (d, n) = (5u64, 3u32);
        let ffc = Ffc::new(d, n);
        let space = ffc.graph().space();
        for f in 1..=(d - 2) as usize {
            let faults: Vec<usize> = (0..f as u64)
                .map(|a| {
                    let mut digits = vec![a; n as usize];
                    digits[n as usize - 1] = d - 1;
                    space.from_digits(&digits) as usize
                })
                .collect();
            let out = ffc.embed(&faults);
            assert_eq!(out.cycle.len(), FfcOutcome::guarantee(d, n, f), "f={f}");
            check_outcome(d, n, &faults, &out);
        }
    }

    #[test]
    fn proposition_2_3_binary_single_fault() {
        // B(2,n) with one faulty node: cycle length ≥ 2^n − (n+1).
        for n in 4..=9u32 {
            let ffc = Ffc::new(2, n);
            let total = ffc.graph().len();
            for v in (0..total).step_by(7) {
                let out = ffc.embed(&[v]);
                let bound = total - (n as usize + 1);
                assert!(
                    out.cycle.len() >= bound,
                    "n={n} fault={v}: {} < {bound}",
                    out.cycle.len()
                );
                check_outcome(2, n, &[v], &out);
            }
        }
    }

    #[test]
    fn multiple_faults_on_same_necklace_cost_only_one_necklace() {
        let ffc = Ffc::new(3, 4);
        let g = ffc.graph();
        // 0112 and 1120 are rotations of each other.
        let faults = vec![g.node("0112").unwrap(), g.node("1120").unwrap()];
        let out = ffc.embed(&faults);
        assert_eq!(out.faulty_necklaces, 1);
        assert_eq!(out.removed_nodes, 4);
        assert_eq!(out.cycle.len(), 81 - 4);
        check_outcome(3, 4, &faults, &out);
    }

    #[test]
    fn root_is_rerouted_when_its_necklace_fails() {
        let ffc = Ffc::new(2, 5);
        // Fail the default root 00001 itself.
        let out = ffc.embed(&[1]);
        assert_ne!(out.root, 1);
        assert!(out.cycle.len() >= 32 - 6);
        check_outcome(2, 5, &[1], &out);
    }

    #[test]
    fn heavy_fault_load_still_yields_valid_cycle() {
        // Way beyond the d−2 guarantee: the algorithm still returns a valid
        // (possibly much shorter) cycle — this is what Tables 2.1/2.2 probe.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let ffc = Ffc::new(2, 8);
        for trial in 0..20 {
            let f = 5 + trial % 10;
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..256)).collect();
            let out = ffc.embed(&faults);
            check_outcome(2, 8, &faults, &out);
        }
    }

    #[test]
    fn embed_from_respects_requested_root() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let root = g.node("012").unwrap();
        let out = ffc.embed_from(&[g.node("020").unwrap()], root);
        // Root is normalised to its necklace representative — 012 already is.
        assert_eq!(out.root, root);
        assert!(out.cycle.contains(&root));
    }

    #[test]
    #[should_panic(expected = "faulty necklace")]
    fn embed_from_rejects_faulty_root() {
        let ffc = Ffc::new(3, 3);
        let g = ffc.graph();
        let _ = ffc.embed_from(&[g.node("012").unwrap()], g.node("120").unwrap());
    }

    #[test]
    fn guarantee_helper() {
        assert_eq!(FfcOutcome::guarantee(4, 6, 2), 4096 - 12);
        assert_eq!(FfcOutcome::guarantee(2, 10, 50), 1024 - 500);
        assert_eq!(FfcOutcome::guarantee(2, 3, 100), 0);
    }
}
