//! The batch sweep engine: Monte-Carlo sweeps as a first-class subsystem.
//!
//! The paper's headline experiments (Tables 2.1/2.2) re-run the FFC
//! embedding thousands of times per (d, n, f) cell. Before this module,
//! every sweep site re-implemented the same loop by hand: draw a fault
//! set, call [`Ffc::embed_into`] on a per-thread scratch, merge
//! accumulators under a mutex. The batch engine packages that loop behind
//! one deterministic, allocation-free API:
//!
//! * [`SweepPlan`] describes a whole sweep — the per-trial fault schedule,
//!   the trial count, and a seed from which **every trial's RNG stream is
//!   derived independently** ([`SweepPlan::trial_seed`]). Because trial t's
//!   fault draw depends only on `(seed, t)` and never on trials `0..t`,
//!   the same plan produces bit-identical results at any shard count, and
//!   a remote node (e.g. the `dbg-netsim` distributed sweep) can
//!   reconstruct any single trial without replaying the others.
//! * [`FaultDrawer`] draws a trial's fault set: a Fisher–Yates prefix
//!   shuffle of an identity permutation — byte-for-byte the same sample as
//!   `SliceRandom::partial_shuffle` on a fresh `0..n` array — whose swaps
//!   are undone after each draw so the buffer is reusable and trials stay
//!   independent. No allocation after warm-up.
//! * [`BatchEmbedder`] owns N sharded [`EmbedScratch`]es plus one
//!   [`FaultDrawer`] per shard, so a sweep fans out over scoped threads
//!   with zero shared mutable state and no locks: each shard runs a
//!   contiguous block of trials into its own accumulator, and the
//!   accumulators are merged in shard order (so `Vec` accumulators come
//!   back in global trial order).
//! * [`Ffc::embed_batch`] runs a plan: per trial it draws the fault set,
//!   embeds, and hands the result to a caller-supplied `record` closure as
//!   a [`Trial`] view. When the plan does not request cycles
//!   ([`SweepPlan::collect_cycles`]), the per-trial embedding takes the
//!   stats-only fast path ([`Ffc::embed_stats_into`]), which skips the
//!   spanning-tree, successor-function and cycle-readoff phases entirely —
//!   the dominant win for component-size/eccentricity sweeps like
//!   Tables 2.1/2.2.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ffc::{EmbedScratch, EmbedStats, Ffc, RingMaintainer};

/// Per-trial fault-count schedule of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Every trial draws the same number of faults — one Table 2.1/2.2 row.
    Constant(usize),
    /// Trial t draws `counts[t % counts.len()]` faults — the mixed-load
    /// schedule the engine benchmarks use (f cycling 0..=8).
    Cycling(Vec<usize>),
    /// **Nested** fault sets: one permutation is drawn for the whole row
    /// (from `trial_seed(0)`), and trial t's fault set is its first
    /// `counts[t % counts.len()]` elements. Consecutive trials therefore
    /// differ by single fault arrivals/repairs, which
    /// [`Ffc::embed_batch`] exploits by driving a [`RingMaintainer`]
    /// through `add_fault`/`clear_fault` deltas instead of re-embedding
    /// from scratch — the sweep analogue of an online fault stream. Each
    /// shard rebuilds once at its range start and repairs from there, so
    /// results stay bit-identical at any shard count (and identical to a
    /// serial loop of `embed_into` over the same prefixes).
    Nested(Vec<usize>),
}

impl FaultSchedule {
    /// The number of faults trial `trial` draws.
    ///
    /// # Panics
    /// Panics if a [`FaultSchedule::Cycling`] schedule is empty.
    #[must_use]
    pub fn faults_for(&self, trial: usize) -> usize {
        match self {
            FaultSchedule::Constant(f) => *f,
            FaultSchedule::Cycling(counts) | FaultSchedule::Nested(counts) => {
                assert!(!counts.is_empty(), "a cycling fault schedule needs counts");
                counts[trial % counts.len()]
            }
        }
    }

    /// The largest fault count any trial of this schedule draws.
    #[must_use]
    pub fn max_faults(&self) -> usize {
        match self {
            FaultSchedule::Constant(f) => *f,
            FaultSchedule::Cycling(counts) | FaultSchedule::Nested(counts) => {
                counts.iter().copied().max().unwrap_or(0)
            }
        }
    }
}

/// A deterministic description of one Monte-Carlo sweep: fault schedule,
/// trial count, seed, and whether per-trial cycles are materialised.
///
/// The plan is pure data — it owns no buffers — so it can be cloned,
/// serialised into experiment reports, or shipped to a distributed runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepPlan {
    schedule: FaultSchedule,
    trials: usize,
    seed: u64,
    collect_cycles: bool,
    embed_shards: usize,
}

impl SweepPlan {
    /// A plan running `trials` trials of `schedule` from `seed`, without
    /// cycle materialisation (the stats-only fast path).
    #[must_use]
    pub fn new(schedule: FaultSchedule, trials: usize, seed: u64) -> Self {
        SweepPlan {
            schedule,
            trials,
            seed,
            collect_cycles: false,
            embed_shards: 0,
        }
    }

    /// Requests (or disables) per-trial cycle materialisation. With cycles
    /// on, every trial runs the full [`Ffc::embed_into`] pipeline and
    /// [`Trial::cycle`] is `Some`; with cycles off (the default), trials
    /// take the cheaper [`Ffc::embed_stats_into`] path.
    #[must_use]
    pub fn collect_cycles(mut self, yes: bool) -> Self {
        self.collect_cycles = yes;
        self
    }

    /// Runs each full-cycle trial on the parallel engine
    /// ([`Ffc::embed_into_parallel`]) with `shards` shards (clamped to at
    /// least 1; without this call, trials run the serial
    /// [`Ffc::embed_into`]). Meaningful for plans with **few, huge**
    /// embeddings — e.g. one B(2,20) full-ring reconfiguration per trial
    /// — where the parallel engine wins even at `shards == 1` (no
    /// threads spawned) and per-embedding sharding beats the batch
    /// engine's trial-level sharding beyond that. The results are
    /// bit-identical either way; stats-only plans ignore the setting.
    #[must_use]
    pub fn embed_shards(mut self, shards: usize) -> Self {
        self.embed_shards = shards.max(1);
        self
    }

    /// The per-trial fault schedule.
    #[must_use]
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The number of trials the plan runs.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The plan seed all per-trial streams are derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether trials materialise their cycles.
    #[must_use]
    pub fn cycles_requested(&self) -> bool {
        self.collect_cycles
    }

    /// The per-embedding shard count full-cycle trials run with on the
    /// parallel engine, or 0 when the plan keeps the serial engine (the
    /// default).
    #[must_use]
    pub fn embed_shards_requested(&self) -> usize {
        self.embed_shards
    }

    /// The RNG seed of trial `trial`: a SplitMix64-style mix of the plan
    /// seed and the trial index. Depends only on `(seed, trial)`, never on
    /// other trials — the invariant that makes sharding bit-transparent.
    #[must_use]
    pub fn trial_seed(&self, trial: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((trial as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The contiguous block of trial indices shard `shard` of `shards`
    /// executes (empty when the shard count exceeds the trial count).
    #[must_use]
    pub fn shard_range(trials: usize, shards: usize, shard: usize) -> std::ops::Range<usize> {
        let per = trials.div_ceil(shards.max(1));
        let lo = (shard * per).min(trials);
        let hi = ((shard + 1) * per).min(trials);
        lo..hi
    }
}

/// Reusable fault-set drawing: a Fisher–Yates prefix shuffle over an
/// identity permutation, undone after every draw.
///
/// `draw(n, seed, f)` returns exactly the sample `partial_shuffle` would
/// produce on a fresh `(0..n)` array with `StdRng::seed_from_u64(seed)` —
/// the contract the batch-vs-serial differential tests pin down — while
/// reusing its buffers, so steady-state draws perform no heap allocation.
#[derive(Clone, Debug, Default)]
pub struct FaultDrawer {
    /// The identity permutation `0..n` (restored after every draw).
    nodes: Vec<usize>,
    /// The `j` index of each Fisher–Yates swap, for undoing in reverse.
    swaps: Vec<u32>,
    /// The drawn fault set of the most recent call.
    faults: Vec<usize>,
}

impl FaultDrawer {
    /// Creates an empty drawer; buffers are sized lazily by the first draw.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws `f` distinct node ids out of `0..n_nodes` from the stream of
    /// `seed`. The returned slice lives in the drawer's buffer and is valid
    /// until the next draw.
    ///
    /// `f` is clamped to `n_nodes`: a schedule whose fault count meets or
    /// exceeds the graph size (easy to write when one plan sweeps graphs
    /// of very different sizes) draws every node exactly once instead of
    /// indexing out of bounds. The clamp is pinned by
    /// `draw_clamps_oversized_fault_counts`.
    pub fn draw(&mut self, n_nodes: usize, seed: u64, f: usize) -> &[usize] {
        assert!(
            u32::try_from(n_nodes).is_ok(),
            "fault drawing indexes nodes with u32"
        );
        if self.nodes.len() != n_nodes {
            self.nodes.clear();
            self.nodes.extend(0..n_nodes);
        }
        let f = f.min(n_nodes);
        let mut rng = StdRng::seed_from_u64(seed);
        self.swaps.clear();
        for i in 0..f {
            let j = rng.gen_range(i..n_nodes);
            self.swaps.push(j as u32);
            self.nodes.swap(i, j);
        }
        self.faults.clear();
        self.faults.extend_from_slice(&self.nodes[..f]);
        // Undo the swaps in reverse so the buffer is the identity again and
        // the next trial's draw is independent of this one.
        for i in (0..f).rev() {
            self.nodes.swap(i, self.swaps[i] as usize);
        }
        &self.faults
    }
}

/// One shard's private state: an embedding scratch, a fault drawer, and
/// the incremental machinery of [`FaultSchedule::Nested`] rows (a ring
/// maintainer plus the row's shared permutation and ring buffer).
#[derive(Clone, Debug, Default)]
struct Shard {
    scratch: EmbedScratch,
    drawer: FaultDrawer,
    maintainer: RingMaintainer,
    row: Vec<usize>,
    ring: Vec<usize>,
}

/// Sharded per-sweep state: N independent [`EmbedScratch`]es and fault
/// drawers. One embedder serves any number of [`Ffc::embed_batch`] calls
/// (including across plans and graph sizes — buffers only ever grow), so a
/// sweep over many (d, n, f) rows warms up exactly once.
#[derive(Clone, Debug)]
pub struct BatchEmbedder {
    shards: Vec<Shard>,
}

impl BatchEmbedder {
    /// Creates an embedder with `shards` shards (clamped to at least 1).
    /// Shards beyond the trial count of a plan simply run zero trials.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        BatchEmbedder {
            shards: vec![Shard::default(); shards.max(1)],
        }
    }

    /// The number of shards (worker threads a batch call fans out over).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// A mergeable per-shard accumulator. Each shard folds its trials into its
/// own `Default` instance; [`Ffc::embed_batch`] then merges the shard
/// accumulators **in shard order**, so order-sensitive accumulators (like
/// `Vec`) observe trials in global index order.
pub trait SweepAccumulator: Default + Send {
    /// Absorbs another shard's accumulator (its trials all have higher
    /// indices than `self`'s).
    fn merge(&mut self, other: Self);
}

impl<T: Send> SweepAccumulator for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

/// The per-trial view handed to the `record` closure of
/// [`Ffc::embed_batch`]. Borrows the shard's buffers — copy out whatever
/// must outlive the trial.
#[derive(Clone, Copy, Debug)]
pub struct Trial<'a> {
    /// Global trial index within the plan (0-based).
    pub index: usize,
    /// The fault set this trial drew.
    pub faults: &'a [usize],
    /// The embedding's scalar results.
    pub stats: EmbedStats,
    /// The fault-free cycle, when the plan requested cycles.
    pub cycle: Option<&'a [usize]>,
}

impl Ffc {
    /// Runs a whole Monte-Carlo sweep: for every trial of `plan`, draws the
    /// fault set from the trial's own seed, embeds, and folds the result
    /// into a per-shard accumulator via `record`; shard accumulators are
    /// merged in shard order and returned.
    ///
    /// Trials are split into contiguous blocks across the shards of
    /// `batch` and run on scoped threads (inline when the embedder has one
    /// shard). Because every trial's RNG stream is independent
    /// ([`SweepPlan::trial_seed`]), the result is **bit-identical for any
    /// shard count** — and identical to a serial loop of
    /// [`Ffc::embed_into`] over the same per-trial seeds, which the
    /// workspace's property tests pin down.
    ///
    /// After warm-up the per-trial loop performs no heap allocation; what
    /// the accumulator does in `record` is the caller's business.
    pub fn embed_batch<A, F>(&self, batch: &mut BatchEmbedder, plan: &SweepPlan, record: F) -> A
    where
        A: SweepAccumulator,
        F: Fn(&mut A, Trial<'_>) + Sync,
    {
        let shards = batch.shards.len();
        let trials = plan.trials();
        if shards == 1 || trials <= 1 {
            let mut acc = A::default();
            self.run_shard(&mut batch.shards[0], plan, 0..trials, &record, &mut acc);
            return acc;
        }
        let accs: Vec<A> = thread::scope(|scope| {
            let handles: Vec<_> = batch
                .shards
                .iter_mut()
                .enumerate()
                .map(|(k, shard)| {
                    let record = &record;
                    scope.spawn(move |_| {
                        let mut acc = A::default();
                        let range = SweepPlan::shard_range(trials, shards, k);
                        self.run_shard(shard, plan, range, record, &mut acc);
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep shard panicked"))
                .collect()
        })
        .expect("scoped sweep threads do not panic");
        let mut merged = A::default();
        for acc in accs {
            merged.merge(acc);
        }
        merged
    }

    /// One shard's trial loop.
    fn run_shard<A, F>(
        &self,
        shard: &mut Shard,
        plan: &SweepPlan,
        range: std::ops::Range<usize>,
        record: &F,
        acc: &mut A,
    ) where
        A: SweepAccumulator,
        F: Fn(&mut A, Trial<'_>) + Sync,
    {
        if matches!(plan.schedule(), FaultSchedule::Nested(_)) {
            return self.run_shard_nested(shard, plan, range, record, acc);
        }
        let n_nodes = self.graph().len();
        let Shard {
            scratch, drawer, ..
        } = shard;
        for trial in range {
            let f = plan.schedule().faults_for(trial);
            let faults = drawer.draw(n_nodes, plan.trial_seed(trial), f);
            let (stats, cycle) = if plan.cycles_requested() {
                let stats = if plan.embed_shards_requested() > 0 {
                    self.embed_into_parallel(scratch, faults, plan.embed_shards_requested())
                } else {
                    self.embed_into(scratch, faults)
                };
                (stats, Some(scratch.cycle()))
            } else {
                (self.embed_stats_into(scratch, faults), None)
            };
            record(
                acc,
                Trial {
                    index: trial,
                    faults,
                    stats,
                    cycle,
                },
            );
        }
    }

    /// The incremental trial loop of [`FaultSchedule::Nested`] rows: the
    /// shard draws the row's shared permutation once, rebuilds its
    /// [`RingMaintainer`] at the range's first prefix, and then absorbs
    /// each trial-to-trial difference as `add_fault`/`clear_fault` events.
    /// The recorded stats (and cycles, when requested) are identical to a
    /// from-scratch embed of each prefix — the maintainer's contract — so
    /// the sweep stays bit-identical at any shard count.
    fn run_shard_nested<A, F>(
        &self,
        shard: &mut Shard,
        plan: &SweepPlan,
        range: std::ops::Range<usize>,
        record: &F,
        acc: &mut A,
    ) where
        A: SweepAccumulator,
        F: Fn(&mut A, Trial<'_>) + Sync,
    {
        if range.is_empty() {
            return;
        }
        let n_nodes = self.graph().len();
        let Shard {
            drawer,
            maintainer,
            row,
            ring,
            ..
        } = shard;
        let schedule = plan.schedule();
        let max = schedule.max_faults().min(n_nodes);
        row.clear();
        row.extend_from_slice(drawer.draw(n_nodes, plan.trial_seed(0), max));
        if plan.embed_shards_requested() > 0 {
            // Retune in place: the warmed session buffers survive across
            // embed_batch calls.
            maintainer.set_shards(plan.embed_shards_requested());
        }
        let mut cur = schedule.faults_for(range.start).min(n_nodes);
        maintainer
            .reset(self, &row[..cur])
            .expect("drawer yields in-range fault ids");
        for trial in range {
            let q = schedule.faults_for(trial).min(n_nodes);
            while cur < q {
                maintainer
                    .add_fault(self, row[cur])
                    .expect("drawer yields in-range fault ids");
                cur += 1;
            }
            while cur > q {
                cur -= 1;
                maintainer
                    .clear_fault(self, row[cur])
                    .expect("drawer yields in-range fault ids");
            }
            let cycle = if plan.cycles_requested() {
                maintainer.ring_into(ring);
                Some(&ring[..])
            } else {
                None
            };
            record(
                acc,
                Trial {
                    index: trial,
                    faults: &row[..q],
                    stats: maintainer.stats(),
                    cycle,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    #[test]
    fn trial_seeds_are_position_independent_and_distinct() {
        let plan = SweepPlan::new(FaultSchedule::Constant(3), 100, 42);
        let same = SweepPlan::new(FaultSchedule::Constant(7), 10, 42);
        for t in 0..100 {
            // Seeds depend only on (seed, trial), not on schedule or count.
            if t < 10 {
                assert_eq!(plan.trial_seed(t), same.trial_seed(t));
            }
            for u in (t + 1)..100 {
                assert_ne!(plan.trial_seed(t), plan.trial_seed(u));
            }
        }
        assert_ne!(
            plan.trial_seed(0),
            SweepPlan::new(FaultSchedule::Constant(3), 100, 43).trial_seed(0)
        );
    }

    #[test]
    fn shard_ranges_partition_the_trials() {
        for trials in [0usize, 1, 7, 16, 100] {
            for shards in 1..=8usize {
                let mut covered = Vec::new();
                for k in 0..shards {
                    covered.extend(SweepPlan::shard_range(trials, shards, k));
                }
                assert_eq!(covered, (0..trials).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn fault_schedules_cover_constant_and_cycling() {
        let c = FaultSchedule::Constant(5);
        assert_eq!(c.faults_for(0), 5);
        assert_eq!(c.faults_for(999), 5);
        assert_eq!(c.max_faults(), 5);
        let cy = FaultSchedule::Cycling(vec![0, 1, 2]);
        assert_eq!(cy.faults_for(0), 0);
        assert_eq!(cy.faults_for(4), 1);
        assert_eq!(cy.max_faults(), 2);
    }

    #[test]
    fn drawer_matches_partial_shuffle_and_restores_identity() {
        let mut drawer = FaultDrawer::new();
        for (n, f, seed) in [
            (32usize, 5usize, 1u64),
            (100, 0, 2),
            (64, 64, 3),
            (10, 3, 4),
        ] {
            let drawn = drawer.draw(n, seed, f).to_vec();
            // Oracle: partial_shuffle on a fresh identity array.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut nodes: Vec<usize> = (0..n).collect();
            let (expected, _) = nodes.partial_shuffle(&mut rng, f);
            assert_eq!(drawn, expected, "n={n} f={f} seed={seed}");
            // The internal buffer is the identity again.
            assert_eq!(drawer.nodes, (0..n).collect::<Vec<_>>());
        }
    }

    /// A fault count at or beyond the node count must clamp to a full
    /// permutation draw — never index out of bounds — so large-graph sweep
    /// schedules can reuse fault counts written for larger graphs.
    #[test]
    fn draw_clamps_oversized_fault_counts() {
        let mut drawer = FaultDrawer::new();
        for (n, f) in [
            (10usize, 10usize),
            (10, 11),
            (10, 25),
            (10, usize::MAX),
            (1, 5),
        ] {
            let drawn = drawer.draw(n, 99, f).to_vec();
            assert_eq!(drawn.len(), n, "n={n} f={f}");
            let mut sorted = drawn.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n} f={f}");
            // The clamped draw is exactly the f == n draw, so schedules
            // stay deterministic whichever oversized count they carry.
            assert_eq!(drawn, drawer.draw(n, 99, n).to_vec(), "n={n} f={f}");
            // And the drawer is reusable afterwards (identity restored).
            assert_eq!(drawer.nodes, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn drawer_is_history_independent() {
        let mut a = FaultDrawer::new();
        let mut b = FaultDrawer::new();
        // a draws a bunch of unrelated sets first; b draws cold.
        for t in 0..20u64 {
            let _ = a.draw(64, t, 7);
        }
        assert_eq!(a.draw(64, 1234, 5), b.draw(64, 1234, 5));
    }

    #[test]
    fn batch_merges_vec_accumulators_in_trial_order() {
        let ffc = Ffc::new(2, 6);
        let plan = SweepPlan::new(FaultSchedule::Cycling(vec![0, 1, 2, 3]), 23, 99);
        let mut batch = BatchEmbedder::new(4);
        let order: Vec<usize> =
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<usize>, trial| {
                acc.push(trial.index);
            });
        assert_eq!(order, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn batch_is_shard_count_invariant() {
        let ffc = Ffc::new(3, 3);
        let plan =
            SweepPlan::new(FaultSchedule::Cycling(vec![0, 1, 2, 5]), 37, 7).collect_cycles(true);
        type Row = (usize, Vec<usize>, usize, usize, Vec<usize>);
        let collect = |shards: usize| -> Vec<Row> {
            let mut batch = BatchEmbedder::new(shards);
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<_>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats.component_size,
                    trial.stats.eccentricity,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            })
        };
        let one = collect(1);
        assert_eq!(one.len(), 37);
        for shards in [2usize, 3, 5, 8, 64] {
            assert_eq!(collect(shards), one, "shards={shards}");
        }
    }

    /// A full-cycle plan on the parallel engine must reproduce the serial
    /// plan bit for bit — faults, stats and cycles — whatever the
    /// combination of trial-level and embedding-level sharding.
    #[test]
    fn batch_with_parallel_embeds_matches_serial_engine() {
        let ffc = Ffc::new(2, 6);
        type Row = (usize, Vec<usize>, EmbedStats, Vec<usize>);
        let collect = |embed_shards: usize, batch_shards: usize| -> Vec<Row> {
            let plan = SweepPlan::new(FaultSchedule::Cycling(vec![0, 1, 3, 6]), 19, 11)
                .collect_cycles(true)
                .embed_shards(embed_shards);
            let mut batch = BatchEmbedder::new(batch_shards);
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            })
        };
        let want = {
            let plan = SweepPlan::new(FaultSchedule::Cycling(vec![0, 1, 3, 6]), 19, 11)
                .collect_cycles(true);
            let mut batch = BatchEmbedder::new(1);
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            })
        };
        assert_eq!(want.len(), 19);
        // embed_shards(1) selects the single-threaded parallel engine —
        // still bit-identical to the serial default above.
        for (embed_shards, batch_shards) in [(1usize, 1usize), (2, 1), (3, 2), (5, 4)] {
            assert_eq!(
                collect(embed_shards, batch_shards),
                want,
                "embed x{embed_shards} batch x{batch_shards}"
            );
        }
    }

    /// A nested plan's trials must be bit-identical to a serial loop of
    /// from-scratch embeds over the same prefixes — stats, fault slices
    /// and cycles — at every shard count (each shard rebuilds once at its
    /// range start, then repairs incrementally).
    #[test]
    fn nested_plan_matches_from_scratch_prefix_loop_at_any_shard_count() {
        let ffc = Ffc::new(2, 6);
        let total = ffc.graph().len();
        // Counts rise and fall so both add_fault and clear_fault deltas
        // run mid-row; 0 forces a full clear-down.
        let counts = vec![0usize, 1, 3, 6, 4, 2, 5, 0, 2];
        let plan =
            SweepPlan::new(FaultSchedule::Nested(counts.clone()), 31, 0xAB).collect_cycles(true);
        // Serial oracle: embed each prefix of the shared permutation.
        let mut drawer = FaultDrawer::new();
        let row = drawer
            .draw(
                total,
                plan.trial_seed(0),
                counts.iter().copied().max().unwrap(),
            )
            .to_vec();
        let mut scratch = EmbedScratch::new();
        type Row = (usize, Vec<usize>, EmbedStats, Vec<usize>);
        let want: Vec<Row> = (0..plan.trials())
            .map(|t| {
                let f = counts[t % counts.len()];
                let faults = row[..f].to_vec();
                let stats = ffc.embed_into(&mut scratch, &faults);
                (t, faults, stats, scratch.cycle().to_vec())
            })
            .collect();
        for shards in [1usize, 2, 5] {
            let mut batch = BatchEmbedder::new(shards);
            let got: Vec<Row> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<Row>, trial| {
                acc.push((
                    trial.index,
                    trial.faults.to_vec(),
                    trial.stats,
                    trial.cycle.expect("plan requested cycles").to_vec(),
                ));
            });
            assert_eq!(got, want, "shards={shards}");
        }
    }

    /// Stats-only nested plans match `embed_stats_into` per prefix and
    /// report no cycles.
    #[test]
    fn nested_stats_only_plan_matches_stats_path() {
        let ffc = Ffc::new(3, 3);
        let total = ffc.graph().len();
        let counts = vec![2usize, 4, 1, 5, 3];
        let plan = SweepPlan::new(FaultSchedule::Nested(counts.clone()), 17, 9);
        let mut drawer = FaultDrawer::new();
        let row = drawer.draw(total, plan.trial_seed(0), 5).to_vec();
        let mut scratch = EmbedScratch::new();
        let mut batch = BatchEmbedder::new(3);
        let got: Vec<(Vec<usize>, EmbedStats, bool)> =
            ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<_>, trial| {
                acc.push((trial.faults.to_vec(), trial.stats, trial.cycle.is_some()));
            });
        assert_eq!(got.len(), 17);
        for (t, (faults, stats, has_cycle)) in got.iter().enumerate() {
            let f = counts[t % counts.len()];
            assert_eq!(faults, &row[..f], "prefix of trial {t}");
            let want = ffc.embed_stats_into(&mut scratch, faults);
            assert_eq!(*stats, want, "trial {t}");
            assert!(!has_cycle);
        }
    }

    #[test]
    fn stats_only_plan_reports_no_cycles() {
        let ffc = Ffc::new(2, 5);
        let plan = SweepPlan::new(FaultSchedule::Constant(2), 9, 1);
        let mut batch = BatchEmbedder::new(2);
        let cycles: Vec<bool> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<bool>, trial| {
            acc.push(trial.cycle.is_some());
        });
        assert_eq!(cycles, vec![false; 9]);
    }

    #[test]
    fn zero_trials_yields_the_default_accumulator() {
        let ffc = Ffc::new(2, 4);
        let plan = SweepPlan::new(FaultSchedule::Constant(1), 0, 5);
        let mut batch = BatchEmbedder::new(3);
        let out: Vec<usize> = ffc.embed_batch(&mut batch, &plan, |acc: &mut Vec<usize>, trial| {
            acc.push(trial.index);
        });
        assert!(out.is_empty());
    }
}
