//! Closed-form fault-tolerance bounds: ψ(d) and φ(d).
//!
//! * ψ(d) (Proposition 3.1 / 3.2, Table 3.1) is the number of pairwise
//!   edge-disjoint Hamiltonian cycles this workspace can construct in
//!   B(d,n); a fortiori B(d,n) tolerates ψ(d) − 1 link failures while
//!   keeping a fault-free Hamiltonian cycle.
//! * φ(d) (Section 3.3, written "cp(d)" in the thesis) is the direct
//!   edge-fault tolerance `Σ p_i^{e_i} − 2k` obtained from Proposition 3.3;
//!   for a prime power it equals d − 2, which is optimal.
//! * The combined bound MAX{ψ(d) − 1, φ(d)} is Proposition 3.4 (Table 3.2).

use dbg_algebra::num::{factorize, mod_pow, pow, primitive_roots};

/// Whether the odd prime `p` satisfies condition (b) of Lemma 3.5: there is
/// a primitive root λ of Z_p and *odd* exponents A, B with λ^A + λ^B ≡ 2.
/// (Condition (a) — 2 is a nonresidue, i.e. 2 = λ^A with A odd — always
/// holds when (b) fails, by Lemma 3.5.)
#[must_use]
pub fn condition_b(p: u64) -> bool {
    assert!(p % 2 == 1 && p > 2, "condition_b is defined for odd primes");
    decompose_two_as_odd_powers(p).is_some()
}

/// Finds a primitive root λ of Z_p and odd exponents (A, B) with
/// λ^A + λ^B ≡ 2 (mod p), if any exist. Used by Strategy 2 of Section 3.2.1.
#[must_use]
pub fn decompose_two_as_odd_powers(p: u64) -> Option<(u64, u32, u32)> {
    for lambda in primitive_roots(p) {
        // Precompute λ^k for k in 1..p-1.
        let mut powers = vec![0u64; (p - 1) as usize + 1];
        for (k, slot) in powers.iter_mut().enumerate().skip(1) {
            *slot = mod_pow(lambda, k as u64, p);
        }
        for a in (1..p as usize).step_by(2) {
            for b in (a..p as usize).step_by(2) {
                if (powers[a] + powers[b]) % p == 2 % p {
                    return Some((lambda, a as u32, b as u32));
                }
            }
        }
    }
    None
}

/// Finds a primitive root λ of Z_p and an odd exponent A with λ^A ≡ 2
/// (condition (a) of Lemma 3.5; holds exactly when 2 is a quadratic
/// nonresidue of p, i.e. p ≡ ±3 (mod 8)). Used by Strategy 3.
#[must_use]
pub fn two_as_odd_power(p: u64) -> Option<(u64, u32)> {
    for lambda in primitive_roots(p) {
        for a in (1..p).step_by(2) {
            if mod_pow(lambda, a, p) == 2 % p {
                return Some((lambda, a as u32));
            }
        }
    }
    None
}

/// ψ for a prime power p^e (Proposition 3.1):
/// * p = 2 → p^e − 1 (Strategy 1, optimal),
/// * p odd, (p−1)/2 even and condition (b) of Lemma 3.5 → (p^e + 1)/2,
/// * otherwise → (p^e − 1)/2.
#[must_use]
pub fn psi_prime_power(p: u64, e: u32) -> u64 {
    let q = pow(p, e);
    if p == 2 {
        q - 1
    } else if ((p - 1) / 2).is_multiple_of(2) && condition_b(p) {
        q.div_ceil(2)
    } else {
        (q - 1) / 2
    }
}

/// ψ(d): the guaranteed number of pairwise edge-disjoint Hamiltonian cycles
/// in B(d,n), multiplicative over the prime-power factorization of d
/// (Proposition 3.2, Table 3.1).
#[must_use]
pub fn psi(d: u64) -> u64 {
    assert!(d >= 2, "psi is defined for d >= 2");
    factorize(d)
        .into_iter()
        .map(|(p, e)| psi_prime_power(p, e))
        .product()
}

/// φ(d) = Σ p_i^{e_i} − 2k for d = p_1^{e_1}…p_k^{e_k}: the number of edge
/// faults Proposition 3.3 tolerates while keeping a Hamiltonian cycle. For
/// a prime power this is d − 2, which is optimal.
#[must_use]
pub fn phi_edge_bound(d: u64) -> u64 {
    assert!(d >= 2, "phi_edge_bound is defined for d >= 2");
    let f = factorize(d);
    let sum: u64 = f.iter().map(|&(p, e)| pow(p, e)).sum();
    sum - 2 * f.len() as u64
}

/// MAX{ψ(d) − 1, φ(d)}: the edge-fault tolerance of Proposition 3.4
/// (Table 3.2).
#[must_use]
pub fn edge_fault_tolerance(d: u64) -> u64 {
    psi(d).saturating_sub(1).max(phi_edge_bound(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_matches_table_3_1() {
        // Table 3.1: ψ(d) for 2 ≤ d ≤ 38.
        let expected: [(u64, u64); 37] = [
            (2, 1),
            (3, 1),
            (4, 3),
            (5, 2),
            (6, 1),
            (7, 3),
            (8, 7),
            (9, 4),
            (10, 2),
            (11, 5),
            (12, 3),
            (13, 7),
            (14, 3),
            (15, 2),
            (16, 15),
            (17, 9),
            (18, 4),
            (19, 9),
            (20, 6),
            (21, 3),
            (22, 5),
            (23, 11),
            (24, 7),
            (25, 12),
            (26, 7),
            (27, 13),
            (28, 9),
            (29, 15),
            (30, 2),
            (31, 15),
            (32, 31),
            (33, 5),
            (34, 9),
            (35, 6),
            (36, 12),
            (37, 19),
            (38, 9),
        ];
        for (d, want) in expected {
            assert_eq!(psi(d), want, "psi({d})");
        }
    }

    #[test]
    fn phi_and_max_match_table_3_2() {
        // Prime powers: φ(d) = d − 2.
        for d in [
            2u64, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32,
        ] {
            assert_eq!(phi_edge_bound(d), d - 2, "phi({d})");
        }
        // Composite entries spot-checked against Table 3.2.
        let expected: [(u64, u64); 13] = [
            (6, 1),
            (10, 3),
            (12, 3),
            (14, 5),
            (15, 4),
            (20, 5),
            (21, 6),
            (22, 9),
            (24, 7),
            (26, 11),
            (30, 4),
            (34, 15),
            (35, 8),
        ];
        for (d, want) in expected {
            assert_eq!(edge_fault_tolerance(d), want, "MAX{{psi-1, phi}}({d})");
        }
        // d = 28 is the sole tabulated value where ψ−1 beats φ.
        assert_eq!(phi_edge_bound(28), 7);
        assert_eq!(psi(28) - 1, 8);
        assert_eq!(edge_fault_tolerance(28), 8);
    }

    #[test]
    fn condition_b_known_cases() {
        // p = 13: 2 ≡ 7 + 7^9 with 7 a primitive root (Example 3.3).
        assert!(condition_b(13));
        let (lambda, a, b) = decompose_two_as_odd_powers(13).unwrap();
        assert!(a % 2 == 1 && b % 2 == 1);
        assert_eq!(
            (mod_pow(lambda, u64::from(a), 13) + mod_pow(lambda, u64::from(b), 13)) % 13,
            2
        );
        // p = 5: only condition (a) holds (the text notes this after Lemma 3.5).
        assert!(!condition_b(5));
        assert!(two_as_odd_power(5).is_some());
    }

    #[test]
    fn lemma_3_5_at_least_one_condition_holds() {
        for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43] {
            let a = two_as_odd_power(p).is_some();
            let b = condition_b(p);
            assert!(a || b, "Lemma 3.5 violated for p = {p}");
            // Condition (a) ⟺ 2 is a nonresidue ⟺ p ≡ ±3 (mod 8).
            let pm8 = p % 8;
            assert_eq!(
                a,
                pm8 == 3 || pm8 == 5,
                "condition (a) parity check for p = {p}"
            );
        }
    }

    #[test]
    fn two_as_odd_power_is_correct_when_found() {
        for p in [3u64, 5, 11, 13, 19, 29, 37] {
            if let Some((lambda, a)) = two_as_odd_power(p) {
                assert_eq!(a % 2, 1);
                assert_eq!(mod_pow(lambda, u64::from(a), p), 2 % p);
            }
        }
    }

    #[test]
    fn psi_is_multiplicative_over_coprime_factors() {
        assert_eq!(psi(36), psi(4) * psi(9));
        assert_eq!(psi(30), psi(2) * psi(3) * psi(5));
        assert_eq!(psi(20), psi(4) * psi(5));
    }

    #[test]
    fn corollary_3_2_lower_bound() {
        // ψ(d) ≥ φ_euler(d) / 2^k.
        use dbg_algebra::num::euler_phi;
        for d in 2..=38u64 {
            let k = factorize(d).len() as u32;
            assert!(
                psi(d) >= euler_phi(d) / 2u64.pow(k),
                "Corollary 3.2 fails at d = {d}"
            );
        }
    }
}
