//! Circular sequences vs node cycles (Section 3.1).
//!
//! Chapter 3 moves freely between two representations of a closed walk of
//! B(d,n):
//!
//! * a **circular symbol sequence** `[c_0, c_1, …, c_{k−1}]` over Z_d, where
//!   the i-th node of the walk is the window `c_i c_{i+1} … c_{i+n−1}`; and
//! * the explicit **node sequence** of those windows.
//!
//! The sequence form is what linear recurrences and the Rees product
//! produce; the node form is what the graph layer verifies and what rings
//! are ultimately used as. This module converts between them.

use dbg_algebra::words::WordSpace;

/// Converts a circular symbol sequence into the node cycle it denotes in
/// B(d,n): node i is the window of length n starting at position i.
/// The sequence length must be at least 1; the result has the same length.
#[must_use]
pub fn nodes_from_symbols(space: WordSpace, symbols: &[u64]) -> Vec<usize> {
    let k = symbols.len();
    assert!(k >= 1, "empty symbol sequence");
    let n = space.n() as usize;
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let window: Vec<u64> = (0..n).map(|j| symbols[(i + j) % k]).collect();
        out.push(space.from_digits(&window) as usize);
    }
    out
}

/// Converts a node cycle back into its circular symbol sequence: symbol i is
/// the leading digit of node i. (Inverse of [`nodes_from_symbols`] whenever
/// the node sequence really is a walk of B(d,n).)
#[must_use]
pub fn symbols_from_nodes(space: WordSpace, nodes: &[usize]) -> Vec<u64> {
    nodes.iter().map(|&v| space.digit(v as u64, 1)).collect()
}

/// Whether a circular symbol sequence denotes a *cycle* (all windows
/// distinct), per the criterion of Section 3.1.
#[must_use]
pub fn is_cycle_sequence(space: WordSpace, symbols: &[u64]) -> bool {
    let nodes = nodes_from_symbols(space, symbols);
    let mut sorted = nodes.clone();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len() == nodes.len()
}

/// The (n+1)-symbol windows of a circular sequence: these are the *edges*
/// of the walk (Section 3.1: "(n+1)-tuples correspond to edges"). Each edge
/// is encoded as a base-d integer with n+1 digits.
#[must_use]
pub fn edge_codes(space: WordSpace, symbols: &[u64]) -> Vec<u64> {
    let k = symbols.len();
    let n = space.n() as usize;
    let d = space.d();
    (0..k)
        .map(|i| {
            let mut code = 0u64;
            for j in 0..=n {
                code = code * d + symbols[(i + j) % k];
            }
            code
        })
        .collect()
}

/// The edge code of the de Bruijn edge `u → v` (u's digits followed by v's
/// last digit), matching the encoding of [`edge_codes`].
#[must_use]
pub fn edge_code_of(space: WordSpace, u: usize, v: usize) -> u64 {
    u as u64 * space.d() + (v as u64 % space.d())
}

/// Adds the field/ring element `s` to every symbol of a sequence using the
/// provided addition — the translate `s + C` of Lemma 3.1.
#[must_use]
pub fn translate<F: Fn(u64, u64) -> u64>(symbols: &[u64], s: u64, add: F) -> Vec<u64> {
    symbols.iter().map(|&c| add(s, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_sequence_from_section_3_1() {
        // [0,1,2,1,2] denotes the 5-cycle (012, 121, 212, 120, 201) in B(3,3).
        let space = WordSpace::new(3, 3);
        let nodes = nodes_from_symbols(space, &[0, 1, 2, 1, 2]);
        let labels: Vec<String> = nodes.iter().map(|&v| space.format(v as u64)).collect();
        assert_eq!(labels, vec!["012", "121", "212", "120", "201"]);
        assert!(is_cycle_sequence(space, &[0, 1, 2, 1, 2]));
        assert_eq!(symbols_from_nodes(space, &nodes), vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn repeated_window_is_not_a_cycle() {
        let space = WordSpace::new(2, 2);
        // 0,1,0,1 has windows 01,10,01,10 — a closed walk but not a cycle.
        assert!(!is_cycle_sequence(space, &[0, 1, 0, 1]));
        assert!(is_cycle_sequence(space, &[0, 1]));
    }

    #[test]
    fn edges_are_n_plus_1_windows() {
        let space = WordSpace::new(2, 2);
        let symbols = [0u64, 0, 1, 1];
        let edges = edge_codes(space, &symbols);
        // Windows of length 3: 001, 011, 110, 100 → codes 1, 3, 6, 4.
        assert_eq!(edges, vec![1, 3, 6, 4]);
        let nodes = nodes_from_symbols(space, &symbols);
        for (i, &e) in edges.iter().enumerate() {
            let u = nodes[i];
            let v = nodes[(i + 1) % nodes.len()];
            assert_eq!(edge_code_of(space, u, v), e);
        }
    }

    #[test]
    fn translate_adds_elementwise() {
        let doubled = translate(&[0, 1, 2], 1, |a, b| (a + b) % 3);
        assert_eq!(doubled, vec![1, 2, 0]);
    }

    #[test]
    fn node_symbol_roundtrip_on_hamiltonian_cycle() {
        // A de Bruijn sequence of order 3: 00010111.
        let space = WordSpace::new(2, 3);
        let symbols = [0u64, 0, 0, 1, 0, 1, 1, 1];
        assert!(is_cycle_sequence(space, &symbols));
        let nodes = nodes_from_symbols(space, &symbols);
        assert_eq!(nodes.len(), 8);
        assert_eq!(symbols_from_nodes(space, &nodes), symbols.to_vec());
    }
}
