//! Fault-tolerant ring embedding in de Bruijn networks.
//!
//! This crate is the primary contribution of the Rowley–Bose reproduction:
//! given a d-ary de Bruijn network B(d,n) with failed processors or failed
//! links, it finds the largest fault-free ring the theory guarantees.
//!
//! * [`ffc`] — the **fault-free cycle (FFC) algorithm** of Chapter 2:
//!   tolerate node failures by stitching non-faulty necklaces into a single
//!   cycle. For f ≤ d−2 failures the cycle has length at least d^n − n·f
//!   (Proposition 2.2), and for a single failure in the binary graph at
//!   least 2^n − (n+1) (Proposition 2.3). The pipeline is decomposed into
//!   explicit phases whose outputs persist in an [`EmbedSession`], on top
//!   of which [`RingMaintainer`] repairs the ring under online
//!   `add_fault`/`clear_fault` streams instead of re-embedding.
//! * [`necklace_graph`] — the necklace adjacency graph N* and its spanning
//!   structures (Figures 2.1–2.4).
//! * [`disjoint`] — edge-disjoint Hamiltonian cycles (Section 3.2):
//!   maximal cycles from linear recurrences, the translate family s + C,
//!   Strategies 1–3, the Rees product for composite alphabets, and the
//!   bound ψ(d) of Table 3.1.
//! * [`edge_faults`] — fault-free Hamiltonian cycles under link failures
//!   (Section 3.3): tolerance MAX{ψ(d)−1, φ(d)} (Propositions 3.3, 3.4 and
//!   Table 3.2).
//! * [`modified`] — the modified graph MB(d,n) and its Hamiltonian
//!   decomposition (Section 3.2.3, Figure 3.3).
//! * [`butterfly`] — lifting de Bruijn cycles to butterfly networks via the
//!   Φ map (Section 3.4, Propositions 3.5 and 3.6).
//! * [`bitreach`] — the bit-parallel reachability engine under the FFC
//!   hot paths: word-packed visited/frontier/fault sets,
//!   direction-optimizing BFS that advances 64 nodes per word op on
//!   power-of-two alphabets (the B(2,20)-scale workhorse), and the
//!   delta level-repair passes behind incremental fault updates.
//! * [`bounds`] — the closed-form fault-tolerance bounds ψ(d) and φ(d).
//! * [`serve`] — the ring-as-a-service layer: a [`RingService`] writer
//!   thread drains a bounded fault-event queue through the
//!   [`RingMaintainer`] and publishes each repaired ring as an immutable
//!   epoch-stamped [`ffc::RingSnapshot`]; [`ReaderHandle`]s serve
//!   successor/membership/segment lookups wait-free against the latest
//!   published generation.
//! * [`sweep`] — the batch sweep engine: deterministic Monte-Carlo plans
//!   ([`SweepPlan`]), sharded allocation-free execution
//!   ([`BatchEmbedder`], [`Ffc::embed_batch`]), reusable fault drawing,
//!   and the nested incremental rows ([`FaultSchedule::Nested`]) that run
//!   a whole sweep row through the [`RingMaintainer`].
//! * [`verify`] — validation helpers shared by tests, benches and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitreach;
pub mod bounds;
pub mod butterfly;
pub mod churn;
pub mod disjoint;
pub mod edge_faults;
pub mod ffc;
mod mem;
pub mod modified;
pub mod necklace_graph;
pub mod seq;
pub mod serve;
pub mod sweep;
pub mod verify;

pub use bitreach::{
    AtomicCells, BitFrontier, BitReach, BitScratch, DeltaBudgetExceeded, DeltaScratch, DensePolicy,
    LevelStore, LevelVec, ParBitScratch, SpaceTooLarge, UNREACHED, UNREACHED_U8,
};
pub use bounds::{edge_fault_tolerance, phi_edge_bound, psi};
pub use butterfly::{lift_cycle, ButterflyEmbedder};
pub use churn::{replay_churn, ChurnPlan, ChurnReport, ChurnStep};
pub use disjoint::{DisjointHamiltonianCycles, MaximalCycleFamily};
pub use edge_faults::{EdgeFaultEmbedder, NoFaultFreeCycle};
pub use ffc::{
    EmbedScratch, EmbedSession, EmbedStats, FaultEvent, Ffc, FfcOutcome, LookupError, RepairError,
    RepairOutcome, RepairStats, RingMaintainer, RingSnapshot, SnapshotPublisher,
};
pub use modified::ModifiedDeBruijn;
pub use necklace_graph::NecklaceAdjacency;
pub use serve::{ReaderHandle, RingService, ServeOptions, ServiceReport, SubmitError};
pub use sweep::{BatchEmbedder, FaultDrawer, FaultSchedule, SweepAccumulator, SweepPlan, Trial};
