//! Immutable, refcounted ring snapshots and their copy-on-publish builder.
//!
//! [`super::session::EmbedSession`] is the *mutable* half of the embedding
//! state: delta passes rewrite its levels, records and wiring in place. A
//! [`RingSnapshot`] is the immutable read-side view carved off it — the
//! successor overrides, exit bitmap, B* membership bitmap, root and stats,
//! everything a reader needs to answer `successor`/`contains`/ring-walk
//! queries — frozen behind `Arc`s so any number of readers can hold it
//! while repairs continue on the session.
//!
//! [`SnapshotPublisher`] builds snapshots **copy-on-publish**: the session
//! tracks which structure groups a repair actually touched (the ring wiring
//! `succ`/`exit_bits`; the membership bitmap; the broadcast level group),
//! and only those are copied into fresh buffers — an untouched group is
//! shared with the previous snapshot by bumping its `Arc`. A
//! no-topology-change publication (e.g. a redundant event, or pure stats
//! refresh) therefore costs O(1). The level group is a compact
//! [`LevelVec`] (PR 10) — one byte per node instead of four — so the
//! dominant copy of a dirty publication moved 4× less data. Retired
//! buffers are reclaimed by refcount once their last reader drops
//! (grace-period-by-`Arc`) and recycled into free pools, so a steady-state
//! publish loop stops allocating.

use std::sync::Arc;

use super::session::RepairOutcome;
use super::EmbedStats;
use crate::bitreach::{LevelVec, UNREACHED};

/// Bound on pooled buffers of each width kept for reuse.
const POOL_CAP: usize = 8;
/// Bound on retired snapshots tracked for buffer reclamation; beyond this
/// the oldest are dropped from tracking (their readers still keep them
/// alive — only the *reuse* opportunity is given up).
const RETIRED_CAP: usize = 64;

/// A typed rejection from [`RingSnapshot`] read accessors — the read-side
/// mirror of [`super::session::RepairError`]'s validation (PR 6): malformed
/// queries come back as values, never panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The queried id is not a node of the snapshot's B(d,n).
    NodeOutOfRange {
        /// The offending id.
        node: usize,
        /// The snapshot's node count.
        n_nodes: usize,
    },
    /// The queried node is a valid id but not on the served ring (faulty,
    /// on a dead necklace, or outside the surviving component), so it has
    /// no ring successor.
    NotOnRing {
        /// The off-ring node.
        node: usize,
    },
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LookupError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node id {node} out of range (graph has {n_nodes} nodes)")
            }
            LookupError::NotOnRing { node } => {
                write!(f, "node {node} is not on the served ring")
            }
        }
    }
}

impl std::error::Error for LookupError {}

/// One immutable generation of the maintained ring: everything the read
/// path needs, shared behind `Arc`s. Cheap to clone (three refcount bumps
/// plus a few words); safe to hold across any number of subsequent
/// repairs — the structures it references are never mutated after
/// publication.
#[derive(Clone)]
pub struct RingSnapshot {
    pub(crate) d: usize,
    pub(crate) suffix: usize,
    pub(crate) n_nodes: usize,
    /// How many fault events the producing session had absorbed when this
    /// snapshot was published — readers use it to line the snapshot up
    /// with a prefix of the event sequence.
    pub(crate) applied_events: u64,
    /// Publication sequence number (1 = the initial publication).
    pub(crate) seq: u64,
    pub(crate) stats: EmbedStats,
    pub(crate) infeasible: bool,
    /// Successor overrides (meaningful where the exit bit is set).
    pub(crate) succ: Arc<Vec<u32>>,
    /// Bit v set ⟺ node v leaves its necklace through a w-edge.
    pub(crate) exit_bits: Arc<Vec<u64>>,
    /// Bit v set ⟺ node v rides the served ring (B* membership).
    pub(crate) bstar_bits: Arc<Vec<u64>>,
    /// Broadcast level of every node at publication time, in the compact
    /// one-byte-per-node encoding ([`UNREACHED`] off the ring).
    pub(crate) bcast_level: Arc<LevelVec>,
}

impl RingSnapshot {
    /// The scalar results of the fault set this snapshot embeds — identical
    /// to [`super::Ffc::embed_into`] of that set.
    #[must_use]
    pub fn stats(&self) -> EmbedStats {
        self.stats
    }

    /// Number of nodes of the underlying B(d,n).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Fault events absorbed when this snapshot was published.
    #[must_use]
    pub fn applied_events(&self) -> u64 {
        self.applied_events
    }

    /// Publication sequence number (monotone per publisher, starting at 1).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The ring's root node, or `None` when the fault set is infeasible
    /// (every necklace faulty — no ring exists).
    #[must_use]
    pub fn root(&self) -> Option<usize> {
        (!self.infeasible).then_some(self.stats.root)
    }

    /// Length of the served ring (0 when infeasible).
    #[must_use]
    pub fn ring_len(&self) -> usize {
        self.stats.component_size
    }

    /// Classifies the snapshot's state exactly like
    /// [`super::session::EmbedSession::outcome`].
    #[must_use]
    pub fn outcome(&self) -> RepairOutcome {
        if self.infeasible {
            return RepairOutcome::Infeasible { stats: self.stats };
        }
        let live = self.n_nodes - self.stats.removed_nodes;
        let excluded = live - self.stats.component_size;
        if excluded == 0 {
            RepairOutcome::Repaired(self.stats)
        } else {
            RepairOutcome::Degraded {
                stats: self.stats,
                ring_len: self.stats.component_size,
                excluded,
            }
        }
    }

    #[inline]
    fn on_ring(&self, v: usize) -> bool {
        self.bstar_bits[v / 64] >> (v % 64) & 1 == 1
    }

    #[inline]
    fn check_node(&self, node: usize) -> Result<(), LookupError> {
        if node >= self.n_nodes {
            return Err(LookupError::NodeOutOfRange {
                node,
                n_nodes: self.n_nodes,
            });
        }
        Ok(())
    }

    /// Whether node `u` rides the served ring.
    ///
    /// # Errors
    /// [`LookupError::NodeOutOfRange`] for an id outside the graph.
    pub fn contains(&self, u: usize) -> Result<bool, LookupError> {
        self.check_node(u)?;
        Ok(self.on_ring(u))
    }

    /// The broadcast level of `u` at publication time: its distance from
    /// the ring root in the surviving component, or `None` for a node off
    /// the broadcast tree (faulty or disconnected).
    ///
    /// # Errors
    /// [`LookupError::NodeOutOfRange`] for an id outside the graph.
    pub fn broadcast_level(&self, u: usize) -> Result<Option<u32>, LookupError> {
        self.check_node(u)?;
        let l = self.bcast_level.get(u);
        Ok((l != UNREACHED).then_some(l))
    }

    /// The ring successor of `u`: the next node the embedded cycle visits.
    ///
    /// # Errors
    /// [`LookupError::NodeOutOfRange`] for an id outside the graph,
    /// [`LookupError::NotOnRing`] for a live id that is not on the ring.
    pub fn successor(&self, u: usize) -> Result<usize, LookupError> {
        self.check_node(u)?;
        if !self.on_ring(u) {
            return Err(LookupError::NotOnRing { node: u });
        }
        Ok(self.successor_unchecked(u))
    }

    #[inline]
    fn successor_unchecked(&self, u: usize) -> usize {
        if self.exit_bits[u / 64] >> (u % 64) & 1 == 1 {
            self.succ[u] as usize
        } else {
            (u % self.suffix) * self.d + u / self.suffix
        }
    }

    /// Walks `len` consecutive ring nodes starting at `u` into `out`
    /// (clearing it first) and returns how many were written — `len`
    /// capped at the ring length, so a full lap is the maximum.
    ///
    /// # Errors
    /// [`LookupError::NodeOutOfRange`] / [`LookupError::NotOnRing`] as for
    /// [`RingSnapshot::successor`]; `out` is left empty on error.
    pub fn ring_segment(
        &self,
        u: usize,
        len: usize,
        out: &mut Vec<usize>,
    ) -> Result<usize, LookupError> {
        out.clear();
        self.check_node(u)?;
        if !self.on_ring(u) {
            return Err(LookupError::NotOnRing { node: u });
        }
        let take = len.min(self.stats.component_size);
        let mut v = u;
        for _ in 0..take {
            out.push(v);
            v = self.successor_unchecked(v);
        }
        Ok(take)
    }

    /// Walks the full served ring from the root into `out` — byte-identical
    /// to [`super::session::EmbedSession::ring_into`] at publication time.
    /// Leaves `out` empty when the snapshot is infeasible.
    pub fn ring_into(&self, out: &mut Vec<usize>) {
        out.clear();
        if self.infeasible || self.stats.component_size == 0 {
            return;
        }
        let root = self.stats.root;
        let mut v = root;
        loop {
            out.push(v);
            v = self.successor_unchecked(v);
            if v == root {
                break;
            }
            debug_assert!(
                out.len() <= self.stats.component_size,
                "ring walk escaped B* or looped early"
            );
        }
    }
}

impl std::fmt::Debug for RingSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSnapshot")
            .field("seq", &self.seq)
            .field("applied_events", &self.applied_events)
            .field("n_nodes", &self.n_nodes)
            .field("ring_len", &self.stats.component_size)
            .field("infeasible", &self.infeasible)
            .finish_non_exhaustive()
    }
}

/// The borrow bundle a session hands the publisher: current structure
/// slices plus the copy-on-publish dirty flags saying which groups changed
/// since the last publication.
pub(crate) struct SnapshotParts<'a> {
    pub d: usize,
    pub suffix: usize,
    pub n_nodes: usize,
    pub stats: EmbedStats,
    pub infeasible: bool,
    /// `succ`/`exit_bits` changed since the last publication.
    pub ring_dirty: bool,
    /// `bstar_bits` changed since the last publication.
    pub bstar_dirty: bool,
    /// `bcast_level` changed since the last publication.
    pub level_dirty: bool,
    pub succ: &'a [u32],
    pub exit_bits: &'a [u64],
    pub bstar_bits: &'a [u64],
    pub bcast_level: &'a LevelVec,
    pub applied_events: u64,
}

/// Builds [`RingSnapshot`]s copy-on-publish and recycles retired buffers.
///
/// Owned by whatever drives the session (the [`crate::serve::RingService`]
/// writer thread, a test harness): it is the *single-threaded* producer
/// half; distribution to concurrent readers happens by handing the returned
/// `Arc<RingSnapshot>` to an [`epoch::EpochCell`].
#[derive(Debug, Default)]
pub struct SnapshotPublisher {
    prev: Option<Arc<RingSnapshot>>,
    /// Superseded snapshots still (possibly) held by readers, tracked so
    /// their buffers can be pooled once the last reader lets go.
    retired: Vec<Arc<RingSnapshot>>,
    free_u32: Vec<Vec<u32>>,
    free_u64: Vec<Vec<u64>>,
    free_levels: Vec<LevelVec>,
    publications: u64,
    shared_ring: u64,
    shared_membership: u64,
    shared_levels: u64,
    reclaimed: u64,
}

impl SnapshotPublisher {
    /// Creates an empty publisher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total snapshots published through this publisher.
    #[must_use]
    pub fn publications(&self) -> u64 {
        self.publications
    }

    /// Publications that shared the previous ring wiring (`succ` +
    /// `exit_bits`) instead of copying it.
    #[must_use]
    pub fn shared_ring(&self) -> u64 {
        self.shared_ring
    }

    /// Publications that shared the previous membership bitmap.
    #[must_use]
    pub fn shared_membership(&self) -> u64 {
        self.shared_membership
    }

    /// Publications that shared the previous broadcast level group.
    #[must_use]
    pub fn shared_levels(&self) -> u64 {
        self.shared_levels
    }

    /// Retired buffers recycled into the free pools so far.
    #[must_use]
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// The most recently published snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Arc<RingSnapshot>> {
        self.prev.as_ref()
    }

    /// Assembles a snapshot from the session's current structures, copying
    /// only the groups flagged dirty and sharing the rest with the previous
    /// publication.
    pub(crate) fn build(&mut self, parts: SnapshotParts<'_>) -> Arc<RingSnapshot> {
        self.sweep_retired();
        let can_share = |prev: Option<&Arc<RingSnapshot>>| {
            prev.is_some_and(|p| p.n_nodes == parts.n_nodes && p.d == parts.d)
        };
        let share_ring = !parts.ring_dirty && can_share(self.prev.as_ref());
        let share_bstar = !parts.bstar_dirty && can_share(self.prev.as_ref());
        let (succ, exit_bits) = if share_ring {
            let p = self.prev.as_ref().expect("share_ring implies prev");
            debug_assert_eq!(&**p.succ, parts.succ, "ring flagged clean but succ differs");
            debug_assert_eq!(
                &**p.exit_bits, parts.exit_bits,
                "ring flagged clean but exit bitmap differs"
            );
            self.shared_ring += 1;
            (Arc::clone(&p.succ), Arc::clone(&p.exit_bits))
        } else {
            (self.copy_u32(parts.succ), self.copy_u64(parts.exit_bits))
        };
        let bstar_bits = if share_bstar {
            let p = self.prev.as_ref().expect("share_bstar implies prev");
            debug_assert_eq!(
                &**p.bstar_bits, parts.bstar_bits,
                "membership flagged clean but bitmap differs"
            );
            self.shared_membership += 1;
            Arc::clone(&p.bstar_bits)
        } else {
            self.copy_u64(parts.bstar_bits)
        };
        let share_levels = !parts.level_dirty && can_share(self.prev.as_ref());
        let bcast_level = if share_levels {
            let p = self.prev.as_ref().expect("share_levels implies prev");
            debug_assert_eq!(
                &*p.bcast_level, parts.bcast_level,
                "levels flagged clean but broadcast levels differ"
            );
            self.shared_levels += 1;
            Arc::clone(&p.bcast_level)
        } else {
            self.copy_levels(parts.bcast_level)
        };
        self.publications += 1;
        let snap = Arc::new(RingSnapshot {
            d: parts.d,
            suffix: parts.suffix,
            n_nodes: parts.n_nodes,
            applied_events: parts.applied_events,
            seq: self.publications,
            stats: parts.stats,
            infeasible: parts.infeasible,
            succ,
            exit_bits,
            bstar_bits,
            bcast_level,
        });
        if let Some(old) = self.prev.replace(Arc::clone(&snap)) {
            self.retired.push(old);
        }
        snap
    }

    /// Harvests retired snapshots whose last reader has gone: their buffers
    /// (when this publisher holds the last reference to them too) go back
    /// to the free pools. Readers that still hold a snapshot keep it alive
    /// untouched — reclamation is purely refcount-driven.
    fn sweep_retired(&mut self) {
        let mut i = 0;
        while i < self.retired.len() {
            if Arc::strong_count(&self.retired[i]) > 1 {
                i += 1;
                continue;
            }
            let gone = self.retired.swap_remove(i);
            // We held the only strong reference and no weaks exist, so this
            // cannot fail; if it somehow does, dropping is still correct.
            if let Ok(snap) = Arc::try_unwrap(gone) {
                if let Ok(buf) = Arc::try_unwrap(snap.succ) {
                    self.pool_u32(buf);
                }
                for arc in [snap.exit_bits, snap.bstar_bits] {
                    if let Ok(buf) = Arc::try_unwrap(arc) {
                        self.pool_u64(buf);
                    }
                }
                if let Ok(buf) = Arc::try_unwrap(snap.bcast_level) {
                    self.pool_levels(buf);
                }
            }
        }
        if self.retired.len() > RETIRED_CAP {
            // Stop tracking the oldest; their readers' refcounts free them.
            let excess = self.retired.len() - RETIRED_CAP;
            self.retired.drain(..excess);
        }
    }

    fn pool_u32(&mut self, buf: Vec<u32>) {
        if self.free_u32.len() < POOL_CAP {
            self.free_u32.push(buf);
            self.reclaimed += 1;
        }
    }

    fn pool_u64(&mut self, buf: Vec<u64>) {
        if self.free_u64.len() < 2 * POOL_CAP {
            self.free_u64.push(buf);
            self.reclaimed += 1;
        }
    }

    fn copy_u32(&mut self, src: &[u32]) -> Arc<Vec<u32>> {
        let mut buf = self.free_u32.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src);
        Arc::new(buf)
    }

    fn copy_u64(&mut self, src: &[u64]) -> Arc<Vec<u64>> {
        let mut buf = self.free_u64.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src);
        Arc::new(buf)
    }

    fn pool_levels(&mut self, buf: LevelVec) {
        if self.free_levels.len() < POOL_CAP {
            self.free_levels.push(buf);
            self.reclaimed += 1;
        }
    }

    fn copy_levels(&mut self, src: &LevelVec) -> Arc<LevelVec> {
        let mut buf = self.free_levels.pop().unwrap_or_default();
        buf.copy_from(src);
        Arc::new(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{FaultEvent, Ffc, RingMaintainer};
    use super::*;

    fn service_pair() -> (Ffc, RingMaintainer, SnapshotPublisher) {
        let ffc = Ffc::new(2, 5);
        let mut maint = RingMaintainer::new();
        maint.reset(&ffc, &[]).expect("reset");
        (ffc, maint, SnapshotPublisher::new())
    }

    #[test]
    fn accessors_reject_out_of_range_ids_with_typed_errors() {
        let (_ffc, mut maint, mut publisher) = service_pair();
        let snap = maint.publish(&mut publisher, 0).expect("publish");
        let n = snap.n_nodes();
        for bad in [n, n + 1, usize::MAX] {
            let want = LookupError::NodeOutOfRange {
                node: bad,
                n_nodes: n,
            };
            assert_eq!(snap.contains(bad), Err(want));
            assert_eq!(snap.successor(bad), Err(want));
            let mut out = vec![7usize];
            assert_eq!(snap.ring_segment(bad, 4, &mut out), Err(want));
            assert!(out.is_empty(), "ring_segment must clear out on error");
        }
    }

    #[test]
    fn successor_rejects_off_ring_nodes() {
        let (ffc, mut maint, mut publisher) = service_pair();
        maint
            .apply_batch(&ffc, &[FaultEvent::NodeDown(3)])
            .expect("repair");
        let snap = maint.publish(&mut publisher, 1).expect("publish");
        assert_eq!(snap.contains(3), Ok(false));
        assert_eq!(snap.successor(3), Err(LookupError::NotOnRing { node: 3 }));
        let mut out = Vec::new();
        assert_eq!(
            snap.ring_segment(3, 4, &mut out),
            Err(LookupError::NotOnRing { node: 3 })
        );
    }

    #[test]
    fn segment_walk_matches_full_ring() {
        let (_ffc, mut maint, mut publisher) = service_pair();
        let snap = maint.publish(&mut publisher, 0).expect("publish");
        let mut ring = Vec::new();
        snap.ring_into(&mut ring);
        assert_eq!(ring.len(), snap.ring_len());
        let mut seg = Vec::new();
        // A segment longer than the ring caps at one full lap.
        let wrote = snap
            .ring_segment(ring[0], ring.len() + 100, &mut seg)
            .expect("segment");
        assert_eq!(wrote, ring.len());
        assert_eq!(seg, ring);
        // A short segment from mid-ring matches the corresponding window.
        let wrote = snap.ring_segment(ring[2], 3, &mut seg).expect("segment");
        assert_eq!(wrote, 3);
        assert_eq!(seg, ring[2..5]);
        // Every walked node is a member.
        for &v in &ring {
            assert_eq!(snap.contains(v), Ok(true));
            assert!(snap.successor(v).is_ok());
        }
    }

    #[test]
    fn clean_publications_share_structures_by_refcount() {
        let (ffc, mut maint, mut publisher) = service_pair();
        let first = maint.publish(&mut publisher, 0).expect("publish");
        // No events in between: everything is clean and shared.
        let second = maint.publish(&mut publisher, 0).expect("publish");
        assert!(Arc::ptr_eq(&first.succ, &second.succ));
        assert!(Arc::ptr_eq(&first.exit_bits, &second.exit_bits));
        assert!(Arc::ptr_eq(&first.bstar_bits, &second.bstar_bits));
        assert!(Arc::ptr_eq(&first.bcast_level, &second.bcast_level));
        assert_eq!(publisher.shared_ring(), 1);
        assert_eq!(publisher.shared_membership(), 1);
        assert_eq!(publisher.shared_levels(), 1);
        // A topology-changing event dirties every group.
        maint
            .apply_batch(&ffc, &[FaultEvent::NodeDown(5)])
            .expect("repair");
        let third = maint.publish(&mut publisher, 1).expect("publish");
        assert!(!Arc::ptr_eq(&second.bstar_bits, &third.bstar_bits));
        assert!(!Arc::ptr_eq(&second.bcast_level, &third.bcast_level));
        assert_eq!(third.seq(), 3);
        assert_eq!(third.applied_events(), 1);
    }

    #[test]
    fn snapshot_broadcast_levels_match_membership_and_root() {
        let (ffc, mut maint, mut publisher) = service_pair();
        maint
            .apply_batch(&ffc, &[FaultEvent::NodeDown(3), FaultEvent::NodeDown(17)])
            .expect("repair");
        let snap = maint.publish(&mut publisher, 2).expect("publish");
        let root = snap.root().expect("feasible");
        assert_eq!(snap.broadcast_level(root), Ok(Some(0)));
        for v in 0..snap.n_nodes() {
            let lvl = snap.broadcast_level(v).expect("in range");
            // Level reach and ring membership agree on B* exactly.
            assert_eq!(
                lvl.is_some(),
                snap.contains(v).expect("in range"),
                "node {v}"
            );
        }
        let n = snap.n_nodes();
        assert_eq!(
            snap.broadcast_level(n),
            Err(LookupError::NodeOutOfRange {
                node: n,
                n_nodes: n
            })
        );
    }

    #[test]
    fn retired_buffers_are_reclaimed_once_readers_drop() {
        let (ffc, mut maint, mut publisher) = service_pair();
        let mut held = Vec::new();
        for i in 0..6u64 {
            let ev = if i % 2 == 0 {
                FaultEvent::NodeDown(9)
            } else {
                FaultEvent::NodeUp(9)
            };
            maint.apply_batch(&ffc, &[ev]).expect("repair");
            held.push(maint.publish(&mut publisher, i + 1).expect("publish"));
        }
        assert_eq!(publisher.reclaimed(), 0, "readers still hold every snap");
        held.clear();
        // Two more publishes: the first sweep pools the now-free buffers.
        maint
            .apply_batch(&ffc, &[FaultEvent::NodeDown(9)])
            .expect("repair");
        maint.publish(&mut publisher, 7).expect("publish");
        assert!(publisher.reclaimed() > 0, "dropped snapshots must recycle");
    }

    #[test]
    fn infeasible_snapshot_serves_empty_ring_and_typed_errors() {
        let ffc = Ffc::new(2, 2);
        let mut maint = RingMaintainer::new();
        // Kill every necklace of B(2,2).
        maint.reset(&ffc, &[0, 1, 3]).expect("reset");
        let mut publisher = SnapshotPublisher::new();
        let snap = maint.publish(&mut publisher, 0).expect("publish");
        assert!(snap.outcome().is_infeasible());
        assert_eq!(snap.root(), None);
        assert_eq!(snap.ring_len(), 0);
        let mut ring = vec![1usize];
        snap.ring_into(&mut ring);
        assert!(ring.is_empty());
        for v in 0..snap.n_nodes() {
            assert_eq!(snap.contains(v), Ok(false));
            assert_eq!(snap.successor(v), Err(LookupError::NotOnRing { node: v }));
        }
    }
}
