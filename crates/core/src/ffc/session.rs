//! Persistent phase outputs and the incremental fault-update engine.
//!
//! The phase pipeline of [`super::phases`] recomputes everything per call;
//! a long-lived reconfiguration service absorbing a *stream* of fault
//! events should repair, not rebuild. This module persists every phase's
//! output in an [`EmbedSession`]:
//!
//! * **Reachability snapshot** — the forward and backward BFS *level*
//!   arrays over the live graph (not just the reachable bitmaps: the
//!   levels are the certificate that makes node deletion repairable), the
//!   derived B* membership and |B*|;
//! * **Spanning tree** — the broadcast level array over B* plus its level
//!   histogram (the eccentricity is its maximum);
//! * **Necklace selection** — per-necklace records (earliest member Y,
//!   tree label w, parent necklace) and the per-label w-group child lists;
//! * **Cycle readoff** — the successor overrides and exit bitmap, from
//!   which the ring is walked on demand ([`EmbedSession::ring_into`]).
//!
//! [`RingMaintainer`] drives the session through
//! [`RingMaintainer::apply_batch`] events — [`FaultEvent`] batches mixing
//! node arrivals, node repairs and **link faults** in one fused delta pass
//! ([`RingMaintainer::add_fault`] / [`RingMaintainer::clear_fault`] are the
//! single-event shorthands). A fault arrival kills one necklace: the bit
//! engine's delta passes
//! ([`crate::bitreach::BitReach::levels_delete`]) invalidate exactly the
//! necklace's forward/backward cones (the nodes whose BFS support ran
//! through it) and re-settle them in increasing level order; a fault
//! removal re-expands from the healed frontier
//! ([`crate::bitreach::BitReach::levels_insert`]). Both are
//! **bit-identical to recompute** — BFS levels are canonical — so every
//! downstream phase repair (necklace re-selection, w-group rewiring) is
//! confined to the necklaces whose members or predecessor levels actually
//! changed, and the session's stats and ring bytes equal a from-scratch
//! [`Ffc::embed_into`] of the accumulated fault set after every event
//! (pinned exhaustively over all arrival orders of ≤2-fault sets and by
//! B(2,14) property tests).
//!
//! When the delta's queue work exceeds a budget (a pathological cascade —
//! e.g. a huge region losing reachability at once), or when the event
//! changes the repair root, the maintainer falls back to a from-scratch
//! rebuild of the session (on the sharded level-emitting passes), which
//! costs one `embed_into_parallel`-shaped pipeline run. [`RepairStats`]
//! counts which path each event took.
//!
//! The repair path **degrades gracefully** instead of panicking: malformed
//! requests come back as a typed [`RepairError`] before any state is
//! touched, and every accepted batch returns a [`RepairOutcome`]
//! classifying the surviving ring — [`RepairOutcome::Repaired`] when every
//! live node rides it, [`RepairOutcome::Degraded`] when the fault set
//! exceeds what one ring can absorb (the session keeps serving the largest
//! surviving ring), and [`RepairOutcome::Infeasible`] when every necklace
//! carries a fault. All three states stay fully queryable, and clearing
//! faults lifts the session back up through the variants.
//!
//! Repair state is mutable and single-writer, but reads are **not**
//! confined to the maintainer: [`RingMaintainer::publish`] carves an
//! immutable, refcounted [`super::RingSnapshot`] off the session
//! (copy-on-publish — only the structure groups the last repairs touched
//! are copied; clean groups are shared with the previous snapshot by
//! `Arc`), which any number of reader threads can query while further
//! repairs mutate the session. [`crate::serve::RingService`] wraps this
//! into a full serving loop with epoch publication.

use std::sync::Arc;

use crate::bitreach::{
    reserve_more, BitScratch, DeltaBudgetExceeded, DeltaScratch, LevelVec, ParBitScratch, UNREACHED,
};
use crate::mem::grow_to;

use super::snapshot::{RingSnapshot, SnapshotParts, SnapshotPublisher};
use super::{EmbedStats, Ffc, NONE};

/// How many [`RingMaintainer`] events ran as true delta repairs and how
/// many fell back to a from-scratch session rebuild.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Events absorbed by the delta passes alone.
    pub incremental: usize,
    /// Events that rebuilt the session (root change, budget exceeded, or
    /// an explicit [`RingMaintainer::reset`]).
    pub rebuilds: usize,
}

/// A sentinel root meaning "no live necklace exists". It compares unequal
/// to every real node id, so the maintainer's root-change check routes the
/// first reviving event through a full rebuild automatically.
const INFEASIBLE_ROOT: usize = usize::MAX;

/// One fault-churn event for [`RingMaintainer::apply_batch`].
///
/// Node events toggle a processor's explicit fault flag (set semantics:
/// redundant events are no-ops). Link events mark a de Bruijn edge faulty;
/// the maintainer repairs a faulty link by **excluding its source node**
/// (and thereby the source's necklace) from the embedding — the paper's
/// necklace-removal machinery applied to the sending endpoint, which
/// guarantees the maintained ring never traverses the faulty link. This is
/// coarser than [`crate::EdgeFaultEmbedder`]'s translate/disjoint-family
/// mechanisms (which keep every node) but is incremental, composes with
/// node faults in the same batch, and applies to any number of link
/// faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Processor `v` fails. An already-faulty `v` is a no-op.
    NodeDown(usize),
    /// Processor `v` is repaired. A never-faulty `v` is a no-op.
    NodeUp(usize),
    /// Link `from -> to` fails. An already-faulty link is a no-op.
    EdgeDown(usize, usize),
    /// Link `from -> to` is repaired. A never-faulty link is a no-op.
    EdgeUp(usize, usize),
}

/// A request the repair engine rejects *before* touching any state — the
/// typed replacement for the slice-bounds panics malformed ids used to
/// hit. Batches are atomic: one bad event rejects the whole batch and the
/// session is left exactly as it was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// No [`RingMaintainer::reset`] has run yet.
    NotInitialized,
    /// The session is bound to a different graph than the call's [`Ffc`].
    ShapeMismatch {
        /// Node count of the graph the session was reset against.
        bound_nodes: usize,
        /// Node count of the graph passed to the rejected call.
        graph_nodes: usize,
    },
    /// A node id is not a node of the bound B(d,n).
    NodeOutOfRange {
        /// The offending id.
        node: usize,
        /// The bound graph's node count.
        n_nodes: usize,
    },
    /// A link event names a pair that is not a de Bruijn edge.
    NotAnEdge {
        /// The claimed source.
        from: usize,
        /// The claimed target.
        to: usize,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RepairError::NotInitialized => {
                write!(f, "RingMaintainer::reset must run before repair events")
            }
            RepairError::ShapeMismatch {
                bound_nodes,
                graph_nodes,
            } => write!(
                f,
                "RingMaintainer is bound to a graph with {bound_nodes} nodes, \
                 not {graph_nodes}; reset it before switching graphs"
            ),
            RepairError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node id {node} out of range (graph has {n_nodes} nodes)")
            }
            RepairError::NotAnEdge { from, to } => {
                write!(f, "{from} -> {to} is not a de Bruijn edge")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// What state a repair event left the maintained ring in. Every variant
/// keeps the session fully queryable, and the state is always recoverable:
/// clearing faults lifts `Infeasible` back through `Degraded` to
/// `Repaired` (pinned by tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Every live node rides the maintained ring — the f ≤ d − 2 regime of
    /// Theorem 2.3, and any heavier fault set that happens to keep the
    /// survivor graph strongly connected.
    Repaired(EmbedStats),
    /// The fault set exceeds what a single ring can absorb: the maintainer
    /// serves the **best-effort largest surviving ring** (the ring of the
    /// root's strongly connected component) and reports how many live
    /// nodes fell off it.
    Degraded {
        /// The session's stats (identical to a from-scratch embed of the
        /// accumulated exclusion set).
        stats: EmbedStats,
        /// Length of the surviving ring being served.
        ring_len: usize,
        /// Live (non-removed) nodes that are not on the surviving ring.
        excluded: usize,
    },
    /// Every necklace carries a fault: no ring exists at all. The session
    /// answers every query (empty ring, zeroed reachability) and recovers
    /// on the next reviving event.
    Infeasible {
        /// The session's stats (component size 0, sentinel root).
        stats: EmbedStats,
    },
}

impl RepairOutcome {
    /// The embedding stats, available in every state.
    #[must_use]
    pub fn stats(&self) -> EmbedStats {
        match *self {
            RepairOutcome::Repaired(stats)
            | RepairOutcome::Degraded { stats, .. }
            | RepairOutcome::Infeasible { stats } => stats,
        }
    }

    /// Length of the ring currently being served (0 when infeasible).
    #[must_use]
    pub fn ring_len(&self) -> usize {
        match *self {
            RepairOutcome::Repaired(stats) => stats.component_size,
            RepairOutcome::Degraded { ring_len, .. } => ring_len,
            RepairOutcome::Infeasible { .. } => 0,
        }
    }

    /// Live nodes not on the served ring (0 unless degraded).
    #[must_use]
    pub fn excluded(&self) -> usize {
        match *self {
            RepairOutcome::Degraded { excluded, .. } => excluded,
            _ => 0,
        }
    }

    /// Whether every live node rides the ring.
    #[must_use]
    pub fn is_repaired(&self) -> bool {
        matches!(self, RepairOutcome::Repaired(_))
    }

    /// Whether the ring is serving with live nodes excluded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, RepairOutcome::Degraded { .. })
    }

    /// Whether no ring exists under the current fault set.
    #[must_use]
    pub fn is_infeasible(&self) -> bool {
        matches!(self, RepairOutcome::Infeasible { .. })
    }
}

/// The persisted outputs of the embedding pipeline's phases, plus the
/// accumulated fault state they were computed under. See the module docs
/// for the phase-by-phase layout. All mutation goes through
/// [`RingMaintainer`]; the session itself exposes read-only views, and
/// [`EmbedSession::publish_snapshot`] freezes the read-side structures
/// into an immutable [`RingSnapshot`] that outlives further mutation.
#[derive(Clone, Debug, Default)]
pub struct EmbedSession {
    // -- shape (asserted against the `Ffc` of every call) --
    d: usize,
    suffix: usize,
    n_nodes: usize,
    n_necks: usize,
    initialized: bool,
    // -- accumulated fault state --
    /// Node-level fault flags (the accumulated fault *set*; duplicate adds
    /// are no-ops at the maintainer).
    node_faulty: Vec<bool>,
    /// The accumulated faulty nodes, unordered.
    fault_list: Vec<usize>,
    /// Position of each faulty node within `fault_list` (NONE otherwise).
    fault_pos: Vec<u32>,
    /// Per node: how many accumulated faulty links leave it. A node is
    /// *excluded* (a member of `fault_list`) while it is explicitly faulty
    /// or this count is positive.
    edge_src: Vec<u32>,
    /// The accumulated faulty links, unordered (linear-scan dedup — link
    /// fault sets are small compared to the graph).
    edge_faults: Vec<(u32, u32)>,
    /// Number of excluded nodes per necklace; a necklace is dead iff > 0.
    neck_fault_count: Vec<u32>,
    /// Per node: member of a dead necklace.
    node_dead: Vec<bool>,
    faulty_necklaces: usize,
    removed_nodes: usize,
    // -- reachability snapshot --
    root: usize,
    root_neck: usize,
    /// Forward BFS levels from the root over live nodes (UNREACHED = dead
    /// or unreachable), in the compact one-byte-per-node encoding — 4×
    /// less DRAM traffic on every level sweep than the `Vec<u32>` it
    /// replaced.
    fwd_level: LevelVec,
    /// Backward BFS levels (distance *to* the root) over live nodes.
    bwd_level: LevelVec,
    /// B* membership: forward- and backward-reachable and live.
    in_bstar: Vec<bool>,
    component_size: usize,
    // -- spanning tree --
    /// Broadcast levels over the B*-induced subgraph (compact, published
    /// into snapshots as the level group).
    bcast_level: LevelVec,
    /// Histogram of `bcast_level` (eccentricity = the last non-zero bin).
    level_counts: Vec<u32>,
    max_level: usize,
    // -- necklace selection --
    /// Earliest-reached member Y per necklace (NONE = no tree record:
    /// dead, outside B*, or the root necklace).
    neck_chosen: Vec<u32>,
    /// Tree label w of the necklace's record (valid iff `neck_chosen` set).
    neck_label: Vec<u32>,
    /// Parent necklace of the record (valid iff `neck_chosen` set).
    neck_parent: Vec<u32>,
    /// d sorted child slots per label (NONE = empty): the necklaces whose
    /// tree edge carries this label. A label's w-group is its children
    /// plus their shared parent necklace.
    label_children: Vec<u32>,
    // -- cycle readoff --
    /// Successor overrides (meaningful where the exit bit is set).
    succ: Vec<u32>,
    /// Bit v set ⟺ node v leaves its necklace through a w-edge.
    exit_bits: Vec<u64>,
    // -- snapshot publication --
    /// Word-packed mirror of `in_bstar`, maintained incrementally — the
    /// membership bitmap [`EmbedSession::publish_snapshot`] freezes into
    /// snapshots without an O(n) repack.
    bstar_bits: Vec<u64>,
    /// Copy-on-publish dirty flag: `succ`/`exit_bits` changed since the
    /// last publication.
    snap_ring_dirty: bool,
    /// Copy-on-publish dirty flag: `bstar_bits` changed since the last
    /// publication.
    snap_bstar_dirty: bool,
    /// Copy-on-publish dirty flag: `bcast_level` changed since the last
    /// publication (the snapshot's level group).
    snap_level_dirty: bool,
    // -- reusable machinery --
    bits: BitScratch,
    pbits: ParBitScratch,
    delta: DeltaScratch,
    /// CSR buffers of the level-emitting rebuild passes.
    nodes_buf: Vec<u32>,
    offsets_buf: Vec<u32>,
    /// Per-necklace best (level, node) fold of the rebuild.
    best_key: Vec<u64>,
    best_stamp: Vec<u32>,
    live_necks: Vec<u32>,
    /// Event-scoped dedup stamps and worklists of the delta path.
    stamp: u32,
    cand_stamp: Vec<u32>,
    cand_buf: Vec<u32>,
    batch_buf: Vec<u32>,
    moved_buf: Vec<u32>,
    /// Seeds of the batched insert passes (members of revived necklaces).
    ins_buf: Vec<u32>,
    /// Candidates that *joined* B* this batch (mirror of `moved_buf`).
    moved_in_buf: Vec<u32>,
    /// Merged broadcast change log of one batch: nodes whose broadcast
    /// level changed across the delete *and* insert passes, each with its
    /// first-seen (true pre-batch) level.
    bc_nodes: Vec<u32>,
    bc_old: Vec<u32>,
    /// Necklaces whose dead-state toggled while booking a batch, packed as
    /// `(nid << 1) | was_dead`, classified after booking into net kill and
    /// revive seed lists.
    touched_necks: Vec<u64>,
    killed_necks: Vec<u32>,
    revived_necks: Vec<u32>,
    dirty_stamp: Vec<u32>,
    dirty_necks: Vec<u32>,
    label_stamp: Vec<u32>,
    dirty_labels: Vec<u32>,
    member_buf: Vec<u32>,
    /// Root-probe state (mirrors the engine's allocation-free probe).
    probe_stamp: Vec<u32>,
    probe_queue: Vec<u32>,
    probe_next: Vec<u32>,
}

impl EmbedSession {
    /// The scalar results the accumulated fault set embeds to — identical
    /// to [`Ffc::embed_into`] of that set.
    #[must_use]
    pub fn stats(&self) -> EmbedStats {
        EmbedStats {
            root: self.root,
            component_size: self.component_size,
            eccentricity: self.max_level,
            faulty_necklaces: self.faulty_necklaces,
            removed_nodes: self.removed_nodes,
        }
    }

    /// The accumulated **excluded** nodes, unordered: explicitly faulty
    /// processors plus the source endpoints of faulty links. A
    /// from-scratch [`Ffc::embed_into`] of exactly this set reproduces the
    /// session's stats and ring bytes.
    #[must_use]
    pub fn faulty_nodes(&self) -> &[usize] {
        &self.fault_list
    }

    /// The accumulated faulty links, unordered, as `(from, to)` pairs.
    #[must_use]
    pub fn faulty_edges(&self) -> &[(u32, u32)] {
        &self.edge_faults
    }

    /// Classifies the session's current state (see [`RepairOutcome`]):
    /// repaired when every live node rides the ring, degraded when live
    /// nodes fell off it, infeasible when every necklace carries a fault.
    #[must_use]
    pub fn outcome(&self) -> RepairOutcome {
        let stats = self.stats();
        if self.root == INFEASIBLE_ROOT {
            return RepairOutcome::Infeasible { stats };
        }
        let live = self.n_nodes - self.removed_nodes;
        let excluded = live - self.component_size;
        if excluded == 0 {
            RepairOutcome::Repaired(stats)
        } else {
            RepairOutcome::Degraded {
                stats,
                ring_len: self.component_size,
                excluded,
            }
        }
    }

    /// Whether node `v` lies in B* under the accumulated fault set.
    #[must_use]
    pub fn in_bstar(&self, v: usize) -> bool {
        self.in_bstar[v]
    }

    /// The current repair root (necklace representative).
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The length of the maintained ring (= |B*|).
    #[must_use]
    pub fn ring_len(&self) -> usize {
        self.component_size
    }

    /// Walks the maintained ring from the root into `out` — byte-identical
    /// to the cycle a from-scratch [`Ffc::embed_into`] of the accumulated
    /// fault set leaves in its scratch. O(|B*|); the repair events
    /// themselves never pay this walk, which is what makes single-fault
    /// repair sublinear in the ring length. Leaves `out` empty when the
    /// session is infeasible (no surviving ring).
    pub fn ring_into(&self, out: &mut Vec<usize>) {
        out.clear();
        if self.component_size == 0 {
            return;
        }
        let (d, suffix) = (self.d, self.suffix);
        let mut v = self.root;
        loop {
            out.push(v);
            v = if self.exit_bits[v / 64] >> (v % 64) & 1 == 1 {
                self.succ[v] as usize
            } else {
                (v % suffix) * d + v / suffix
            };
            if v == self.root {
                break;
            }
            debug_assert!(
                out.len() <= self.component_size,
                "ring walk escaped B* or looped early"
            );
        }
    }

    /// Histogram of the forward BFS levels over live nodes (index = level,
    /// value = nodes first reached at that level). This is exactly the
    /// per-round new-receiver count of the distributed protocol's
    /// broadcast phase, which the netsim online harness asserts its
    /// message trace against.
    #[must_use]
    pub fn forward_level_counts(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        for v in 0..self.n_nodes {
            let l = self.fwd_level.get(v);
            if l == UNREACHED {
                continue;
            }
            let l = l as usize;
            if counts.len() <= l {
                counts.resize(l + 1, 0usize);
            }
            counts[l] += 1;
        }
        counts
    }

    /// Freezes the session's read-side structures into an immutable
    /// [`RingSnapshot`] via `publisher`, copying only the structure groups
    /// mutated since the last publication (the ring wiring and membership
    /// bitmap each carry a dirty flag the repair paths maintain) and
    /// sharing clean groups with the previous snapshot by `Arc`.
    /// `applied_events` is stamped into the snapshot so readers can line
    /// it up with a prefix of the event sequence.
    ///
    /// Requires an initialized session ([`RingMaintainer::reset`] ran);
    /// [`RingMaintainer::publish`] is the checked entry point.
    pub(crate) fn publish_snapshot(
        &mut self,
        publisher: &mut SnapshotPublisher,
        applied_events: u64,
    ) -> Arc<RingSnapshot> {
        debug_assert!(self.initialized, "publish before reset");
        let words = self.n_nodes.div_ceil(64);
        let parts = SnapshotParts {
            d: self.d,
            suffix: self.suffix,
            n_nodes: self.n_nodes,
            stats: self.stats(),
            infeasible: self.root == INFEASIBLE_ROOT,
            ring_dirty: self.snap_ring_dirty,
            bstar_dirty: self.snap_bstar_dirty,
            level_dirty: self.snap_level_dirty,
            succ: &self.succ[..self.n_nodes],
            exit_bits: &self.exit_bits[..words],
            bstar_bits: &self.bstar_bits[..words],
            bcast_level: &self.bcast_level,
            applied_events,
        };
        let snap = publisher.build(parts);
        self.snap_ring_dirty = false;
        self.snap_bstar_dirty = false;
        self.snap_level_dirty = false;
        snap
    }

    /// Bytes currently reserved by the three per-node level arrays —
    /// the footprint the benchmark's `level_bytes` column audits against
    /// the `3 · 4 · n` a `u32` encoding would pay.
    #[must_use]
    pub fn level_bytes(&self) -> usize {
        self.fwd_level.allocated_bytes()
            + self.bwd_level.allocated_bytes()
            + self.bcast_level.allocated_bytes()
    }

    /// Total bytes currently reserved by the session's buffers — constant
    /// across repair events at a fixed (d, n), the incremental engine's
    /// analogue of [`super::EmbedScratch::allocated_bytes`].
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.node_faulty.capacity()
            + self.node_dead.capacity()
            + self.in_bstar.capacity()
            + std::mem::size_of::<usize>() * self.fault_list.capacity()
            + self.level_bytes()
            + 4 * (self.fault_pos.capacity()
                + self.neck_fault_count.capacity()
                + self.level_counts.capacity()
                + self.neck_chosen.capacity()
                + self.neck_label.capacity()
                + self.neck_parent.capacity()
                + self.label_children.capacity()
                + self.succ.capacity()
                + self.nodes_buf.capacity()
                + self.offsets_buf.capacity()
                + self.best_stamp.capacity()
                + self.live_necks.capacity()
                + self.cand_stamp.capacity()
                + self.cand_buf.capacity()
                + self.batch_buf.capacity()
                + self.moved_buf.capacity()
                + self.edge_src.capacity()
                + self.ins_buf.capacity()
                + self.moved_in_buf.capacity()
                + self.bc_nodes.capacity()
                + self.bc_old.capacity()
                + self.killed_necks.capacity()
                + self.revived_necks.capacity()
                + self.dirty_stamp.capacity()
                + self.dirty_necks.capacity()
                + self.label_stamp.capacity()
                + self.dirty_labels.capacity()
                + self.member_buf.capacity()
                + self.probe_stamp.capacity()
                + self.probe_queue.capacity()
                + self.probe_next.capacity())
            + 8 * (self.exit_bits.capacity()
                + self.bstar_bits.capacity()
                + self.best_key.capacity()
                + self.edge_faults.capacity()
                + self.touched_necks.capacity())
            + self.bits.allocated_bytes()
            + self.pbits.allocated_bytes()
            + self.delta.allocated_bytes()
    }

    // ------------------------------------------------------------------
    // Sizing and fault bookkeeping.
    // ------------------------------------------------------------------

    /// Advances the event stamp, clearing every stamp array on wrap-around
    /// (once per 2^32 stamped scopes).
    fn bump_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX {
            for arr in [
                &mut self.probe_stamp,
                &mut self.cand_stamp,
                &mut self.best_stamp,
                &mut self.dirty_stamp,
                &mut self.label_stamp,
            ] {
                arr.iter_mut().for_each(|x| *x = 0);
            }
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// Sizes every buffer for `ffc`'s shape and clears the fault state.
    fn adopt_shape(&mut self, ffc: &Ffc) {
        let t = &ffc.tables;
        self.d = t.d;
        self.suffix = t.suffix_count;
        self.n_nodes = t.n_nodes;
        self.n_necks = t.n_necks;
        let n = self.n_nodes;
        grow_to(&mut self.node_faulty, n, false);
        grow_to(&mut self.node_dead, n, false);
        grow_to(&mut self.in_bstar, n, false);
        grow_to(&mut self.fault_pos, n, NONE);
        grow_to(&mut self.edge_src, n, 0);
        self.fwd_level.grow(n);
        self.bwd_level.grow(n);
        self.bcast_level.grow(n);
        grow_to(&mut self.succ, n, 0);
        grow_to(&mut self.label_children, t.suffix_count * t.d, NONE);
        grow_to(&mut self.cand_stamp, n, 0);
        grow_to(&mut self.probe_stamp, n, 0);
        grow_to(&mut self.exit_bits, n.div_ceil(64), 0);
        grow_to(&mut self.bstar_bits, n.div_ceil(64), 0);
        grow_to(&mut self.neck_fault_count, self.n_necks, 0);
        grow_to(&mut self.neck_chosen, self.n_necks, NONE);
        grow_to(&mut self.neck_label, self.n_necks, 0);
        grow_to(&mut self.neck_parent, self.n_necks, 0);
        grow_to(&mut self.best_key, self.n_necks, 0);
        grow_to(&mut self.best_stamp, self.n_necks, 0);
        grow_to(&mut self.dirty_stamp, self.n_necks, 0);
        grow_to(&mut self.label_stamp, t.suffix_count, 0);
        // Worklists are presized to their worst-case bounds so repair
        // events never grow them; `level_counts` can in principle index up
        // to n_nodes - 1 during a delete cascade, so it gets full range.
        reserve_more(&mut self.fault_list, n);
        reserve_more(&mut self.cand_buf, n);
        reserve_more(&mut self.moved_buf, n);
        reserve_more(&mut self.batch_buf, n);
        reserve_more(&mut self.ins_buf, n);
        reserve_more(&mut self.moved_in_buf, n);
        reserve_more(&mut self.bc_nodes, n);
        reserve_more(&mut self.bc_old, n);
        reserve_more(&mut self.touched_necks, self.n_necks);
        reserve_more(&mut self.killed_necks, self.n_necks);
        reserve_more(&mut self.revived_necks, self.n_necks);
        // Link-fault lists grow amortised (they are bounded by n·d, far
        // beyond any realistic churn trace; a small reservation keeps the
        // common case allocation-free).
        reserve_more(&mut self.edge_faults, 16);
        reserve_more(&mut self.nodes_buf, n);
        reserve_more(&mut self.offsets_buf, n + 2);
        reserve_more(&mut self.level_counts, n + 1);
        reserve_more(&mut self.live_necks, self.n_necks);
        reserve_more(&mut self.dirty_necks, self.n_necks);
        reserve_more(&mut self.dirty_labels, t.suffix_count);
        reserve_more(&mut self.member_buf, t.d + 1);
        reserve_more(&mut self.probe_queue, n);
        reserve_more(&mut self.probe_next, n);
        // Fault state restarts from empty.
        self.node_faulty[..n].fill(false);
        self.node_dead[..n].fill(false);
        self.fault_pos[..n].fill(NONE);
        self.edge_src[..n].fill(0);
        self.edge_faults.clear();
        self.neck_fault_count[..self.n_necks].fill(0);
        self.fault_list.clear();
        self.faulty_necklaces = 0;
        self.removed_nodes = 0;
        self.bstar_bits[..n.div_ceil(64)].fill(0);
        self.snap_ring_dirty = true;
        self.snap_bstar_dirty = true;
        self.snap_level_dirty = true;
        self.initialized = true;
    }

    /// Checks this session was built for `ffc`'s shape.
    fn ensure_shape(&self, ffc: &Ffc) -> Result<(), RepairError> {
        if !self.initialized {
            return Err(RepairError::NotInitialized);
        }
        let t = &ffc.tables;
        if self.d != t.d || self.n_nodes != t.n_nodes || self.n_necks != t.n_necks {
            return Err(RepairError::ShapeMismatch {
                bound_nodes: self.n_nodes,
                graph_nodes: t.n_nodes,
            });
        }
        Ok(())
    }

    /// Logs a necklace's first dead-state toggle of the batch (dedup on
    /// the batch stamp `self.stamp`, which `book_events` bumps once).
    fn touch_neck(&mut self, nid: usize, was_dead: bool) {
        if self.dirty_stamp[nid] != self.stamp {
            self.dirty_stamp[nid] = self.stamp;
            self.touched_necks
                .push(((nid as u64) << 1) | u64::from(was_dead));
        }
    }

    /// Adds `v` to the exclusion set (it newly became explicitly faulty or
    /// the source of a faulty link), killing its necklace when it is the
    /// necklace's first excluded member.
    fn exclude(&mut self, ffc: &Ffc, v: usize) {
        debug_assert_eq!(self.fault_pos[v], NONE);
        self.fault_pos[v] = self.fault_list.len() as u32;
        self.fault_list.push(v);
        let nid = ffc.partition.membership()[v] as usize;
        if self.neck_fault_count[nid] == 0 {
            self.touch_neck(nid, false);
            self.faulty_necklaces += 1;
            let members = ffc.partition.members(nid);
            self.removed_nodes += members.len();
            for &m in members {
                self.node_dead[m as usize] = true;
            }
        }
        self.neck_fault_count[nid] += 1;
    }

    /// Removes `v` from the exclusion set, reviving its necklace when it
    /// was the necklace's last excluded member.
    fn include(&mut self, ffc: &Ffc, v: usize) {
        debug_assert_ne!(self.fault_pos[v], NONE);
        let pos = self.fault_pos[v] as usize;
        self.fault_pos[v] = NONE;
        self.fault_list.swap_remove(pos);
        if let Some(&moved) = self.fault_list.get(pos) {
            self.fault_pos[moved] = pos as u32;
        }
        let nid = ffc.partition.membership()[v] as usize;
        self.neck_fault_count[nid] -= 1;
        if self.neck_fault_count[nid] == 0 {
            self.touch_neck(nid, true);
            self.faulty_necklaces -= 1;
            let members = ffc.partition.members(nid);
            self.removed_nodes -= members.len();
            for &m in members {
                self.node_dead[m as usize] = false;
            }
        }
    }

    /// Reconciles `v`'s presence in the exclusion set with its fault
    /// flags (explicit fault OR any faulty outgoing link).
    fn sync_exclusion(&mut self, ffc: &Ffc, v: usize) {
        let want = self.node_faulty[v] || self.edge_src[v] > 0;
        let have = self.fault_pos[v] != NONE;
        if want && !have {
            self.exclude(ffc, v);
        } else if !want && have {
            self.include(ffc, v);
        }
    }

    /// Applies one pre-validated event to the fault bookkeeping (set
    /// semantics: redundant events are no-ops).
    fn apply_event(&mut self, ffc: &Ffc, ev: FaultEvent) {
        match ev {
            FaultEvent::NodeDown(v) => {
                if !self.node_faulty[v] {
                    self.node_faulty[v] = true;
                    self.sync_exclusion(ffc, v);
                }
            }
            FaultEvent::NodeUp(v) => {
                if self.node_faulty[v] {
                    self.node_faulty[v] = false;
                    self.sync_exclusion(ffc, v);
                }
            }
            FaultEvent::EdgeDown(u, w) => {
                let key = (u as u32, w as u32);
                if !self.edge_faults.contains(&key) {
                    self.edge_faults.push(key);
                    self.edge_src[u] += 1;
                    self.sync_exclusion(ffc, u);
                }
            }
            FaultEvent::EdgeUp(u, w) => {
                let key = (u as u32, w as u32);
                if let Some(pos) = self.edge_faults.iter().position(|&e| e == key) {
                    self.edge_faults.swap_remove(pos);
                    self.edge_src[u] -= 1;
                    self.sync_exclusion(ffc, u);
                }
            }
        }
    }

    /// Books a validated event batch and classifies the **net** dead-state
    /// changes into `killed_necks` / `revived_necks` — a necklace that
    /// dies and revives inside one batch contributes to neither list.
    fn book_events(&mut self, ffc: &Ffc, events: &[FaultEvent]) {
        let _ = self.bump_stamp();
        self.touched_necks.clear();
        for &ev in events {
            self.apply_event(ffc, ev);
        }
        self.killed_necks.clear();
        self.revived_necks.clear();
        for i in 0..self.touched_necks.len() {
            let packed = self.touched_necks[i];
            let nid = (packed >> 1) as usize;
            let was_dead = packed & 1 == 1;
            let now_dead = self.neck_fault_count[nid] > 0;
            match (was_dead, now_dead) {
                (false, true) => self.killed_necks.push(nid as u32),
                (true, false) => self.revived_necks.push(nid as u32),
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Root policy.
    // ------------------------------------------------------------------

    /// The root the from-scratch policy would pick for the current fault
    /// set (Section 2.5.2): the preferred root if its necklace survives,
    /// else the nearest live node by breadth-first distance over the full
    /// graph, ties broken by minimal id — the identical order to
    /// [`Ffc::pick_root`] and the engine's probe. `None` when every
    /// necklace carries a fault (no root can exist).
    fn policy_root(&mut self, ffc: &Ffc) -> Option<usize> {
        let preferred = ffc.default_root();
        let membership = ffc.partition.membership();
        if self.neck_fault_count[membership[preferred] as usize] == 0 {
            return Some(ffc.representative_of(preferred));
        }
        let stamp = self.bump_stamp();
        let (d, suffix) = (self.d, self.suffix);
        self.probe_queue.clear();
        self.probe_stamp[preferred] = stamp;
        self.probe_queue.push(preferred as u32);
        while !self.probe_queue.is_empty() {
            self.probe_next.clear();
            for i in 0..self.probe_queue.len() {
                let v = self.probe_queue[i] as usize;
                let base = (v % suffix) * d;
                for a in 0..d {
                    let u = base + a;
                    if self.probe_stamp[u] != stamp {
                        self.probe_stamp[u] = stamp;
                        self.probe_next.push(u as u32);
                    }
                }
            }
            self.probe_next.sort_unstable();
            if let Some(&u) = self
                .probe_next
                .iter()
                .find(|&&u| self.neck_fault_count[membership[u as usize] as usize] == 0)
            {
                return Some(ffc.representative_of(u as usize));
            }
            std::mem::swap(&mut self.probe_queue, &mut self.probe_next);
        }
        None // every node of B(d,n) lies on a faulty necklace
    }

    /// Parks the session in the no-ring state: every necklace carries a
    /// fault, so no fault-free cycle exists. Every query stays answerable
    /// (empty ring, empty histogram, zero |B*|), and the sentinel root
    /// compares unequal to every real root, so the next reviving event
    /// routes recovery through a full rebuild automatically.
    fn enter_infeasible(&mut self) {
        let n = self.n_nodes;
        self.root = INFEASIBLE_ROOT;
        self.root_neck = usize::MAX;
        self.fwd_level.fill_unreached();
        self.bwd_level.fill_unreached();
        self.bcast_level.fill_unreached();
        self.in_bstar[..n].fill(false);
        self.component_size = 0;
        self.level_counts.clear();
        self.max_level = 0;
        self.neck_chosen[..self.n_necks].fill(NONE);
        self.label_children[..self.suffix * self.d].fill(NONE);
        self.exit_bits[..n.div_ceil(64)].fill(0);
        self.bstar_bits[..n.div_ceil(64)].fill(0);
        self.snap_ring_dirty = true;
        self.snap_bstar_dirty = true;
        self.snap_level_dirty = true;
    }

    // ------------------------------------------------------------------
    // The from-scratch rebuild (fallback and initialisation).
    // ------------------------------------------------------------------

    /// Runs the full phase pipeline into the session: the level-emitting
    /// reachability passes (sharded over `shards` when the shape supports
    /// it), B* and the broadcast histogram, every necklace record, the
    /// w-group tables and the exit/override wiring.
    fn rebuild(&mut self, ffc: &Ffc, shards: usize) {
        let t = &ffc.tables;
        let reach = t.reach;
        let membership = ffc.partition.membership();
        let n = self.n_nodes;

        // Fault mask: kill every member of every dead necklace.
        reach.prepare(&mut self.bits);
        for v in 0..n {
            if self.node_dead[v] {
                reach.kill(&mut self.bits, v);
            }
        }
        let Some(root) = self.policy_root(ffc) else {
            self.enter_infeasible();
            return;
        };
        self.root = root;
        self.root_neck = membership[self.root] as usize;

        // Reachability snapshot, with levels persisted.
        let _ = reach.forward_levels_par(
            &mut self.bits,
            &mut self.pbits,
            self.root,
            &mut self.nodes_buf,
            &mut self.offsets_buf,
            shards,
        );
        scatter_levels(&mut self.fwd_level, n, &self.nodes_buf, &self.offsets_buf);
        let _ = reach.backward_levels_par(
            &mut self.bits,
            &mut self.pbits,
            self.root,
            &mut self.nodes_buf,
            &mut self.offsets_buf,
            shards,
        );
        scatter_levels(&mut self.bwd_level, n, &self.nodes_buf, &self.offsets_buf);

        // Spanning tree: one fused chunk-streamed pass writes the B* mask
        // (fwd ∧ bwd ∧ ¬dead), counts |B*| and seeds the broadcast
        // visited set, then emits the broadcast levels over B* — no
        // separate bstar-bitmap or component-count sweeps.
        let words = n.div_ceil(64);
        let (component, reached, depth) = reach.broadcast_levels_bstar_par(
            &mut self.bits,
            &mut self.pbits,
            self.root,
            &mut self.nodes_buf,
            &mut self.offsets_buf,
            &mut self.bstar_bits[..words],
            shards,
        );
        self.in_bstar[..n].fill(false);
        for (j, &word) in self.bstar_bits[..words].iter().enumerate() {
            let mut w = word;
            while w != 0 {
                self.in_bstar[j * 64 + w.trailing_zeros() as usize] = true;
                w &= w - 1;
            }
        }
        self.component_size = component;
        self.snap_ring_dirty = true;
        self.snap_bstar_dirty = true;
        self.snap_level_dirty = true;
        debug_assert_eq!(reached, component, "broadcast must cover B*");
        let _ = reached;
        scatter_levels(&mut self.bcast_level, n, &self.nodes_buf, &self.offsets_buf);
        self.level_counts.clear();
        self.level_counts.resize(depth + 1, 0);
        for l in 0..=depth {
            self.level_counts[l] = self.offsets_buf[l + 1] - self.offsets_buf[l];
        }
        self.max_level = depth;

        // Necklace selection: per-necklace earliest members, labels,
        // parents; then the per-label child tables and the wiring.
        self.neck_chosen[..self.n_necks].fill(NONE);
        self.label_children[..self.suffix * self.d].fill(NONE);
        let words = n.div_ceil(64);
        self.exit_bits[..words].fill(0);
        let stamp = self.bump_stamp();
        self.live_necks.clear();
        for l in 0..=depth {
            let (lo, hi) = (
                self.offsets_buf[l] as usize,
                self.offsets_buf[l + 1] as usize,
            );
            for &v in &self.nodes_buf[lo..hi] {
                let nid = membership[v as usize] as usize;
                if nid == self.root_neck {
                    continue;
                }
                let key = ((l as u64) << 32) | u64::from(v);
                if self.best_stamp[nid] != stamp {
                    self.best_stamp[nid] = stamp;
                    self.best_key[nid] = key;
                    self.live_necks.push(nid as u32);
                } else if key < self.best_key[nid] {
                    self.best_key[nid] = key;
                }
            }
        }
        self.dirty_labels.clear();
        for i in 0..self.live_necks.len() {
            let nid = self.live_necks[i] as usize;
            let chosen = (self.best_key[nid] & u64::from(u32::MAX)) as usize;
            let (label, parent_neck) = self.record_fields(ffc, chosen);
            self.neck_chosen[nid] = chosen as u32;
            self.neck_label[nid] = label as u32;
            self.neck_parent[nid] = parent_neck as u32;
            insert_child(&mut self.label_children, self.d, label, nid as u32);
            if self.label_stamp[label] != stamp {
                self.label_stamp[label] = stamp;
                self.dirty_labels.push(label as u32);
            }
        }
        for i in 0..self.dirty_labels.len() {
            let label = self.dirty_labels[i] as usize;
            self.rewire_label(ffc, label);
        }
    }

    /// The (label, parent necklace) of a chosen node: its (n−1)-digit
    /// prefix and its minimal predecessor one broadcast level up.
    fn record_fields(&self, ffc: &Ffc, chosen: usize) -> (usize, usize) {
        let (d, suffix) = (self.d, self.suffix);
        let label = chosen / d;
        let lvl = self.bcast_level.get(chosen);
        debug_assert!(lvl != UNREACHED && lvl >= 1, "chosen node outside the tree");
        let parent = (0..d)
            .map(|a| label + a * suffix)
            .find(|&p| self.bcast_level.get(p) == lvl - 1)
            // PANIC-OK: a chosen node sits at broadcast level >= 1, so one
            // of its d predecessors was on the frontier one level up — the
            // debug_assert above states the invariant and the exhaustive
            // differential suites pin it; reachable only via memory
            // corruption, never via caller input.
            .expect("chosen node with no frontier predecessor");
        (label, ffc.partition.membership()[parent] as usize)
    }

    // ------------------------------------------------------------------
    // The delta repairs.
    // ------------------------------------------------------------------

    /// The fused delta path of one event batch: one delete pass seeded by
    /// **every** killed necklace's members and one insert pass seeded by
    /// every revived necklace's members, per level structure — k
    /// simultaneous arrivals cost one frontier settlement instead of k.
    ///
    /// Order matters only between the two passes, not inside them: the
    /// delete pass runs with the *final* liveness predicate (revived nodes
    /// are already live but still hold `UNREACHED`, so they offer no
    /// support), which makes its result the canonical levels of the
    /// mid-state graph; the insert pass then re-expands from the revived
    /// members and settles the canonical levels of the final graph. The
    /// broadcast structure is repaired the same way from the nodes that
    /// left/joined B*, with both passes' change logs merged (first-seen
    /// old levels) so the histogram update counts each node once.
    fn delta_batch(&mut self, ffc: &Ffc, budget: usize) -> Result<(), DeltaBudgetExceeded> {
        let reach = ffc.tables.reach;
        self.batch_buf.clear();
        for i in 0..self.killed_necks.len() {
            let nid = self.killed_necks[i] as usize;
            self.batch_buf.extend_from_slice(ffc.partition.members(nid));
        }
        self.ins_buf.clear();
        for i in 0..self.revived_necks.len() {
            let nid = self.revived_necks[i] as usize;
            self.ins_buf.extend_from_slice(ffc.partition.members(nid));
        }
        let stamp = self.bump_stamp();
        self.cand_buf.clear();
        // One budget covers the whole batch: each pass deducts the pops it
        // consumed, so the per-batch cap holds across all structures.
        let mut remaining = budget;

        {
            let Self {
                fwd_level,
                bwd_level,
                node_dead,
                delta,
                batch_buf,
                ins_buf,
                cand_buf,
                cand_stamp,
                ..
            } = self;
            let mut fold = |seeds: &[u32], delta: &DeltaScratch| {
                for &u in seeds.iter().chain(delta.changed_nodes()) {
                    if cand_stamp[u as usize] != stamp {
                        cand_stamp[u as usize] = stamp;
                        cand_buf.push(u);
                    }
                }
            };
            for pass in 0..2 {
                let (levels, backward) = if pass == 0 {
                    (&mut *fwd_level, false)
                } else {
                    (&mut *bwd_level, true)
                };
                if !batch_buf.is_empty() {
                    let pops = reach.levels_delete(
                        &mut *levels,
                        delta,
                        batch_buf,
                        |u| !node_dead[u],
                        backward,
                        remaining,
                    )?;
                    remaining = remaining.saturating_sub(pops);
                    fold(batch_buf, delta);
                }
                if !ins_buf.is_empty() {
                    let pops = reach.levels_insert(
                        &mut *levels,
                        delta,
                        ins_buf,
                        |u| !node_dead[u],
                        backward,
                        remaining,
                    )?;
                    remaining = remaining.saturating_sub(pops);
                    fold(ins_buf, delta);
                }
            }
        }

        // B* transitions: candidates that lost or gained membership.
        self.moved_buf.clear();
        self.moved_in_buf.clear();
        for i in 0..self.cand_buf.len() {
            let u = self.cand_buf[i] as usize;
            let now = !self.node_dead[u]
                && self.fwd_level.get(u) != UNREACHED
                && self.bwd_level.get(u) != UNREACHED;
            if self.in_bstar[u] && !now {
                self.in_bstar[u] = false;
                self.bstar_bits[u / 64] &= !(1u64 << (u % 64));
                self.moved_buf.push(u as u32);
            } else if !self.in_bstar[u] && now {
                self.in_bstar[u] = true;
                self.bstar_bits[u / 64] |= 1u64 << (u % 64);
                self.moved_in_buf.push(u as u32);
            }
        }
        self.component_size = self.component_size - self.moved_buf.len() + self.moved_in_buf.len();
        if !self.moved_buf.is_empty() || !self.moved_in_buf.is_empty() {
            self.snap_bstar_dirty = true;
        }

        // Broadcast repair, with the two passes' change logs merged into
        // `bc_nodes`/`bc_old` keeping each node's first-seen (true
        // pre-batch) level — a node deleted then re-inserted must update
        // the histogram exactly once, old -> final.
        self.bc_nodes.clear();
        self.bc_old.clear();
        let bstamp = self.bump_stamp();
        {
            let Self {
                bcast_level,
                in_bstar,
                delta,
                moved_buf,
                moved_in_buf,
                bc_nodes,
                bc_old,
                cand_stamp,
                ..
            } = self;
            let mut merge = |delta: &DeltaScratch| {
                for (i, &u) in delta.changed_nodes().iter().enumerate() {
                    if cand_stamp[u as usize] != bstamp {
                        cand_stamp[u as usize] = bstamp;
                        bc_nodes.push(u);
                        bc_old.push(delta.old_levels()[i]);
                    }
                }
            };
            if !moved_buf.is_empty() {
                let pops = reach.levels_delete(
                    &mut *bcast_level,
                    delta,
                    moved_buf,
                    |u| in_bstar[u],
                    false,
                    remaining,
                )?;
                remaining = remaining.saturating_sub(pops);
                merge(delta);
            }
            if !moved_in_buf.is_empty() {
                let _ = reach.levels_insert(
                    &mut *bcast_level,
                    delta,
                    moved_in_buf,
                    |u| in_bstar[u],
                    false,
                    remaining,
                )?;
                merge(delta);
            }
        }
        self.absorb_bcast_changes(ffc);
        Ok(())
    }

    /// Applies the batch's merged broadcast change log
    /// (`bc_nodes`/`bc_old`): histogram (and eccentricity) updates, then
    /// re-selection of every necklace whose members or predecessor levels
    /// changed, then rewiring of every w-group whose membership or parent
    /// changed.
    fn absorb_bcast_changes(&mut self, ffc: &Ffc) {
        let membership = ffc.partition.membership();
        let (d, suffix) = (self.d, self.suffix);
        if !self.bc_nodes.is_empty() {
            self.snap_level_dirty = true;
        }
        // Histogram.
        for i in 0..self.bc_nodes.len() {
            let u = self.bc_nodes[i] as usize;
            let old = self.bc_old[i];
            if old != UNREACHED {
                self.level_counts[old as usize] -= 1;
            }
            let new = self.bcast_level.get(u);
            if new != UNREACHED {
                let new = new as usize;
                if self.level_counts.len() <= new {
                    self.level_counts.resize(new + 1, 0);
                }
                self.level_counts[new] += 1;
                self.max_level = self.max_level.max(new);
            }
        }
        while self.max_level > 0 && self.level_counts[self.max_level] == 0 {
            self.max_level -= 1;
        }
        debug_assert_eq!(
            self.level_counts.iter().map(|&c| c as usize).sum::<usize>(),
            self.component_size,
            "histogram out of sync with |B*|"
        );

        // Dirty necklaces: those of changed nodes (their earliest member
        // may differ) and of their B* successors (their chosen node's
        // minimal predecessor may differ).
        let stamp = self.bump_stamp();
        self.dirty_necks.clear();
        self.dirty_labels.clear();
        {
            let Self {
                bc_nodes,
                dirty_necks,
                dirty_stamp,
                in_bstar,
                ..
            } = self;
            let mut mark = |nid: usize| {
                if dirty_stamp[nid] != stamp {
                    dirty_stamp[nid] = stamp;
                    dirty_necks.push(nid as u32);
                }
            };
            for &u in bc_nodes.iter() {
                let u = u as usize;
                mark(membership[u] as usize);
                let base = (u % suffix) * d;
                for a in 0..d {
                    let s = base + a;
                    if in_bstar[s] {
                        mark(membership[s] as usize);
                    }
                }
            }
        }
        for i in 0..self.dirty_necks.len() {
            let nid = self.dirty_necks[i] as usize;
            self.refresh_neck(ffc, nid, stamp);
        }
        for i in 0..self.dirty_labels.len() {
            let label = self.dirty_labels[i] as usize;
            self.rewire_label(ffc, label);
        }
        // Rewiring a label unconditionally rewrites its exit bits, so any
        // dirty label marks the ring group for copy-on-publish.
        if !self.dirty_labels.is_empty() {
            self.snap_ring_dirty = true;
        }
    }

    /// Recomputes one necklace's tree record from the current broadcast
    /// levels and updates the per-label child tables, marking every label
    /// whose group changed.
    fn refresh_neck(&mut self, ffc: &Ffc, nid: usize, stamp: u32) {
        if nid == self.root_neck {
            return;
        }
        let members = ffc.partition.members(nid);
        let rep = members[0] as usize;
        let had = self.neck_chosen[nid] != NONE;
        let old_label = self.neck_label[nid] as usize;
        if !self.in_bstar[rep] {
            if had {
                remove_child(&mut self.label_children, self.d, old_label, nid as u32);
                mark_label(
                    old_label,
                    stamp,
                    &mut self.dirty_labels,
                    &mut self.label_stamp,
                );
                self.neck_chosen[nid] = NONE;
            }
            return;
        }
        let mut best = u64::MAX;
        for &m in members {
            let lvl = self.bcast_level.get(m as usize);
            debug_assert!(lvl != UNREACHED, "B* necklace member without a level");
            let key = (u64::from(lvl) << 32) | u64::from(m);
            best = best.min(key);
        }
        let chosen = (best & u64::from(u32::MAX)) as usize;
        let (label, parent_neck) = self.record_fields(ffc, chosen);
        let group_changed =
            !had || old_label != label || self.neck_parent[nid] as usize != parent_neck;
        self.neck_chosen[nid] = chosen as u32;
        self.neck_label[nid] = label as u32;
        self.neck_parent[nid] = parent_neck as u32;
        if !group_changed {
            return;
        }
        if had {
            remove_child(&mut self.label_children, self.d, old_label, nid as u32);
            mark_label(
                old_label,
                stamp,
                &mut self.dirty_labels,
                &mut self.label_stamp,
            );
        }
        insert_child(&mut self.label_children, self.d, label, nid as u32);
        mark_label(label, stamp, &mut self.dirty_labels, &mut self.label_stamp);
    }

    /// Unwires and (if the label still has children) rewires one w-group:
    /// the group's member necklaces — its children plus their shared
    /// parent, in necklace-id order — are closed into a directed cycle of
    /// w-edges, exactly like the engines' `wire_w_groups`.
    fn rewire_label(&mut self, ffc: &Ffc, label: usize) {
        let (d, suffix) = (self.d, self.suffix);
        let membership = ffc.partition.membership();
        // Every possible exit of label w is one of the d nodes a·suffix+w.
        for a in 0..d {
            let e = a * suffix + label;
            self.exit_bits[e / 64] &= !(1u64 << (e % 64));
        }
        let base = label * d;
        let child_count = self.label_children[base..base + d]
            .iter()
            .take_while(|&&c| c != NONE)
            .count();
        if child_count == 0 {
            return;
        }
        let parent = self.neck_parent[self.label_children[base] as usize];
        self.member_buf.clear();
        let mut inserted = false;
        for i in 0..child_count {
            let c = self.label_children[base + i];
            debug_assert_eq!(
                self.neck_parent[c as usize], parent,
                "T_w must have a single parent necklace (height-one property)"
            );
            if !inserted && parent < c {
                self.member_buf.push(parent);
                inserted = true;
            }
            if c == parent {
                inserted = true;
            }
            self.member_buf.push(c);
        }
        if !inserted {
            self.member_buf.push(parent);
        }
        let Self {
            member_buf,
            succ,
            exit_bits,
            in_bstar,
            ..
        } = self;
        super::phases::for_each_w_edge(d, suffix, membership, label, member_buf, |exit, entry| {
            debug_assert!(in_bstar[entry]);
            succ[exit] = entry as u32;
            exit_bits[exit / 64] |= 1u64 << (exit % 64);
        });
    }
}

/// The incremental fault-update engine: owns an [`EmbedSession`] and
/// repairs it through [`RingMaintainer::apply_batch`] event batches
/// (node arrivals, node repairs and link faults; `add_fault` /
/// `clear_fault` are the single-event shorthands), falling back to a
/// from-scratch rebuild only when the batch changes the repair root or
/// the delta's work budget is exceeded. After every batch the session's
/// stats and ring bytes are identical to a from-scratch
/// [`Ffc::embed_into`] of the accumulated exclusion set
/// ([`EmbedSession::faulty_nodes`]), and the returned [`RepairOutcome`]
/// classifies the surviving ring — malformed requests are rejected as
/// typed [`RepairError`]s with no state touched, never panics.
///
/// Like [`super::EmbedScratch`], the maintainer is a state object: every
/// method takes the [`Ffc`] it was [`RingMaintainer::reset`] against (the
/// shape is asserted). One maintainer serves any number of events with no
/// heap allocation after warm-up.
///
/// The maintainer is the single *writer*; it does **not** monopolise the
/// read path. [`RingMaintainer::publish`] freezes the current ring into an
/// immutable [`RingSnapshot`] (copy-on-publish), and
/// [`crate::serve::RingService`] turns that into wait-free concurrent
/// reads under live repair.
#[derive(Clone, Debug, Default)]
pub struct RingMaintainer {
    session: EmbedSession,
    shards: usize,
    budget: Option<usize>,
    repairs: RepairStats,
}

impl RingMaintainer {
    /// Creates an empty maintainer (single-shard rebuilds, automatic
    /// budget). [`RingMaintainer::reset`] must run before the first event.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A maintainer whose rebuild fallbacks run the sharded level-emitting
    /// passes over `shards` pool workers. The count is a request: each
    /// rebuild clamps it through [`crate::bitreach::effective_shards`]
    /// for the graph it runs on ([`RingMaintainer::effective_shards`]
    /// reports the resolved value). The session state is bit-identical at
    /// any shard count; the delta passes themselves are serial — their
    /// work is proportional to the affected cones, far below any
    /// threading threshold.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        RingMaintainer {
            shards: shards.max(1),
            ..Self::default()
        }
    }

    /// Overrides the delta work budget — queue pops per event, shared
    /// across the event's forward/backward/broadcast repairs — above
    /// which an event falls back to a rebuild. `None` restores the automatic
    /// budget, `max(1024, d^n)` — a queue pop (a handful of implicit-edge
    /// probes) costs well under what the rebuild pays per node across its
    /// level-emitting passes and scatters, so the break-even sits near
    /// one pop per node. A budget of 0 forces every event to rebuild (the
    /// differential tests use this to pin fallback equality).
    #[must_use]
    pub fn with_budget(mut self, budget: Option<usize>) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the requested rebuild shard count for future events without
    /// discarding the warmed session state (the in-place twin of
    /// [`RingMaintainer::with_shards`]; the same
    /// [`crate::bitreach::effective_shards`] clamp applies per rebuild).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The shard count rebuilds actually run with on `ffc`: the requested
    /// count folded through [`crate::bitreach::effective_shards`] for the
    /// host's core count and `ffc`'s node count.
    #[must_use]
    pub fn effective_shards(&self, ffc: &Ffc) -> usize {
        crate::bitreach::effective_shards(self.shards, ffc.tables.n_nodes)
    }

    /// The persisted phase outputs (stats, ring, B* membership, levels).
    #[must_use]
    pub fn session(&self) -> &EmbedSession {
        &self.session
    }

    /// Total bytes currently reserved by the maintainer's session —
    /// constant across repair events at a fixed (d, n)
    /// ([`EmbedSession::allocated_bytes`]).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.session.allocated_bytes()
    }

    /// Bytes of the session's compact per-node level arrays
    /// ([`EmbedSession::level_bytes`]).
    #[must_use]
    pub fn level_bytes(&self) -> usize {
        self.session.level_bytes()
    }

    /// How many events ran as delta repairs vs rebuilds.
    #[must_use]
    pub fn repairs(&self) -> RepairStats {
        self.repairs
    }

    /// The scalar results of the current accumulated fault set.
    #[must_use]
    pub fn stats(&self) -> EmbedStats {
        self.session.stats()
    }

    /// Walks the maintained ring into `out` (see
    /// [`EmbedSession::ring_into`]).
    pub fn ring_into(&self, out: &mut Vec<usize>) {
        self.session.ring_into(out);
    }

    /// The [`RepairOutcome`] of the current accumulated fault set — the
    /// same classification the last event returned, queryable at any time
    /// after [`RingMaintainer::reset`].
    #[must_use]
    pub fn outcome(&self) -> RepairOutcome {
        self.session.outcome()
    }

    /// (Re)initialises the session for `ffc` with the given fault set via
    /// one from-scratch pipeline run, and returns its outcome. Duplicate
    /// nodes in `faults` are tolerated (set semantics, like
    /// [`Ffc::embed_into`]); accumulated link faults are cleared.
    ///
    /// # Errors
    /// [`RepairError::NodeOutOfRange`] if any id is not a node of `ffc`
    /// (the maintainer's previous state is discarded either way only on
    /// success — a rejected reset leaves it untouched).
    pub fn reset(&mut self, ffc: &Ffc, faults: &[usize]) -> Result<RepairOutcome, RepairError> {
        let n_nodes = ffc.tables.n_nodes;
        if let Some(&v) = faults.iter().find(|&&v| v >= n_nodes) {
            return Err(RepairError::NodeOutOfRange { node: v, n_nodes });
        }
        self.session.adopt_shape(ffc);
        let _ = self.session.bump_stamp();
        self.session.touched_necks.clear();
        for &v in faults {
            if !self.session.node_faulty[v] {
                self.session.node_faulty[v] = true;
                self.session.sync_exclusion(ffc, v);
            }
        }
        self.session.rebuild(ffc, self.effective_shards(ffc));
        self.repairs.rebuilds += 1;
        Ok(self.session.outcome())
    }

    /// Absorbs one batch of simultaneous fault-churn events and returns
    /// the [`RepairOutcome`] of the accumulated fault set — whose stats
    /// and ring bytes are identical to a fresh [`Ffc::embed_into`] of
    /// [`EmbedSession::faulty_nodes`]. Redundant events (an already-faulty
    /// node going down, a never-faulty node coming up, a duplicate link
    /// fault) are no-ops inside the batch, and a batch whose net effect
    /// kills or revives no necklace costs nothing beyond bookkeeping.
    ///
    /// The whole batch is repaired by **one** fused delta pass (all killed
    /// necklaces deleted together, all revived necklaces re-inserted
    /// together), so k simultaneous arrivals settle each affected frontier
    /// once instead of k times. The repair falls back to one rebuild when
    /// the batch changes the repair root or exceeds the delta budget, and
    /// parks the session in the (recoverable) infeasible state when the
    /// batch kills the last live necklace.
    ///
    /// # Errors
    /// The batch is validated atomically before any state changes:
    /// [`RepairError::NotInitialized`] / [`RepairError::ShapeMismatch`]
    /// when the session is not bound to `ffc`,
    /// [`RepairError::NodeOutOfRange`] for an id outside the graph, and
    /// [`RepairError::NotAnEdge`] for a link event whose pair is not a de
    /// Bruijn edge.
    pub fn apply_batch(
        &mut self,
        ffc: &Ffc,
        events: &[FaultEvent],
    ) -> Result<RepairOutcome, RepairError> {
        self.session.ensure_shape(ffc)?;
        let n_nodes = self.session.n_nodes;
        let (d, suffix) = (self.session.d, self.session.suffix);
        for &ev in events {
            validate_event(d, suffix, n_nodes, ev)?;
        }
        self.session.book_events(ffc, events);
        if self.session.killed_necks.is_empty() && self.session.revived_necks.is_empty() {
            return Ok(self.session.outcome()); // no topology change
        }
        match self.session.policy_root(ffc) {
            None => {
                self.session.enter_infeasible();
                self.repairs.rebuilds += 1;
            }
            Some(root) if root != self.session.root => {
                self.session.rebuild(ffc, self.effective_shards(ffc));
                self.repairs.rebuilds += 1;
            }
            Some(_) => {
                let budget = self.effective_budget();
                match (budget > 0).then(|| self.session.delta_batch(ffc, budget)) {
                    Some(Ok(())) => self.repairs.incremental += 1,
                    _ => {
                        self.session.rebuild(ffc, self.effective_shards(ffc));
                        self.repairs.rebuilds += 1;
                    }
                }
            }
        }
        Ok(self.session.outcome())
    }

    /// Absorbs the arrival of a fault at node `v` — shorthand for a
    /// one-event [`RingMaintainer::apply_batch`]. A node already faulty is
    /// a no-op (set semantics).
    ///
    /// # Errors
    /// See [`RingMaintainer::apply_batch`].
    pub fn add_fault(&mut self, ffc: &Ffc, v: usize) -> Result<RepairOutcome, RepairError> {
        self.apply_batch(ffc, &[FaultEvent::NodeDown(v)])
    }

    /// Absorbs the repair (removal) of the fault at node `v` — shorthand
    /// for a one-event [`RingMaintainer::apply_batch`]. Clearing a node
    /// that was never faulty is a **documented no-op**: the current
    /// outcome comes back unchanged and no fault-set word is touched.
    ///
    /// # Errors
    /// See [`RingMaintainer::apply_batch`].
    pub fn clear_fault(&mut self, ffc: &Ffc, v: usize) -> Result<RepairOutcome, RepairError> {
        self.apply_batch(ffc, &[FaultEvent::NodeUp(v)])
    }

    /// The delta budget in effect.
    fn effective_budget(&self) -> usize {
        self.budget
            .unwrap_or_else(|| self.session.n_nodes.max(1024))
    }

    /// Freezes the current session state into an immutable
    /// [`RingSnapshot`] (see [`EmbedSession::publish_snapshot`]): only the
    /// structure groups mutated since the last publication are copied, the
    /// rest are shared with the previous snapshot by `Arc`. The snapshot
    /// stays valid — and bit-identical — no matter how many further events
    /// this maintainer absorbs. `applied_events` is the caller's count of
    /// absorbed events, stamped into the snapshot for prefix bookkeeping.
    ///
    /// # Errors
    /// [`RepairError::NotInitialized`] before the first
    /// [`RingMaintainer::reset`].
    pub fn publish(
        &mut self,
        publisher: &mut SnapshotPublisher,
        applied_events: u64,
    ) -> Result<Arc<RingSnapshot>, RepairError> {
        if !self.session.initialized {
            return Err(RepairError::NotInitialized);
        }
        Ok(self.session.publish_snapshot(publisher, applied_events))
    }
}

/// Validates one [`FaultEvent`] against a B(d,n) shape without touching
/// any state — the shared pre-flight check of
/// [`RingMaintainer::apply_batch`] and the service's submission path.
pub(crate) fn validate_event(
    d: usize,
    suffix: usize,
    n_nodes: usize,
    ev: FaultEvent,
) -> Result<(), RepairError> {
    match ev {
        FaultEvent::NodeDown(v) | FaultEvent::NodeUp(v) => {
            if v >= n_nodes {
                return Err(RepairError::NodeOutOfRange { node: v, n_nodes });
            }
        }
        FaultEvent::EdgeDown(u, w) | FaultEvent::EdgeUp(u, w) => {
            for node in [u, w] {
                if node >= n_nodes {
                    return Err(RepairError::NodeOutOfRange { node, n_nodes });
                }
            }
            if w / d != u % suffix {
                return Err(RepairError::NotAnEdge { from: u, to: w });
            }
        }
    }
    Ok(())
}

/// Marks a label dirty exactly once per event.
fn mark_label(label: usize, stamp: u32, labels: &mut Vec<u32>, stamps: &mut [u32]) {
    if stamps[label] != stamp {
        stamps[label] = stamp;
        labels.push(label as u32);
    }
}

/// Scatters a level CSR into a compact per-node level array (UNREACHED
/// holes).
fn scatter_levels(lv: &mut LevelVec, n_nodes: usize, nodes: &[u32], offsets: &[u32]) {
    lv.grow(n_nodes);
    lv.fill_unreached();
    for l in 0..offsets.len().saturating_sub(1) {
        for &v in &nodes[offsets[l] as usize..offsets[l + 1] as usize] {
            lv.set(v as usize, l as u32);
        }
    }
}

/// Inserts `nid` into label `label`'s sorted child slots.
fn insert_child(children: &mut [u32], d: usize, label: usize, nid: u32) {
    let base = label * d;
    let slots = &mut children[base..base + d];
    debug_assert_eq!(slots[d - 1], NONE, "a label can have at most d children");
    let mut pos = 0;
    while slots[pos] != NONE && slots[pos] < nid {
        pos += 1;
    }
    debug_assert_ne!(slots[pos], nid, "child inserted twice");
    slots[pos..].rotate_right(1);
    slots[pos] = nid;
}

/// Removes `nid` from label `label`'s sorted child slots.
fn remove_child(children: &mut [u32], d: usize, label: usize, nid: u32) {
    let base = label * d;
    let slots = &mut children[base..base + d];
    let pos = slots
        .iter()
        .position(|&c| c == nid)
        // PANIC-OK: callers only remove a child they previously inserted
        // (the w-group records are repaired in lockstep with the tree);
        // a miss means session state corruption, not bad caller input —
        // pinned by the exhaustive repair-equality suites.
        .expect("removing a child that is not in the label's group");
    slots[pos..].rotate_left(1);
    slots[d - 1] = NONE;
}
