//! The FFC engine's test suite: paper reproductions, engine-vs-reference
//! differentials, allocation pins, and the parallel-engine equivalences.

use super::*;
use dbg_graph::algo::cycles::is_cycle;
use dbg_graph::FaultSet;

/// Checks that an outcome's cycle is a genuine simple cycle of the
/// faulty graph that avoids every faulty necklace.
fn check_outcome(d: u64, n: u32, faulty_nodes: &[usize], out: &FfcOutcome) {
    let ffc = Ffc::new(d, n);
    let mask = ffc.faulty_necklace_mask(faulty_nodes);
    // Every cycle node is live.
    for &v in &out.cycle {
        assert!(
            !mask[ffc.partition().id_of(v as u64)],
            "cycle visits a faulty necklace"
        );
    }
    // The cycle is a simple cycle of the graph minus faulty necklaces.
    let dead: Vec<usize> = (0..ffc.graph().len())
        .filter(|&v| mask[ffc.partition().id_of(v as u64)])
        .collect();
    let faults = FaultSet::from_nodes(dead);
    let view = faults.view(ffc.graph());
    if out.cycle.len() > 1 {
        assert!(is_cycle(&view, &out.cycle), "FFC output is not a cycle");
    }
    assert_eq!(
        out.cycle.len(),
        out.component_size,
        "cycle must be Hamiltonian in B*"
    );
}

#[test]
fn no_faults_gives_hamiltonian_cycle() {
    for (d, n) in [(2u64, 4u32), (2, 6), (3, 3), (4, 2), (5, 2)] {
        let ffc = Ffc::new(d, n);
        let out = ffc.embed(&[]);
        assert_eq!(out.cycle.len(), ffc.graph().len(), "d={d} n={n}");
        assert_eq!(out.faulty_necklaces, 0);
        assert_eq!(out.removed_nodes, 0);
        check_outcome(d, n, &[], &out);
    }
}

#[test]
fn example_2_1_reproduced() {
    // Faults at 020 and 112 in B(3,3): a 21-node fault-free cycle exists.
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let faults = vec![g.node("020").unwrap(), g.node("112").unwrap()];
    let out = ffc.embed(&faults);
    assert_eq!(out.component_size, 21);
    assert_eq!(out.cycle.len(), 21);
    assert_eq!(out.faulty_necklaces, 2);
    assert_eq!(out.removed_nodes, 6);
    check_outcome(3, 3, &faults, &out);
}

#[test]
fn proposition_2_2_guarantee_holds() {
    // For f ≤ d−2 faults the cycle has length ≥ d^n − n·f and the
    // broadcast depth is at most 2n.
    for (d, n) in [(3u64, 3u32), (4, 3), (5, 2), (4, 4)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let max_f = (d - 2) as usize;
        // Exhaustive over single faults, plus structured multi-fault sets.
        for v in 0..total.min(80) {
            let out = ffc.embed(&[v]);
            assert!(
                out.cycle.len() >= FfcOutcome::guarantee(d, n, 1),
                "d={d} n={n} single fault at {v}: {} < {}",
                out.cycle.len(),
                FfcOutcome::guarantee(d, n, 1)
            );
            assert!(out.eccentricity <= 2 * n as usize);
        }
        if max_f >= 2 {
            // The paper's worst-case fault pattern {a^{n-1}(d-1)}.
            let space = ffc.graph().space();
            let worst: Vec<usize> = (0..max_f as u64)
                .map(|a| {
                    let mut digits = vec![a; n as usize];
                    digits[n as usize - 1] = d - 1;
                    space.from_digits(&digits) as usize
                })
                .collect();
            let out = ffc.embed(&worst);
            assert!(out.cycle.len() >= FfcOutcome::guarantee(d, n, worst.len()));
            check_outcome(d, n, &worst, &out);
        }
    }
}

#[test]
fn worst_case_pattern_is_tight() {
    // With faults {a^{n-1}(d-1) : 0 ≤ a ≤ f-1} each faulty necklace is
    // aperiodic and distinct, so exactly n·f nodes are removed and the
    // FFC cycle meets the optimum d^n − n·f exactly (Section 2.5).
    let (d, n) = (5u64, 3u32);
    let ffc = Ffc::new(d, n);
    let space = ffc.graph().space();
    for f in 1..=(d - 2) as usize {
        let faults: Vec<usize> = (0..f as u64)
            .map(|a| {
                let mut digits = vec![a; n as usize];
                digits[n as usize - 1] = d - 1;
                space.from_digits(&digits) as usize
            })
            .collect();
        let out = ffc.embed(&faults);
        assert_eq!(out.cycle.len(), FfcOutcome::guarantee(d, n, f), "f={f}");
        check_outcome(d, n, &faults, &out);
    }
}

#[test]
fn proposition_2_3_binary_single_fault() {
    // B(2,n) with one faulty node: cycle length ≥ 2^n − (n+1).
    for n in 4..=9u32 {
        let ffc = Ffc::new(2, n);
        let total = ffc.graph().len();
        for v in (0..total).step_by(7) {
            let out = ffc.embed(&[v]);
            let bound = total - (n as usize + 1);
            assert!(
                out.cycle.len() >= bound,
                "n={n} fault={v}: {} < {bound}",
                out.cycle.len()
            );
            check_outcome(2, n, &[v], &out);
        }
    }
}

#[test]
fn multiple_faults_on_same_necklace_cost_only_one_necklace() {
    let ffc = Ffc::new(3, 4);
    let g = ffc.graph();
    // 0112 and 1120 are rotations of each other.
    let faults = vec![g.node("0112").unwrap(), g.node("1120").unwrap()];
    let out = ffc.embed(&faults);
    assert_eq!(out.faulty_necklaces, 1);
    assert_eq!(out.removed_nodes, 4);
    assert_eq!(out.cycle.len(), 81 - 4);
    check_outcome(3, 4, &faults, &out);
}

#[test]
fn root_is_rerouted_when_its_necklace_fails() {
    let ffc = Ffc::new(2, 5);
    // Fail the default root 00001 itself.
    let out = ffc.embed(&[1]);
    assert_ne!(out.root, 1);
    assert!(out.cycle.len() >= 32 - 6);
    check_outcome(2, 5, &[1], &out);
}

#[test]
fn heavy_fault_load_still_yields_valid_cycle() {
    // Way beyond the d−2 guarantee: the algorithm still returns a valid
    // (possibly much shorter) cycle — this is what Tables 2.1/2.2 probe.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let ffc = Ffc::new(2, 8);
    for trial in 0..20 {
        let f = 5 + trial % 10;
        let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..256)).collect();
        let out = ffc.embed(&faults);
        check_outcome(2, 8, &faults, &out);
    }
}

#[test]
fn embed_from_respects_requested_root() {
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let root = g.node("012").unwrap();
    let out = ffc.embed_from(&[g.node("020").unwrap()], root);
    // Root is normalised to its necklace representative — 012 already is.
    assert_eq!(out.root, root);
    assert!(out.cycle.contains(&root));
}

#[test]
#[should_panic(expected = "faulty necklace")]
fn embed_from_rejects_faulty_root() {
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let _ = ffc.embed_from(&[g.node("012").unwrap()], g.node("120").unwrap());
}

#[test]
fn guarantee_helper() {
    assert_eq!(FfcOutcome::guarantee(4, 6, 2), 4096 - 12);
    assert_eq!(FfcOutcome::guarantee(2, 10, 50), 1024 - 500);
    assert_eq!(FfcOutcome::guarantee(2, 3, 100), 0);
}

// ------------------------------------------------------------------
// Engine-specific tests.
// ------------------------------------------------------------------

/// The engine and the textbook reference must agree on every output
/// field for identical inputs.
fn assert_engine_matches_reference(ffc: &Ffc, scratch: &mut EmbedScratch, faults: &[usize]) {
    let reference = ffc.embed_reference(faults);
    let stats = ffc.embed_into(scratch, faults);
    assert_eq!(stats.root, reference.root, "root mismatch for {faults:?}");
    assert_eq!(
        scratch.cycle(),
        &reference.cycle[..],
        "cycle mismatch for {faults:?}"
    );
    assert_eq!(stats.component_size, reference.component_size);
    assert_eq!(stats.eccentricity, reference.eccentricity, "{faults:?}");
    assert_eq!(stats.faulty_necklaces, reference.faulty_necklaces);
    assert_eq!(stats.removed_nodes, reference.removed_nodes);
}

#[test]
fn engine_matches_reference_exhaustively_on_single_faults() {
    for (d, n) in [(2u64, 6u32), (3, 3), (3, 4), (4, 3), (5, 2)] {
        let ffc = Ffc::new(d, n);
        let mut scratch = EmbedScratch::new();
        assert_engine_matches_reference(&ffc, &mut scratch, &[]);
        for v in 0..ffc.graph().len() {
            assert_engine_matches_reference(&ffc, &mut scratch, &[v]);
        }
    }
}

#[test]
fn engine_matches_reference_on_random_heavy_fault_sets() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2026);
    for (d, n) in [(2u64, 8u32), (2, 10), (3, 5), (4, 4)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut scratch = EmbedScratch::new();
        for trial in 0..40 {
            let f = trial % 13;
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            assert_engine_matches_reference(&ffc, &mut scratch, &faults);
        }
    }
}

#[test]
fn scratch_is_reusable_across_sizes() {
    // One scratch, many graphs: buffers grow to the largest and results
    // stay correct when hopping between (d, n).
    let mut scratch = EmbedScratch::new();
    for (d, n) in [(2u64, 4u32), (4, 4), (2, 6), (3, 3), (2, 10), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let stats = ffc.embed_into(&mut scratch, &[0]);
        assert_eq!(stats.component_size, scratch.cycle().len(), "d={d} n={n}");
    }
}

#[test]
fn embed_into_does_not_allocate_after_warmup() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 10);
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut rng = StdRng::seed_from_u64(7);
    // Warm up: the worst-case cycle length (no faults) sizes the cycle
    // buffer (and exercises the dense bit-parallel regime); a
    // faulty-root call sizes the probe path; a heavy fault load keeps
    // the bit passes in the sparse regime.
    let _ = ffc.embed_into(&mut scratch, &[]);
    let _ = ffc.embed_into(&mut scratch, &[1]);
    let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
    let _ = ffc.embed_into(&mut scratch, &heavy);
    let warm = scratch.allocated_bytes();
    let cycle_ptr = scratch.cycle().as_ptr();
    for trial in 0..200 {
        let f = if trial % 3 == 0 {
            250 + trial % 100
        } else {
            trial % 17
        };
        let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        let _ = ffc.embed_into(&mut scratch, &faults);
        assert_eq!(
            scratch.allocated_bytes(),
            warm,
            "scratch grew on trial {trial} (f={f})"
        );
    }
    // The cycle buffer never reallocated either.
    let _ = ffc.embed_into(&mut scratch, &[]);
    assert_eq!(scratch.cycle().as_ptr(), cycle_ptr);
    assert_eq!(scratch.allocated_bytes(), warm);
}

#[test]
fn representative_and_members_match_partition() {
    let ffc = Ffc::new(3, 4);
    let space = ffc.graph().space();
    for v in 0..ffc.graph().len() {
        assert_eq!(
            ffc.representative_of(v),
            space.canonical_rotation(v as u64) as usize
        );
    }
    for (id, neck) in ffc.partition().necklaces().iter().enumerate() {
        let members: Vec<u64> = ffc
            .necklace_members(id)
            .iter()
            .map(|&v| u64::from(v))
            .collect();
        assert_eq!(members, neck.nodes(space));
    }
}

/// Root repair must be one policy, not two: for every fault set of size
/// ≤ 2 that kills the preferred root's necklace — exhaustively in
/// B(2,5) and B(3,3), and for non-default preferred roots as well —
/// `pick_root` and the engine's `probe_for_live_root` must return the
/// identical node ("nearest live node, ties broken by minimal id").
#[test]
fn root_repair_order_is_identical() {
    for (d, n) in [(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut scratch = EmbedScratch::new();
        let mut fault_sets: Vec<Vec<usize>> = (0..total).map(|a| vec![a]).collect();
        for a in 0..total {
            for b in (a + 1)..total {
                fault_sets.push(vec![a, b]);
            }
        }
        for preferred in [ffc.default_root(), 0, total / 2, total - 1] {
            for faults in &fault_sets {
                let mask = ffc.faulty_necklace_mask(faults);
                if !mask[ffc.partition().id_of(preferred as u64)] {
                    continue; // repair only kicks in when the root dies
                }
                let picked = ffc.pick_root(preferred, &mask);
                // Replay the engine's fault marking, then probe.
                scratch.prepare(&ffc.tables);
                let stamp = scratch.stamp;
                for &v in faults {
                    scratch.faulty[ffc.partition().membership()[v] as usize] = stamp;
                }
                let probed = ffc.probe_for_live_root(&mut scratch, preferred);
                assert_eq!(
                    probed, picked,
                    "repair roots diverge for preferred={preferred} faults={faults:?} \
                     in B({d},{n})"
                );
                // And the engine's public entry point agrees (modulo the
                // normalisation to the necklace representative).
                if preferred == ffc.default_root() {
                    let stats = ffc.embed_into(&mut scratch, faults);
                    assert_eq!(stats.root, ffc.representative_of(picked), "{faults:?}");
                }
            }
        }
    }
}

/// `embed_stats_into` must report the identical scalars to the full
/// pipeline — exhaustively over single faults and on random heavy
/// loads, which exercises both the merged-broadcast fast path and the
/// genuine three-pass fallback.
#[test]
fn stats_only_path_matches_full_pipeline() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(13);
    for (d, n) in [(2u64, 6u32), (2, 9), (3, 4), (4, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut full = EmbedScratch::new();
        let mut fast = EmbedScratch::new();
        let mut check = |faults: &[usize]| {
            let expected = ffc.embed_into(&mut full, faults);
            let got = ffc.embed_stats_into(&mut fast, faults);
            assert_eq!(got, expected, "stats diverge for {faults:?} in B({d},{n})");
            assert!(fast.cycle().is_empty(), "stats path must not build a cycle");
        };
        check(&[]);
        for v in 0..total {
            check(&[v]);
        }
        for trial in 0..60 {
            let f = trial % 17;
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            check(&faults);
        }
    }
}

/// The no-allocation property must hold across *both* density regimes
/// of the bit-parallel stats path — light faults drive the
/// dense/bottom-up sweeps (and their fold buffers), heavy faults keep
/// the pass sparse/top-down — and on the retained u8 oracle path.
#[test]
fn stats_only_path_does_not_allocate_after_warmup() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 10);
    assert!(ffc.tables.reach.dense_capable());
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut rng = StdRng::seed_from_u64(3);
    // Warm-up: no faults (dense regime, bottom-up buffers), a faulty
    // root (probe path), and a heavy load (sparse regime throughout).
    let _ = ffc.embed_stats_into(&mut scratch, &[]);
    let _ = ffc.embed_stats_into(&mut scratch, &[1]);
    let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
    let _ = ffc.embed_stats_into(&mut scratch, &heavy);
    let _ = ffc.embed_stats_into_u8(&mut scratch, &[1]);
    let warm = scratch.allocated_bytes();
    for trial in 0..200 {
        let f = match trial % 3 {
            0 => trial % 17,
            1 => 60 + trial % 40,
            _ => 250 + trial % 100,
        };
        let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        let _ = ffc.embed_stats_into(&mut scratch, &faults);
        assert_eq!(
            scratch.allocated_bytes(),
            warm,
            "bit path grew on trial {trial} (f={f})"
        );
        let _ = ffc.embed_stats_into_u8(&mut scratch, &faults);
        assert_eq!(
            scratch.allocated_bytes(),
            warm,
            "u8 path grew on trial {trial} (f={f})"
        );
    }
}

/// Satellite differential: the bit-parallel stats path, the retained
/// u8-stamp path and the textbook reference must report identical
/// scalars for **every** fault set of size ≤ 2 on B(2,5) and B(3,3).
#[test]
fn bit_u8_and_reference_stats_agree_exhaustively() {
    for (d, n) in [(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut bit = EmbedScratch::new();
        let mut u8s = EmbedScratch::new();
        let mut fault_sets: Vec<Vec<usize>> = vec![Vec::new()];
        fault_sets.extend((0..total).map(|a| vec![a]));
        for a in 0..total {
            for b in (a + 1)..total {
                fault_sets.push(vec![a, b]);
            }
        }
        for faults in &fault_sets {
            let want = ffc.embed_reference(faults);
            let got_bit = ffc.embed_stats_into(&mut bit, faults);
            let got_u8 = ffc.embed_stats_into_u8(&mut u8s, faults);
            assert_eq!(got_bit, got_u8, "bit vs u8 for {faults:?} in B({d},{n})");
            assert_eq!(got_bit.root, want.root, "{faults:?}");
            assert_eq!(got_bit.component_size, want.component_size, "{faults:?}");
            assert_eq!(got_bit.eccentricity, want.eccentricity, "{faults:?}");
            assert_eq!(got_bit.faulty_necklaces, want.faulty_necklaces);
            assert_eq!(got_bit.removed_nodes, want.removed_nodes);
        }
    }
}

/// Satellite property test: on B(2,14) the bit-parallel path must
/// agree with the u8 oracle under fault loads on both sides of the
/// density-switch threshold — light loads run the dense bottom-up
/// sweeps, heavy loads (component shredded) stay sparse top-down.
#[test]
fn bit_stats_match_u8_on_b2_14_across_density_regimes() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 14);
    assert!(ffc.tables.reach.dense_capable());
    let total = ffc.graph().len();
    let mut bit = EmbedScratch::new();
    let mut u8s = EmbedScratch::new();
    let mut rng = StdRng::seed_from_u64(0xB17);
    let mut check = |faults: &[usize]| {
        let got = ffc.embed_stats_into(&mut bit, faults);
        let want = ffc.embed_stats_into_u8(&mut u8s, faults);
        assert_eq!(got, want, "{} faults", faults.len());
    };
    check(&[]);
    for trial in 0..12 {
        // Dense side: a handful of faults, B* stays near-complete.
        let f = trial % 9;
        let light: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        check(&light);
        // Sparse side: thousands of faults shred the graph so no
        // frontier ever reaches the dense threshold.
        let f = 2000 + 500 * (trial % 4);
        let heavy: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        check(&heavy);
    }
}

/// Satellite exhaustive differential: the parallel engine must
/// reproduce the serial engine's stats **and cycle bytes** for every
/// fault set of size ≤ 2 on B(2,5) and B(3,3), at shard counts 1, 2,
/// 3, 5 and 7 — non-power-of-two counts included — plus 64, far above
/// any host's `available_parallelism` (B(3,3) and B(2,5) both delegate
/// the reachability passes — non-pow2 / sub-word shapes — so this also
/// pins the delegation). Uses the `_exact` variant so the
/// effective-shards clamp cannot fold the counts away.
#[test]
fn parallel_engine_matches_serial_exhaustively_on_small_fault_sets() {
    for (d, n) in [(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut serial = EmbedScratch::new();
        let mut par = EmbedScratch::new();
        let mut fault_sets: Vec<Vec<usize>> = vec![Vec::new()];
        fault_sets.extend((0..total).map(|a| vec![a]));
        for a in 0..total {
            for b in (a + 1)..total {
                fault_sets.push(vec![a, b]);
            }
        }
        for faults in &fault_sets {
            let want = ffc.embed_into(&mut serial, faults);
            for shards in [1usize, 2, 3, 5, 7, 64] {
                let got = ffc.embed_into_parallel_exact(&mut par, faults, shards);
                assert_eq!(
                    got, want,
                    "stats diverge for {faults:?} x{shards} B({d},{n})"
                );
                assert_eq!(
                    par.cycle(),
                    serial.cycle(),
                    "cycle bytes diverge for {faults:?} x{shards} B({d},{n})"
                );
            }
        }
    }
}

/// Satellite property test: on B(2,14) the parallel engine must match
/// the serial engine under fault loads on both sides of the
/// density-switch threshold, at shards 1, 2, 3, 5 and 7 (forced via
/// the `_exact` variant) — light loads run the sharded dense sweeps,
/// heavy loads keep every level in the leader's sparse regime.
#[test]
fn parallel_engine_matches_serial_on_b2_14_across_density_regimes() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 14);
    assert!(ffc.tables.reach.dense_capable());
    let total = ffc.graph().len();
    let mut serial = EmbedScratch::new();
    let mut par = EmbedScratch::new();
    let mut rng = StdRng::seed_from_u64(0xFA12);
    let mut check = |faults: &[usize]| {
        let want = ffc.embed_into(&mut serial, faults);
        for shards in [1usize, 2, 3, 5, 7] {
            let got = ffc.embed_into_parallel_exact(&mut par, faults, shards);
            assert_eq!(got, want, "{} faults x{shards}", faults.len());
            assert_eq!(
                par.cycle(),
                serial.cycle(),
                "{} faults x{shards}",
                faults.len()
            );
        }
    };
    check(&[]);
    for trial in 0..8 {
        // Dense side: a handful of faults, B* stays near-complete.
        let f = trial % 7;
        let light: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        check(&light);
        // Sparse side: thousands of faults shred the graph so no
        // frontier ever reaches the dense threshold.
        let f = 2000 + 500 * (trial % 4);
        let heavy: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
        check(&heavy);
    }
}

/// The parallel engine honours the scratch's no-allocation contract
/// once warmed up at a fixed (d, n) and shard count. The pool workers
/// persist inside the scratch, so after warm-up not even thread spawns
/// remain (`_exact` keeps the clamp from folding the 3-shard case).
#[test]
fn parallel_engine_does_not_allocate_after_warmup() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 10);
    let total = ffc.graph().len();
    let mut scratch = EmbedScratch::new();
    let mut rng = StdRng::seed_from_u64(77);
    for shards in [1usize, 3] {
        let _ = ffc.embed_into_parallel_exact(&mut scratch, &[], shards);
        let _ = ffc.embed_into_parallel_exact(&mut scratch, &[1], shards);
        let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
        let _ = ffc.embed_into_parallel_exact(&mut scratch, &heavy, shards);
        let warm = scratch.allocated_bytes();
        for trial in 0..60 {
            let f = [0usize, 5, 40, 300][trial % 4];
            let faults: Vec<usize> = (0..f).map(|_| rng.gen_range(0..total)).collect();
            let _ = ffc.embed_into_parallel_exact(&mut scratch, &faults, shards);
            assert_eq!(
                scratch.allocated_bytes(),
                warm,
                "scratch grew on trial {trial} x{shards}"
            );
        }
    }
}

/// The effective-shards clamp: a huge requested shard count on a small
/// graph folds to 1 and the clamped entry point stays byte-identical
/// to the serial engine (the public contract of
/// [`Ffc::embed_into_parallel`] vs the `_exact` escape hatch).
#[test]
fn embed_into_parallel_clamps_oversubscribed_shard_requests() {
    let ffc = Ffc::new(2, 10);
    let mut serial = EmbedScratch::new();
    let mut par = EmbedScratch::new();
    for faults in [vec![], vec![7usize], vec![3, 99, 500]] {
        let want = ffc.embed_into(&mut serial, &faults);
        let got = ffc.embed_into_parallel(&mut par, &faults, 1 << 20);
        assert_eq!(got, want, "stats diverge for {faults:?} under the clamp");
        assert_eq!(par.cycle(), serial.cycle());
    }
    // The heuristic itself: small graphs fold any request to one shard;
    // the node-count bound scales while the CPU bound caps.
    use crate::bitreach::{effective_shards, MIN_NODES_PER_SHARD};
    assert_eq!(effective_shards(1 << 20, 1024), 1);
    assert_eq!(effective_shards(0, 1024), 1);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    assert_eq!(
        effective_shards(1 << 20, 64 * MIN_NODES_PER_SHARD),
        cpus.min(64)
    );
    assert_eq!(effective_shards(1, 64 * MIN_NODES_PER_SHARD), 1);
}

/// Satellite regression: oversized spaces are rejected with the typed
/// error before any table is allocated, instead of truncating node
/// ids in release builds.
#[test]
fn try_new_rejects_oversized_spaces() {
    // B(2,32) has 2^32 nodes — one past the u32 id space.
    let err = Ffc::try_new(2, 32).expect_err("B(2,32) must not fit u32 ids");
    assert_eq!(err.n_nodes, Some(1 << 32));
    // B(2,64) overflows u64 entirely.
    let err = Ffc::try_new(2, 64).expect_err("B(2,64) overflows u64");
    assert_eq!(err.n_nodes, None);
    // In-range shapes still construct.
    assert!(Ffc::try_new(2, 10).is_ok());
    assert!(Ffc::try_with_shards(3, 3, 2).is_ok());
}

#[test]
#[should_panic(expected = "too large")]
fn new_panics_on_oversized_spaces() {
    let _ = Ffc::new(2, 32);
}

/// Satellite audit: `EmbedScratch::allocated_bytes` must account for the
/// parallel-path buffers. The serial engine shares the selection
/// machinery (packed (stamp|level) / best-key slots, exit bitmap), so
/// after a serial warm-up only `ParBitScratch` — the sharded atomic
/// bitmaps plus worker pool — is still unsized; warming the parallel
/// path must grow the accounting by at least that much (and then hold,
/// per `parallel_engine_does_not_allocate_after_warmup`).
#[test]
fn allocated_bytes_accounts_for_parallel_path_buffers() {
    let ffc = Ffc::new(2, 10);
    let mut scratch = EmbedScratch::new();
    let _ = ffc.embed_into(&mut scratch, &[]);
    let _ = ffc.embed_into(&mut scratch, &[1, 5, 9]);
    let serial_only = scratch.allocated_bytes();
    // The shared selection buffers are already sized by the serial engine.
    assert!(scratch.plvl.allocated_bytes() > 0);
    assert!(scratch.pbest.allocated_bytes() > 0);
    // The exact variant bypasses the effective-shards clamp (B(2,10) is
    // far below MIN_NODES_PER_SHARD) so the sharded passes really run.
    let _ = ffc.embed_into_parallel_exact(&mut scratch, &[1, 5, 9], 2);
    let with_parallel = scratch.allocated_bytes();
    assert!(
        with_parallel > serial_only,
        "parallel-path buffers (ParBitScratch) are missing from the \
         accounting: {with_parallel} <= {serial_only}"
    );
    // The delta is at least the sharded atomic bitmaps' size.
    assert!(with_parallel - serial_only >= scratch.pbits.allocated_bytes());
}

// ------------------------------------------------------------------
// Incremental engine (EmbedSession / RingMaintainer) tests.
// ------------------------------------------------------------------

/// Asserts the maintainer's state equals a from-scratch embed of its
/// accumulated fault set: stats and ring bytes.
fn assert_maintainer_matches_scratch(
    ffc: &Ffc,
    maint: &RingMaintainer,
    scratch: &mut EmbedScratch,
    ring: &mut Vec<usize>,
    ctx: &str,
) {
    let faults = maint.session().faulty_nodes().to_vec();
    let want = ffc.embed_into(scratch, &faults);
    assert_eq!(
        maint.stats(),
        want,
        "stats diverge ({ctx}) faults={faults:?}"
    );
    maint.ring_into(ring);
    assert_eq!(
        &ring[..],
        scratch.cycle(),
        "ring bytes diverge ({ctx}) faults={faults:?}"
    );
}

/// The ISSUE 5 acceptance grid: on B(2,5) and B(3,3), for **every**
/// ≤2-fault set and **every arrival order** (both permutations of each
/// pair), and for add-then-clear round trips, the maintainer's stats and
/// ring bytes must equal a from-scratch `embed_into` of the accumulated
/// fault set after every single event. Root-killing faults are included,
/// so the rebuild fallback is exercised alongside the delta path.
#[test]
fn incremental_matches_from_scratch_exhaustively_on_all_arrival_orders() {
    for (d, n) in [(2u64, 5u32), (3, 3)] {
        let ffc = Ffc::new(d, n);
        let total = ffc.graph().len();
        let mut maint = RingMaintainer::new();
        let mut scratch = EmbedScratch::new();
        let mut ring = Vec::new();
        let mut check = |maint: &RingMaintainer, scratch: &mut EmbedScratch, ctx: &str| {
            assert_maintainer_matches_scratch(&ffc, maint, scratch, &mut ring, ctx);
        };
        // Singles, with add → clear round trips.
        maint.reset(&ffc, &[]).expect("in-range");
        check(&maint, &mut scratch, "empty");
        for a in 0..total {
            maint.add_fault(&ffc, a).expect("in-range");
            check(&maint, &mut scratch, "single add");
            maint.clear_fault(&ffc, a).expect("in-range");
            check(&maint, &mut scratch, "single clear");
        }
        // Pairs, both arrival orders, then clears in both orders.
        for a in 0..total {
            for b in (a + 1)..total {
                for order in [[a, b], [b, a]] {
                    maint.reset(&ffc, &[]).expect("in-range");
                    maint.add_fault(&ffc, order[0]).expect("in-range");
                    check(&maint, &mut scratch, "pair first add");
                    maint.add_fault(&ffc, order[1]).expect("in-range");
                    check(&maint, &mut scratch, "pair second add");
                    maint.clear_fault(&ffc, order[0]).expect("in-range");
                    check(&maint, &mut scratch, "pair first clear");
                    maint.clear_fault(&ffc, order[1]).expect("in-range");
                    check(&maint, &mut scratch, "pair second clear");
                }
            }
        }
        // The grid must have exercised genuine delta repairs, not just
        // rebuild fallbacks.
        assert!(maint.repairs().incremental > 0, "no delta repair ran");
    }
}

/// Duplicate faults (same node twice, or a second node on an already-dead
/// necklace) must be no-ops at the topology level, mirroring the set
/// semantics of `embed_into`'s fault list.
#[test]
fn incremental_duplicate_and_same_necklace_faults_are_absorbed() {
    let ffc = Ffc::new(3, 4);
    let g = ffc.graph();
    let mut maint = RingMaintainer::new();
    let mut scratch = EmbedScratch::new();
    let mut ring = Vec::new();
    maint.reset(&ffc, &[]).expect("in-range");
    // 0112 and 1120 are rotations of each other: one necklace.
    let a = g.node("0112").unwrap();
    let b = g.node("1120").unwrap();
    let s1 = maint.add_fault(&ffc, a).expect("in-range").stats();
    let s2 = maint.add_fault(&ffc, a).expect("in-range").stats(); // duplicate node
    assert_eq!(s1, s2);
    let s3 = maint.add_fault(&ffc, b).expect("in-range").stats(); // same necklace
    assert_eq!(s1, s3);
    assert_eq!(s3.faulty_necklaces, 1);
    assert_eq!(s3.removed_nodes, 4);
    assert_maintainer_matches_scratch(&ffc, &maint, &mut scratch, &mut ring, "same necklace");
    // Clearing one of the two faults keeps the necklace dead …
    let s4 = maint.clear_fault(&ffc, a).expect("in-range").stats();
    assert_eq!(s4, s3);
    assert_maintainer_matches_scratch(&ffc, &maint, &mut scratch, &mut ring, "partial clear");
    // … and clearing the last one revives it.
    let s5 = maint.clear_fault(&ffc, b).expect("in-range").stats();
    assert_eq!(s5.faulty_necklaces, 0);
    assert_eq!(s5.removed_nodes, 0);
    assert_maintainer_matches_scratch(&ffc, &maint, &mut scratch, &mut ring, "full clear");
}

/// A budget of 0 forces every event through the rebuild fallback; the
/// results must still be identical — the fallback and the delta path are
/// one contract.
#[test]
fn incremental_zero_budget_forces_identical_rebuilds() {
    let ffc = Ffc::new(2, 6);
    let total = ffc.graph().len();
    let mut delta = RingMaintainer::new();
    let mut rebuild = RingMaintainer::new().with_budget(Some(0));
    let mut ring_a = Vec::new();
    let mut ring_b = Vec::new();
    delta.reset(&ffc, &[]).expect("in-range");
    rebuild.reset(&ffc, &[]).expect("in-range");
    for v in (0..total).step_by(3) {
        let sa = delta.add_fault(&ffc, v).expect("in-range").stats();
        let sb = rebuild.add_fault(&ffc, v).expect("in-range").stats();
        assert_eq!(sa, sb, "add {v}");
        delta.ring_into(&mut ring_a);
        rebuild.ring_into(&mut ring_b);
        assert_eq!(ring_a, ring_b, "add {v}");
        let sa = delta.clear_fault(&ffc, v).expect("in-range").stats();
        let sb = rebuild.clear_fault(&ffc, v).expect("in-range").stats();
        assert_eq!(sa, sb, "clear {v}");
    }
    assert_eq!(delta.repairs().rebuilds, 1, "delta path fell back");
    assert!(rebuild.repairs().incremental == 0);
}

/// `reset` with an initial fault set equals embedding that set from
/// scratch, and the maintainer keeps working across resets (including
/// graph switches).
#[test]
fn incremental_reset_and_graph_switch() {
    let mut maint = RingMaintainer::new();
    let mut scratch = EmbedScratch::new();
    let mut ring = Vec::new();
    for (d, n) in [(2u64, 6u32), (3, 3), (2, 6), (4, 3)] {
        let ffc = Ffc::new(d, n);
        let faults = [1usize, 7, 7, 13];
        maint.reset(&ffc, &faults).expect("in-range");
        assert_maintainer_matches_scratch(&ffc, &maint, &mut scratch, &mut ring, "reset");
        maint.add_fault(&ffc, 3).expect("in-range");
        assert_maintainer_matches_scratch(&ffc, &maint, &mut scratch, &mut ring, "post-reset add");
    }
}

/// After warm-up at a fixed (d, n), repair events perform no heap
/// allocation — the incremental analogue of
/// `embed_into_does_not_allocate_after_warmup`, and the satellite audit
/// that the session accounts every buffer it owns (delta scratch, CSR
/// emission, parallel bitmaps included).
#[test]
fn incremental_repairs_do_not_allocate_after_warmup() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ffc = Ffc::new(2, 10);
    let total = ffc.graph().len();
    let mut maint = RingMaintainer::new();
    let mut rng = StdRng::seed_from_u64(0x5e55);
    // Warm up: a rebuild with a heavy fault set (sizes the CSR buffers at
    // their worst case), a root-killing event (probe path + rebuild), and
    // a few delta events.
    let heavy: Vec<usize> = (0..300).map(|_| rng.gen_range(0..total)).collect();
    maint.reset(&ffc, &heavy).expect("in-range");
    maint.reset(&ffc, &[]).expect("in-range");
    maint.add_fault(&ffc, 1).expect("in-range"); // kills the root necklace: rebuild + probe
    maint.clear_fault(&ffc, 1).expect("in-range");
    for v in [5usize, 100, 731] {
        maint.add_fault(&ffc, v).expect("in-range");
    }
    let warm = maint.session().allocated_bytes();
    for trial in 0..300 {
        let v = rng.gen_range(0..total);
        if maint.session().faulty_nodes().contains(&v) {
            maint.clear_fault(&ffc, v).expect("in-range");
        } else {
            maint.add_fault(&ffc, v).expect("in-range");
        }
        assert_eq!(
            maint.session().allocated_bytes(),
            warm,
            "session grew on trial {trial}"
        );
    }
}

/// The session's forward-level histogram sums to the forward-reachable
/// count and its broadcast histogram to |B*| (the invariant the netsim
/// online harness leans on).
#[test]
fn incremental_forward_histogram_is_consistent() {
    let ffc = Ffc::new(2, 7);
    let mut maint = RingMaintainer::new();
    maint.reset(&ffc, &[9, 33]).expect("in-range");
    let counts = maint.session().forward_level_counts();
    assert!(!counts.is_empty());
    assert_eq!(counts[0], 1, "exactly the root at level 0");
    let reachable: usize = counts.iter().sum();
    assert!(reachable >= maint.stats().component_size);
}

#[test]
fn embed_into_from_matches_embed_from() {
    let ffc = Ffc::new(3, 3);
    let g = ffc.graph();
    let root = g.node("012").unwrap();
    let faults = vec![g.node("020").unwrap()];
    let mut scratch = EmbedScratch::new();
    let stats = ffc.embed_into_from(&mut scratch, &faults, root);
    let out = ffc.embed_from(&faults, root);
    assert_eq!(stats.root, out.root);
    assert_eq!(scratch.cycle(), &out.cycle[..]);
}
