//! The textbook reference implementation: materialised SCC search plus
//! hash-map w-groups, rebuilding every intermediate from scratch. Kept
//! verbatim as the differential-testing oracle for the engine (and the
//! "naive fresh embed" baseline in the Criterion benchmarks) — every other
//! pipeline in this module tree is ultimately pinned against it.

use std::collections::HashMap;

use dbg_graph::algo::bfs::bfs_tree;
use dbg_graph::algo::components::scc_component_ids;
use dbg_graph::{DeBruijn, Topology};

use super::{Ffc, FfcOutcome};

/// A de Bruijn graph restricted to an alive-node mask, used by the
/// reference implementation for component and BFS computations without
/// materialising subgraphs.
struct Masked<'a> {
    graph: &'a DeBruijn,
    alive: &'a [bool],
}

impl Topology for Masked<'_> {
    fn node_count(&self) -> usize {
        self.graph.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        if !self.alive[v] {
            return;
        }
        self.graph.for_each_successor(v, &mut |u| {
            if self.alive[u] {
                visit(u);
            }
        });
    }
}

impl Ffc {
    /// The textbook formulation of the algorithm: materialised SCC search
    /// plus hash-map w-groups, rebuilding every intermediate from scratch.
    /// Kept as the differential-testing oracle for the engine and as the
    /// "naive fresh embed" baseline in the Criterion benchmarks.
    #[must_use]
    pub fn embed_reference(&self, faulty_nodes: &[usize]) -> FfcOutcome {
        let faulty_mask = self.faulty_necklace_mask(faulty_nodes);
        let root = self.pick_root(self.default_root(), &faulty_mask);
        self.embed_with_mask(root, &faulty_mask)
    }

    fn embed_with_mask(&self, root: usize, faulty_mask: &[bool]) -> FfcOutcome {
        let space = self.graph.space();
        let d = self.graph.d();
        let suffix_count = space.msd_place();
        let n_nodes = self.graph.len();

        // Root is normalised to the minimal node of its necklace so that
        // N(R) = [R], as Step 1.1 requires.
        let root = space.canonical_rotation(root as u64) as usize;

        // Per-node aliveness induced by the necklace fault mask.
        let alive: Vec<bool> = (0..n_nodes)
            .map(|v| !faulty_mask[self.partition.id_of(v as u64)])
            .collect();
        let faulty_necklaces = faulty_mask.iter().filter(|&&b| b).count();
        let removed_nodes = alive.iter().filter(|&&a| !a).count();

        // B*: the strongly connected component of the surviving graph that
        // contains the root. (The paper's "component" of a digraph.) The
        // node → component-id labelling makes the root lookup O(1) instead
        // of scanning every component's node list.
        let masked = Masked {
            graph: &self.graph,
            alive: &alive,
        };
        let (comp_ids, _) = scc_component_ids(&masked);
        let root_comp = comp_ids[root];
        let mut in_bstar = vec![false; n_nodes];
        let mut component_size = 0usize;
        for v in 0..n_nodes {
            if comp_ids[v] == root_comp {
                in_bstar[v] = true;
                component_size += 1;
            }
        }

        // Necklaces are unions of cycles, so they are wholly inside or
        // wholly outside B*.
        debug_assert!((0..n_nodes).all(|v| {
            !in_bstar[v] || {
                let rep = self.partition.necklace_of(v as u64).representative() as usize;
                in_bstar[rep]
            }
        }));

        // Step 1.1: broadcast from the root over B* (synchronous BFS with
        // minimal-predecessor tie-breaking).
        let restricted = Masked {
            graph: &self.graph,
            alive: &in_bstar,
        };
        let tree = bfs_tree(&restricted, root);
        let eccentricity = tree.depth();

        // Step 1.2: spanning tree T of N*. For every non-root live necklace
        // pick the node Y that received the broadcast first (ties: minimal
        // id); the tree edge enters [Y]'s necklace from the necklace of Y's
        // BFS parent, labeled with Y's (n−1)-digit prefix.
        let root_necklace = self.partition.id_of(root as u64);
        // label w -> (parent necklace, children necklaces)
        let mut groups: HashMap<u64, (usize, Vec<usize>)> = HashMap::new();
        for (id, neck) in self.partition.necklaces().iter().enumerate() {
            if faulty_mask[id] || id == root_necklace {
                continue;
            }
            let rep = neck.representative() as usize;
            if !in_bstar[rep] {
                continue;
            }
            let chosen = neck
                .nodes(space)
                .into_iter()
                .map(|c| c as usize)
                .min_by_key(|&v| (tree.level[v], v))
                .expect("necklaces are non-empty");
            debug_assert!(tree.reached(chosen), "B* node not reached by the broadcast");
            let parent = tree.parent[chosen];
            let parent_necklace = self.partition.id_of(parent as u64);
            let label = chosen as u64 / d; // the (n−1)-digit prefix of Y
            debug_assert_eq!(parent as u64 % suffix_count, label);
            let entry = groups.entry(label).or_insert((parent_necklace, Vec::new()));
            debug_assert_eq!(
                entry.0, parent_necklace,
                "T_w must have a single parent necklace (height-one property)"
            );
            entry.1.push(id);
        }

        // Step 2: modify each T_w into a directed cycle of w-edges (D).
        // Members are ordered by necklace representative, which coincides
        // with necklace id order.
        let mut d_edges: HashMap<(usize, u64), usize> = HashMap::new();
        for (&label, (parent, children)) in &groups {
            let mut members = children.clone();
            members.push(*parent);
            members.sort_unstable();
            members.dedup();
            let k = members.len();
            for i in 0..k {
                d_edges.insert((members[i], label), members[(i + 1) % k]);
            }
        }

        // Step 3: successor function and cycle extraction.
        let successor = |v: usize| -> usize {
            let w = v as u64 % suffix_count; // suffix of v = label of its exit edge
            let my_necklace = self.partition.id_of(v as u64);
            if let Some(&target) = d_edges.get(&(my_necklace, w)) {
                // Leave the necklace: successor is wβ where βw lies on the
                // target necklace.
                for beta in 0..d {
                    let entering = w * d + beta; // the node wβ
                    let beta_w = beta * suffix_count + w; // the node βw (same necklace)
                    if self.partition.id_of(beta_w) == target {
                        debug_assert!(in_bstar[entering as usize]);
                        return entering as usize;
                    }
                }
                unreachable!("a w-edge of D always has an entry node on the target necklace");
            }
            // Stay on the necklace.
            space.rotate_left(v as u64) as usize
        };

        let mut cycle = Vec::with_capacity(component_size);
        let mut v = root;
        loop {
            cycle.push(v);
            v = successor(v);
            if v == root {
                break;
            }
            debug_assert!(
                cycle.len() <= component_size,
                "successor walk escaped B* or looped early"
            );
        }

        FfcOutcome {
            root,
            cycle,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }
}
