//! The fault-free cycle (FFC) algorithm for node failures (Chapter 2).
//!
//! Given a set of faulty processors in B(d,n), the algorithm
//!
//! 1. declares every necklace containing a faulty node *faulty* and removes
//!    it, keeping the component B* of what remains that contains the root;
//! 2. builds a spanning tree T of the necklace adjacency graph N* from the
//!    propagation pattern of a broadcast out of the root R (each w-labeled
//!    subtree T_w has height one because nodes wα and wβ share their
//!    earliest predecessor);
//! 3. turns every T_w into a directed cycle of w-edges (the modified tree
//!    D) and reads off a successor function: node αw leaves its necklace
//!    through the w-edge of D if its necklace has one, and otherwise
//!    follows its own necklace.
//!
//! The resulting successor function traces a Hamiltonian cycle of B*
//! (Proposition 2.1). When f ≤ d−2 processors fail the cycle has length at
//! least d^n − n·f and the broadcast finishes within 2n rounds
//! (Proposition 2.2); a single failure in the binary graph still leaves a
//! cycle of length ≥ 2^n − (n+1) (Proposition 2.3).
//!
//! # The embedding engine
//!
//! The paper's headline experiments (Tables 2.1/2.2) re-run this embedding
//! thousands of times per (d, n, f) cell, so the hot path is organised as
//! an *engine*: [`Ffc::new`] precomputes immutable flat tables once (node →
//! necklace id, necklace representatives/lengths, and a CSR layout of
//! necklace members), and a reusable [`EmbedScratch`] owns every piece of
//! per-call mutable state — stamped visit masks, BFS queues, the successor
//! array, and the output cycle buffer. After the first call at a given
//! (d, n) ("warm-up"), [`Ffc::embed_into`] performs **no heap allocation**:
//! buffers are stamp-invalidated, not cleared, and only ever grow.
//!
//! Per call the engine does:
//!
//! * **Component**: instead of a whole-graph Tarjan SCC pass, a
//!   forward-BFS and a backward-BFS from the root over the implicit
//!   successor/predecessor arithmetic of B(d,n), restricted to live nodes;
//!   the intersection of the two reachable sets is exactly the strongly
//!   connected component B* of the root.
//! * **Broadcast**: a level-synchronous BFS with minimal-predecessor tie
//!   breaking over B* only.
//! * **Cycle construction**: the w-group tables are flat arrays keyed by
//!   necklace id / edge label (no hash maps); the successor function is
//!   materialised into a flat array and the cycle is read off by pointer
//!   chasing.
//!
//! The textbook formulation (materialised SCCs + hash-map groups) is kept
//! as [`Ffc::embed_reference`]; it is used by the differential tests and
//! as the baseline in the Criterion benchmarks.
//!
//! This module is the *centralized* reference implementation; the
//! message-passing version that mirrors Section 2.4 round by round lives in
//! the `dbg-netsim` crate and is checked against this one.

use dbg_graph::DeBruijn;
use dbg_necklace::NecklacePartition;

use crate::bitreach::{AtomicCells, BitReach, BitScratch, ParBitScratch, SpaceTooLarge};

mod phases;
mod reference;
pub mod session;
pub mod snapshot;

#[cfg(test)]
mod tests;

pub use session::{
    EmbedSession, FaultEvent, RepairError, RepairOutcome, RepairStats, RingMaintainer,
};
pub use snapshot::{LookupError, RingSnapshot, SnapshotPublisher};

/// The FFC embedder for a fixed B(d,n): owns the necklace partition and the
/// engine's immutable lookup tables so that repeated embeddings (e.g. the
/// Monte-Carlo sweeps of Tables 2.1/2.2) recompute nothing.
#[derive(Clone, Debug)]
pub struct Ffc {
    graph: DeBruijn,
    partition: NecklacePartition,
    tables: EngineTables,
}

/// Immutable engine constants shared by every embedding at a fixed (d, n).
/// The per-necklace tables (representatives, lengths, member CSR) live on
/// the [`NecklacePartition`], which builds them in its single
/// FKM-enumeration pass — the engine no longer duplicates them.
#[derive(Clone, Debug)]
struct EngineTables {
    /// Alphabet size d, as usize for index arithmetic.
    d: usize,
    /// d^(n−1): the place value of the leading digit, and the number of
    /// distinct (n−1)-digit edge labels.
    suffix_count: usize,
    /// d^n.
    n_nodes: usize,
    /// Number of necklaces.
    n_necks: usize,
    /// The bit-parallel reachability engine for this shape.
    reach: BitReach,
}

/// The result of one FFC embedding.
#[derive(Clone, Debug)]
pub struct FfcOutcome {
    /// The root processor R used for the broadcast (always the minimal node
    /// of its necklace).
    pub root: usize,
    /// The fault-free cycle, as a sequence of node ids. Its length equals
    /// the size of B*. A single-node "cycle" is only meaningful when that
    /// node carries a self-loop (the constant words).
    pub cycle: Vec<usize>,
    /// |B*|: the number of nodes in the surviving component of the root.
    pub component_size: usize,
    /// The eccentricity of the root within B* — the number of broadcast
    /// rounds Step 1.1 needs (the K of the O(K + n) bound).
    pub eccentricity: usize,
    /// Number of faulty necklaces removed.
    pub faulty_necklaces: usize,
    /// Total number of nodes removed with the faulty necklaces (N_F ≤ n·f).
    pub removed_nodes: usize,
}

impl FfcOutcome {
    /// The paper's guaranteed minimum cycle length d^n − n·f for `f` faults
    /// (meaningful when f ≤ d−2).
    #[must_use]
    pub fn guarantee(d: u64, n: u32, faults: usize) -> usize {
        let total = dbg_algebra::num::pow(d, n) as usize;
        total.saturating_sub(n as usize * faults)
    }
}

/// The scalar results of one [`Ffc::embed_into`] call; the cycle itself
/// stays in the scratch's buffer ([`EmbedScratch::cycle`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbedStats {
    /// The root processor R used for the broadcast.
    pub root: usize,
    /// |B*| — also the length of the cycle left in the scratch.
    pub component_size: usize,
    /// Eccentricity of the root within B* (broadcast rounds).
    pub eccentricity: usize,
    /// Number of faulty necklaces removed.
    pub faulty_necklaces: usize,
    /// Nodes removed with the faulty necklaces.
    pub removed_nodes: usize,
}

const NONE: u32 = u32::MAX;

/// Reusable per-call state for the embedding engine.
///
/// One scratch serves any number of [`Ffc::embed_into`] calls (including
/// across different (d, n) — buffers grow to the largest graph seen and
/// never shrink). Invalidation is by stamping: each call increments a
/// call counter and a slot is "set this call" iff it holds the current
/// stamp, so no O(d^n) clearing happens between calls. After the first
/// call at a fixed (d, n), **no method of this type allocates**.
#[derive(Clone, Debug, Default)]
pub struct EmbedScratch {
    /// Monotone per-call stamp; slot arrays compare against this.
    stamp: u32,
    /// Stamp for the stats-only reachability arrays below. One byte per
    /// slot quarters the hot working set of `embed_stats_into` (the sweep
    /// engine's fast path); it wraps every 255 calls, at which point the
    /// arrays are cleared once (amortised O(1/255) per call).
    stamp8: u8,
    // Per-necklace state.
    /// Stamp: necklace is faulty this call.
    faulty: Vec<u32>,
    // Per-node state.
    /// Stamp: reached by the root-repair probe.
    probe: Vec<u32>,
    /// Byte-stamp: forward-reachable, u8-stamp oracle path.
    fwd8: Vec<u8>,
    /// Byte-stamp: backward-reachable, u8-stamp oracle path.
    bwd8: Vec<u8>,
    /// Byte-stamp: broadcast-reached, u8-stamp oracle path.
    vis8: Vec<u8>,
    /// Word-packed bitmaps and frontiers of the bit-parallel reachability
    /// engine (fault mask, forward/backward/broadcast visited sets).
    bits: BitScratch,
    /// Shared-write bitmaps of the multi-shard parallel passes
    /// ([`Ffc::embed_into_parallel`]).
    pbits: ParBitScratch,
    /// Parallel engine: packed (stamp << 32 | broadcast level) per node —
    /// one combined visited/level slot, so the parent lookup costs a
    /// single random read where the serial engine reads `vis` and `level`.
    /// Unlike the session's level arrays this slot stays 64-bit under the
    /// PR 10 compaction: the stamp occupies the full upper half, so "where
    /// width permits" does not apply — narrowing would force a per-call
    /// clear, trading the saved bandwidth back for a full-array sweep.
    plvl: AtomicCells,
    /// Parallel engine: per-necklace min (level << 32 | node) over B*
    /// (`u64::MAX` = necklace not in B* this call; cleared per call).
    pbest: AtomicCells,
    /// Bit `v` set ⟺ node `v` leaves its necklace through a w-edge. The
    /// streaming cycle readoff of both engines tests this bitmap
    /// (L2-resident even at B(2,20)) and computes the necklace rotation
    /// arithmetically, instead of loading a fully materialised successor
    /// array from DRAM on every step.
    exit_bits: Vec<u64>,
    /// Successor overrides: written (and later read) only at the w-exit
    /// nodes flagged in `exit_bits`; every other node follows its
    /// necklace rotation arithmetically.
    succ: Vec<u32>,
    // Per-label state (indexed by (n−1)-digit edge label).
    /// Stamp: label has a w-group this call.
    label_stamp: Vec<u32>,
    /// Parent necklace of the label's w-group.
    label_parent: Vec<u32>,
    // Worklists (cleared per call; capacity persists).
    /// Current BFS frontier / FIFO queue.
    queue: Vec<u32>,
    /// Next BFS frontier.
    next: Vec<u32>,
    /// The nodes of B*, as emitted level by level from the broadcast.
    bstar: Vec<u32>,
    /// CSR boundaries of the broadcast levels within `bstar`.
    level_offsets: Vec<u32>,
    /// Packed (label << 32 | necklace id) w-group membership records.
    group_entries: Vec<u64>,
    /// Member necklaces of the w-group being wired.
    members: Vec<u32>,
    /// The output cycle of the most recent call.
    cycle: Vec<usize>,
}

impl EmbedScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first
    /// embedding that uses it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The fault-free cycle produced by the most recent
    /// [`Ffc::embed_into`] call on this scratch.
    #[must_use]
    pub fn cycle(&self) -> &[usize] {
        &self.cycle
    }

    /// Total bytes currently reserved by the scratch's buffers. Constant
    /// across repeated embeddings at a fixed (d, n) — the no-allocation
    /// property the engine tests pin down.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        4 * (self.faulty.capacity()
            + self.probe.capacity()
            + self.succ.capacity()
            + self.label_stamp.capacity()
            + self.label_parent.capacity()
            + self.queue.capacity()
            + self.next.capacity()
            + self.bstar.capacity()
            + self.level_offsets.capacity()
            + self.members.capacity())
            + (self.fwd8.capacity() + self.bwd8.capacity() + self.vis8.capacity())
            + self.bits.allocated_bytes()
            + self.pbits.allocated_bytes()
            + self.plvl.allocated_bytes()
            + self.pbest.allocated_bytes()
            + 8 * self.exit_bits.capacity()
            + 8 * self.group_entries.capacity()
            + std::mem::size_of::<usize>() * self.cycle.capacity()
    }

    /// Grows the slot arrays to the engine's sizes and advances the stamp.
    fn prepare(&mut self, t: &EngineTables) {
        if self.stamp == u32::MAX {
            // Stamp wrap-around (once per 2^32 calls): forget all slots.
            for arr in [&mut self.faulty, &mut self.probe, &mut self.label_stamp] {
                arr.iter_mut().for_each(|s| *s = 0);
            }
            // The packed (stamp | level) slots of the parallel engine carry
            // the stamp in their high half; zero is never a current stamp.
            for i in 0..self.plvl.len() {
                self.plvl.store(i, 0);
            }
            self.stamp = 0;
        }
        self.stamp += 1;
        grow(&mut self.faulty, t.n_necks);
        grow(&mut self.probe, t.n_nodes);
        grow(&mut self.succ, t.n_nodes);
        grow(&mut self.label_stamp, t.suffix_count);
        grow(&mut self.label_parent, t.suffix_count);
        // Worklists are cleared and presized to their worst-case bounds, so
        // no fault pattern can grow them after the first call at this size:
        // frontiers and the cycle hold at most every node, the necklace
        // lists at most every necklace, each live necklace contributes
        // at most two group records (itself plus a first-seen parent), and
        // the broadcast can have at most one level per node (plus the two
        // CSR sentinels).
        reserve(&mut self.queue, t.n_nodes);
        reserve(&mut self.next, t.n_nodes);
        reserve(&mut self.bstar, t.n_nodes);
        reserve(&mut self.level_offsets, t.n_nodes + 2);
        reserve(&mut self.group_entries, 2 * t.n_necks);
        reserve(&mut self.members, t.n_necks);
        reserve(&mut self.cycle, t.n_nodes);
    }

    /// Grows (and clears where required) the parallel engine's slot
    /// arrays: the packed level slots are stamp-invalidated like the rest
    /// of the scratch, while the per-necklace best keys and the exit
    /// bitmap are cleared per call — both are O(d^n / n) or smaller, a
    /// vanishing fraction of the embedding itself.
    fn prepare_parallel(&mut self, t: &EngineTables) {
        self.plvl.grow(t.n_nodes);
        self.pbest.grow(t.n_necks);
        for nid in 0..t.n_necks {
            self.pbest.store(nid, u64::MAX);
        }
        let words = t.n_nodes.div_ceil(64);
        if self.exit_bits.len() < words {
            self.exit_bits.resize(words, 0);
        }
        self.exit_bits[..words].fill(0);
    }

    /// Grows and (on wrap-around) clears the byte-stamped reachability
    /// arrays of the stats-only path, and advances their stamp.
    fn prepare_stats(&mut self, t: &EngineTables) {
        grow(&mut self.fwd8, t.n_nodes);
        grow(&mut self.bwd8, t.n_nodes);
        grow(&mut self.vis8, t.n_nodes);
        self.stamp8 = self.stamp8.wrapping_add(1);
        if self.stamp8 == 0 {
            for arr in [&mut self.fwd8, &mut self.bwd8, &mut self.vis8] {
                arr.iter_mut().for_each(|b| *b = 0);
            }
            self.stamp8 = 1;
        }
    }
}

/// Grows a slot vector to at least `len` entries without ever shrinking.
fn grow<T: Default + Clone>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// Empties a worklist and guarantees room for `cap` entries (shared with
/// the bit-parallel scratch's frontier queues).
pub(crate) fn reserve<T>(v: &mut Vec<T>, cap: usize) {
    v.clear();
    if v.capacity() < cap {
        v.reserve_exact(cap - v.len());
    }
}

impl Ffc {
    /// Creates the embedder for B(d,n): one FKM necklace-enumeration pass
    /// builds the partition (membership table + member CSR) that the
    /// engine reads directly.
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        Self::with_shards(d, n, 1)
    }

    /// [`Ffc::new`], rejecting spaces whose node ids overflow the
    /// engine's u32 indexing with a typed error instead of panicking —
    /// and without allocating any table for the oversized graph.
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when d^n exceeds [`u32::MAX`] (or
    /// overflows u64 entirely).
    pub fn try_new(d: u64, n: u32) -> Result<Self, SpaceTooLarge> {
        Self::try_with_shards(d, n, 1)
    }

    /// [`Ffc::with_shards`] with the [`Ffc::try_new`] error contract.
    ///
    /// `shards` is a request, not a mandate: the construction clamps it
    /// through [`crate::bitreach::effective_shards`] so oversubscribed or
    /// too-small-to-shard table fills never pay thread overhead for
    /// nothing (the tables are bit-identical at any count either way).
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when d^n exceeds [`u32::MAX`] (or
    /// overflows u64 entirely).
    pub fn try_with_shards(d: u64, n: u32, shards: usize) -> Result<Self, SpaceTooLarge> {
        let n_nodes = dbg_algebra::num::checked_pow(d, n).ok_or(SpaceTooLarge { n_nodes: None })?;
        if u32::try_from(n_nodes).is_err() {
            return Err(SpaceTooLarge {
                n_nodes: Some(n_nodes),
            });
        }
        let shards = crate::bitreach::effective_shards(shards, n_nodes as usize);
        Ok(Self::build(d, n, shards))
    }

    /// [`Ffc::new`] with the partition's membership/CSR fill sharded over
    /// `shards` scoped threads ([`NecklacePartition::with_shards`]) — the
    /// table construction analogue of [`Ffc::embed_batch`]'s sharding,
    /// useful for B(2,20)-scale setup on multi-core hosts. The tables are
    /// bit-identical at any shard count.
    ///
    /// # Panics
    /// Panics if d^n overflows the engine's u32 node indexing
    /// ([`Ffc::try_with_shards`] is the non-panicking variant).
    #[must_use]
    pub fn with_shards(d: u64, n: u32, shards: usize) -> Self {
        match Self::try_with_shards(d, n, shards) {
            Ok(ffc) => ffc,
            Err(e) => panic!("engine tables index nodes with u32; B({d},{n}) is too large: {e}"),
        }
    }

    /// Constructs the embedder once the node count has been validated.
    fn build(d: u64, n: u32, shards: usize) -> Self {
        let graph = DeBruijn::new(d, n);
        let n_nodes = graph.len();
        let partition = NecklacePartition::with_shards(graph.space(), shards);
        let tables = EngineTables {
            d: graph.d() as usize,
            suffix_count: graph.space().msd_place() as usize,
            n_nodes,
            n_necks: partition.len(),
            reach: BitReach::new(graph.d() as usize, n_nodes),
        };
        Ffc {
            graph,
            partition,
            tables,
        }
    }

    /// The underlying de Bruijn graph.
    #[must_use]
    pub fn graph(&self) -> &DeBruijn {
        &self.graph
    }

    /// The necklace partition of the node set.
    #[must_use]
    pub fn partition(&self) -> &NecklacePartition {
        &self.partition
    }

    /// The representative (minimal member) of `v`'s necklace — a flat table
    /// lookup, unlike the O(n) `WordSpace::canonical_rotation`.
    #[must_use]
    pub fn representative_of(&self, v: usize) -> usize {
        self.partition
            .necklace(self.partition.membership()[v] as usize)
            .representative() as usize
    }

    /// The members of necklace `id` in rotation order starting at its
    /// representative (a slice of the partition's precomputed CSR layout).
    #[must_use]
    pub fn necklace_members(&self, id: usize) -> &[u32] {
        self.partition.members(id)
    }

    /// The default root R = 0…01 used by the paper's simulations.
    #[must_use]
    pub fn default_root(&self) -> usize {
        1
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at the
    /// default root R = 0…01 (if R's necklace is faulty, the nearest
    /// non-faulty node found by a breadth-first probe is used instead,
    /// matching the protocol of Section 2.5.2).
    ///
    /// Allocates a fresh [`EmbedScratch`] per call; steady-state callers
    /// (sweeps, services) should hold a scratch and use
    /// [`Ffc::embed_into`].
    #[must_use]
    pub fn embed(&self, faulty_nodes: &[usize]) -> FfcOutcome {
        let mut scratch = EmbedScratch::new();
        let stats = self.embed_into(&mut scratch, faulty_nodes);
        outcome_from(stats, std::mem::take(&mut scratch.cycle))
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes`, rooted at (the
    /// necklace representative of) `root`.
    ///
    /// # Panics
    /// Panics if `root`'s necklace is itself faulty.
    #[must_use]
    pub fn embed_from(&self, faulty_nodes: &[usize], root: usize) -> FfcOutcome {
        let mut scratch = EmbedScratch::new();
        let stats = self.embed_into_from(&mut scratch, faulty_nodes, root);
        outcome_from(stats, std::mem::take(&mut scratch.cycle))
    }

    /// Embeds a fault-free cycle avoiding `faulty_nodes` using `scratch`
    /// for all mutable state; the cycle is left in [`EmbedScratch::cycle`].
    /// Root selection follows [`Ffc::embed`]. After the scratch has warmed
    /// up at this (d, n), the call performs no heap allocation.
    pub fn embed_into(&self, scratch: &mut EmbedScratch, faulty_nodes: &[usize]) -> EmbedStats {
        self.engine_embed(scratch, faulty_nodes, None)
    }

    /// [`Ffc::embed_into`] with an explicit root, like [`Ffc::embed_from`].
    ///
    /// # Panics
    /// Panics if `root`'s necklace is itself faulty.
    pub fn embed_into_from(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
        root: usize,
    ) -> EmbedStats {
        self.engine_embed(scratch, faulty_nodes, Some(root))
    }

    /// [`Ffc::embed_into`] on the multi-shard parallel engine: produces
    /// **bit-identical** [`EmbedStats`] and cycle bytes to the serial
    /// engine on the same faults, at every shard count (the serial path
    /// is retained as the differential oracle; exhaustive ≤2-fault
    /// equality plus B(2,14) property tests pin the contract).
    ///
    /// What runs differently:
    ///
    /// * the forward/backward component passes and the level-emitting
    ///   broadcast run on the word-range-sharded bit engine
    ///   ([`crate::bitreach`]'s `*_par` passes) over `shards` scoped
    ///   threads;
    /// * the level-CSR scatter (stamping each B* node's broadcast level)
    ///   and the per-necklace earliest-member reduction are fused into
    ///   one sharded pass over the emitted levels — cross-shard safe via
    ///   an atomic min, lock-free single-writer at one shard.
    ///
    /// The structural optimisations that debuted on this path — lazy
    /// spanning-tree parents (computed only for the d^n/n chosen
    /// necklace nodes) and the streaming cycle readoff (arithmetic
    /// rotation plus an L2-resident exit bitmap, no materialised
    /// successor array) — are now shared by [`Ffc::embed_into`], so at
    /// `shards == 1` (where the leader runs every shard inline) the two
    /// entry points perform the same work — see the `"mode": "full"`
    /// tiers of `BENCH_ffc.json`. `shards`
    /// is a request: the call clamps it through
    /// [`crate::bitreach::effective_shards`], so asking for more shards
    /// than the host has cores — or than the graph has work — costs
    /// nothing. The `shards - 1` workers live in a persistent pool
    /// inside the scratch ([`shardpool::ShardPool`]): they are spawned
    /// once and reused across calls, synchronising on sense-reversing
    /// atomic barriers instead of re-spawning per level. Root selection
    /// follows [`Ffc::embed_into`]. After warm-up the call performs no
    /// heap allocation (the pool threads included).
    pub fn embed_into_parallel(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
        shards: usize,
    ) -> EmbedStats {
        let shards = crate::bitreach::effective_shards(shards, self.tables.n_nodes);
        if shards == 1 {
            // One shard *is* the serial pipeline — same phases, same
            // passes — so run the same compiled path too, instead of a
            // second monomorphization whose code layout can drift a few
            // percent either way.
            return self.engine_embed(scratch, faulty_nodes, None);
        }
        self.engine_embed_parallel(scratch, faulty_nodes, shards)
    }

    /// [`Ffc::embed_into_parallel`] without the
    /// [`crate::bitreach::effective_shards`] clamp: runs exactly
    /// `shards.max(1)` shards regardless of host core count or graph
    /// size. The differential suites and benches use this to pin the
    /// bit-identical contract at shard counts the heuristic would fold
    /// away (non-power-of-two counts, counts above
    /// `available_parallelism`); production callers want the clamped
    /// variant.
    pub fn embed_into_parallel_exact(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
        shards: usize,
    ) -> EmbedStats {
        self.engine_embed_parallel(scratch, faulty_nodes, shards.max(1))
    }

    /// The scalar half of an embedding, without materialising the cycle:
    /// identical [`EmbedStats`] to [`Ffc::embed_into`] on the same faults
    /// (same root-repair policy, same component, same eccentricity), but
    /// the spanning-tree, successor-function and cycle-readoff phases are
    /// skipped entirely and [`EmbedScratch::cycle`] is left empty.
    ///
    /// This is the hot path of Monte-Carlo sweeps that only tabulate
    /// component sizes and eccentricities (Tables 2.1/2.2):
    /// [`Ffc::embed_batch`] uses it whenever the plan does not request
    /// cycles. The reachability passes run on the bit-parallel engine
    /// ([`crate::bitreach`]): direction-optimizing BFS whose dense regime
    /// advances 64 nodes per word op, with faulty necklaces masked out as
    /// word-packed pre-visited bits. Like `embed_into`, it performs no
    /// heap allocation after the scratch has warmed up at this (d, n).
    pub fn embed_stats_into(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
    ) -> EmbedStats {
        let t = &self.tables;
        let reach = t.reach;
        let s = scratch;
        s.prepare(t);
        reach.prepare(&mut s.bits);

        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);
        let (root, _) = self.phase_select_root(s, None);

        // Forward pass first: when B* turns out to equal the forward set
        // (the common light-fault case) its depth *is* the broadcast
        // eccentricity and the third pass is skipped entirely.
        let (fwd_count, fwd_depth) = reach.forward(&mut s.bits, root);
        reach.backward(&mut s.bits, root);
        let component_size = reach.component_size(&s.bits, removed_nodes);
        let eccentricity = if component_size == fwd_count {
            fwd_depth
        } else {
            reach.broadcast_depth(&mut s.bits, root)
        };

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// The u8-stamp stats path of PR 2, retained verbatim as the
    /// differential oracle for the bit-parallel engine and as the baseline
    /// the `bench_ffc` large-graph tiers compare against. Semantically
    /// identical to [`Ffc::embed_stats_into`].
    pub fn embed_stats_into_u8(
        &self,
        scratch: &mut EmbedScratch,
        faulty_nodes: &[usize],
    ) -> EmbedStats {
        let t = &self.tables;
        let membership = self.partition.membership();
        let d = t.d;
        let s = scratch;
        s.prepare(t);
        s.prepare_stats(t);
        let stamp = s.stamp;
        let stamp8 = s.stamp8;

        // Fault marking and root repair: byte-for-byte the policy of
        // `engine_embed` with `forced_root = None`. Every node of a faulty
        // necklace is additionally pre-stamped as "already visited" in the
        // byte-stamped fwd8/bwd8/vis8 arrays (O(n·f) stores via the
        // necklace CSR): the BFS loops below then never enqueue a dead
        // node, and their liveness check collapses into the visited check —
        // a single one-byte load per edge instead of the membership →
        // faulty indirection.
        let mut faulty_necklaces = 0usize;
        let mut removed_nodes = 0usize;
        for &v in faulty_nodes {
            assert!(v < t.n_nodes, "faulty node id {v} out of range");
            let nid = membership[v] as usize;
            if s.faulty[nid] != stamp {
                s.faulty[nid] = stamp;
                faulty_necklaces += 1;
                removed_nodes += self.partition.necklace(nid).len();
                for &member in self.partition.members(nid) {
                    s.fwd8[member as usize] = stamp8;
                    s.bwd8[member as usize] = stamp8;
                    s.vis8[member as usize] = stamp8;
                }
            }
        }
        let (root, _) = self.phase_select_root(s, None);

        // The reachability passes are monomorphised on whether d is a power
        // of two: the per-edge `% suffix` / `/ d` then compile to masks and
        // shifts instead of hardware divisions, which dominate the
        // otherwise load-light loops of the binary graphs.
        let (component_size, eccentricity) = if d.is_power_of_two() {
            self.stats_reach::<true>(s, root, stamp8)
        } else {
            self.stats_reach::<false>(s, root, stamp8)
        };

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// Shared fault marking of the bit-parallel paths: stamps each faulty
    /// necklace once and kills its members in the word-packed fault mask.
    /// Returns `(faulty_necklaces, removed_nodes)`.
    fn mark_faults_bits(&self, s: &mut EmbedScratch, faulty_nodes: &[usize]) -> (usize, usize) {
        let t = &self.tables;
        let membership = self.partition.membership();
        let stamp = s.stamp;
        let mut faulty_necklaces = 0usize;
        let mut removed_nodes = 0usize;
        for &v in faulty_nodes {
            assert!(v < t.n_nodes, "faulty node id {v} out of range");
            let nid = membership[v] as usize;
            if s.faulty[nid] != stamp {
                s.faulty[nid] = stamp;
                faulty_necklaces += 1;
                let members = self.partition.members(nid);
                removed_nodes += members.len();
                for &member in members {
                    t.reach.kill(&mut s.bits, member as usize);
                }
            }
        }
        (faulty_necklaces, removed_nodes)
    }

    /// The boolean per-necklace fault mask induced by a set of faulty nodes.
    #[must_use]
    pub fn faulty_necklace_mask(&self, faulty_nodes: &[usize]) -> Vec<bool> {
        for &v in faulty_nodes {
            assert!(v < self.graph.len(), "faulty node id {v} out of range");
        }
        self.partition
            .faulty_necklaces(faulty_nodes.iter().map(|&v| v as u64))
    }

    /// Picks a live root: `preferred` if its necklace survives, otherwise
    /// the repair root — the **nearest live node by breadth-first distance
    /// from `preferred` over the full graph (faults ignored while
    /// searching), ties broken by minimal node id**.
    ///
    /// The repair policy is implemented exactly once: this method stamps a
    /// throwaway scratch from the mask and delegates to the engine's
    /// `probe_for_live_root`, so the two public entry points cannot drift
    /// apart (an exhaustive differential test additionally pins the
    /// policy).
    ///
    /// # Panics
    /// Panics if every necklace is faulty.
    #[must_use]
    pub fn pick_root(&self, preferred: usize, faulty_mask: &[bool]) -> usize {
        let alive = |v: usize| !faulty_mask[self.partition.id_of(v as u64)];
        if alive(preferred) {
            return preferred;
        }
        let mut scratch = EmbedScratch::new();
        scratch.prepare(&self.tables);
        let stamp = scratch.stamp;
        for (nid, &faulty) in faulty_mask.iter().enumerate() {
            if faulty {
                scratch.faulty[nid] = stamp;
            }
        }
        self.probe_for_live_root(&mut scratch, preferred)
    }
}

/// Builds an [`FfcOutcome`] from engine stats and an owned cycle buffer.
fn outcome_from(stats: EmbedStats, cycle: Vec<usize>) -> FfcOutcome {
    FfcOutcome {
        root: stats.root,
        cycle,
        component_size: stats.component_size,
        eccentricity: stats.eccentricity,
        faulty_necklaces: stats.faulty_necklaces,
        removed_nodes: stats.removed_nodes,
    }
}
