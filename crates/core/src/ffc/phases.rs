//! The embedding pipeline, decomposed into named phases.
//!
//! Every `Ffc::embed_into*` entry point is a sequence of the same phases —
//! fault marking, root selection, the reachability snapshot (forward +
//! backward passes that pin down B*), the broadcast/spanning-tree phase,
//! necklace selection (per-necklace earliest members and their w-labeled
//! tree edges), w-group wiring, and the cycle readoff. The serial and
//! parallel engines differ only in *how* a phase runs (scalar loops vs the
//! sharded bit-parallel passes), never in what it produces: the phase
//! outputs are bit-identical, which is what lets
//! [`super::session::EmbedSession`] persist them and repair them
//! incrementally instead of re-running the pipeline per fault event.

use crate::bitreach::AtomicCells;

use super::{EmbedScratch, EmbedStats, Ffc};

impl Ffc {
    /// The reachability passes of [`Ffc::embed_stats_into_u8`] (the
    /// retained u8-stamp oracle — the production stats path runs on
    /// [`crate::bitreach`]): forward BFS,
    /// backward BFS and (only when needed) the broadcast over B*. Returns
    /// (|B*|, eccentricity of the root within B*). `POW2` selects the
    /// shift/mask address arithmetic for power-of-two d.
    pub(crate) fn stats_reach<const POW2: bool>(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        stamp8: u8,
    ) -> (usize, usize) {
        let t = &self.tables;
        let d = t.d;
        let suffix = t.suffix_count;
        let d_log = d.trailing_zeros();
        let suffix_log = suffix.trailing_zeros();
        let suffix_mask = suffix.wrapping_sub(1);
        debug_assert!(!POW2 || (d.is_power_of_two() && suffix.is_power_of_two()));
        let succ_base = |v: usize| -> usize {
            if POW2 {
                (v & suffix_mask) << d_log
            } else {
                (v % suffix) * d
            }
        };
        let pred_base = |v: usize| -> usize {
            if POW2 {
                v >> d_log
            } else {
                v / d
            }
        };
        let pred_step = |a: usize| -> usize {
            if POW2 {
                a << suffix_log
            } else {
                a * suffix
            }
        };

        // Forward reachability, level-synchronous so its depth doubles as
        // the broadcast depth when B* turns out to be the whole forward set.
        s.queue.clear();
        s.fwd8[root] = stamp8;
        s.queue.push(root as u32);
        let mut fwd_count = 1usize;
        let mut fwd_depth = 0u32;
        loop {
            s.next.clear();
            for &v in &s.queue {
                let base = succ_base(v as usize);
                for a in 0..d {
                    let u = base + a;
                    if s.fwd8[u] != stamp8 {
                        s.fwd8[u] = stamp8;
                        s.next.push(u as u32);
                    }
                }
            }
            if s.next.is_empty() {
                break;
            }
            fwd_count += s.next.len();
            fwd_depth += 1;
            std::mem::swap(&mut s.queue, &mut s.next);
        }

        // Backward reachability (plain FIFO); |B*| is counted, not listed.
        s.queue.clear();
        s.bwd8[root] = stamp8;
        s.queue.push(root as u32);
        let mut component_size = 1usize;
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            let base = pred_base(v);
            for a in 0..d {
                let u = base + pred_step(a);
                if s.bwd8[u] != stamp8 {
                    s.bwd8[u] = stamp8;
                    s.queue.push(u as u32);
                    if s.fwd8[u] == stamp8 {
                        component_size += 1;
                    }
                }
            }
        }

        // Eccentricity of the root within B*. When every forward-reachable
        // node is also backward-reachable (B* equals the forward set — the
        // common case for light fault loads), the forward BFS above *was*
        // the broadcast, so its depth is the answer and the third pass is
        // skipped. Otherwise run the broadcast restricted to B*, levels
        // only (the spanning-tree parents are not needed for stats).
        let eccentricity = if component_size == fwd_count {
            fwd_depth as usize
        } else {
            s.queue.clear();
            s.vis8[root] = stamp8;
            s.queue.push(root as u32);
            let mut depth = 0u32;
            loop {
                s.next.clear();
                for &v in &s.queue {
                    let base = succ_base(v as usize);
                    for a in 0..d {
                        let u = base + a;
                        if s.fwd8[u] == stamp8 && s.bwd8[u] == stamp8 && s.vis8[u] != stamp8 {
                            s.vis8[u] = stamp8;
                            s.next.push(u as u32);
                        }
                    }
                }
                if s.next.is_empty() {
                    break;
                }
                depth += 1;
                std::mem::swap(&mut s.queue, &mut s.next);
            }
            depth as usize
        };
        (component_size, eccentricity)
    }

    /// One full embedding on reusable state, as the explicit serial phase
    /// pipeline: fault marking, root selection, the reachability snapshot,
    /// the level-emitting broadcast, necklace selection, w-group wiring
    /// and the streaming cycle readoff. Necklace selection runs the fused
    /// level-scatter of [`Ffc::phase_necklace_selection_par`] at one shard
    /// — spanning-tree parents are derived lazily per necklace from the
    /// packed level slots instead of materialising a whole-B* parent
    /// array (the differential suites pin both flavours byte-identical).
    /// The readoff is the same arithmetic-rotation walk as the parallel
    /// engine's: no per-node successor array is materialised and the
    /// override slots are consulted only where the exit bitmap is set —
    /// a pointer-chase through a B*-sized successor array is one
    /// dependent DRAM load per ring node, and it dominated the serial
    /// embed at a million nodes.
    /// `forced_root` is `Some` for [`Ffc::embed_into_from`] (panics if
    /// its necklace is faulty) and `None` for the
    /// default-root-with-repair policy of [`Ffc::embed_into`].
    pub(crate) fn engine_embed(
        &self,
        s: &mut EmbedScratch,
        faulty_nodes: &[usize],
        forced_root: Option<usize>,
    ) -> EmbedStats {
        let t = &self.tables;
        s.prepare(t);
        s.prepare_parallel(t);
        // The bit scratch sizes its bitmaps and clears the fault mask
        // here, not in `prepare` — the u8 oracle path never pays for it.
        t.reach.prepare(&mut s.bits);

        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);
        let (root, root_neck) = self.phase_select_root(s, forced_root);
        let component_size = self.phase_reachability_snapshot(s, root, removed_nodes);
        let eccentricity = self.phase_broadcast_levels(s, root, component_size);
        self.phase_necklace_selection_par(s, root_neck, 1);
        self.wire_w_groups(s);
        self.phase_readoff_streaming(s, root, component_size);

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// Root-selection phase (Section 2.5.2): the forced root when one is
    /// requested (asserting its necklace is live), otherwise the preferred
    /// root if live, else the nearest live node by a breadth-first probe
    /// over the *full* graph — identical to [`Ffc::pick_root`], but
    /// allocation-free. The returned root is normalised to the minimal
    /// node of its necklace so N(R) = [R]; its necklace id rides along.
    pub(crate) fn phase_select_root(
        &self,
        s: &mut EmbedScratch,
        forced_root: Option<usize>,
    ) -> (usize, usize) {
        let t = &self.tables;
        let membership = self.partition.membership();
        let stamp = s.stamp;
        let root = match forced_root {
            Some(r) => {
                assert!(r < t.n_nodes, "root id {r} out of range");
                assert!(
                    s.faulty[membership[r] as usize] != stamp,
                    "the requested root lies on a faulty necklace"
                );
                r
            }
            None => {
                let preferred = self.default_root();
                if s.faulty[membership[preferred] as usize] != stamp {
                    preferred
                } else {
                    self.probe_for_live_root(s, preferred)
                }
            }
        };
        let root = self.representative_of(root);
        (root, membership[root] as usize)
    }

    /// Reachability-snapshot phase: B* is the strongly connected component
    /// of the surviving graph that contains the root — the intersection of
    /// the live forward- and backward-reachable sets of the root, found by
    /// two direction-optimizing bit-parallel passes (no Tarjan, no
    /// materialised SCCs). Returns |B*|.
    pub(crate) fn phase_reachability_snapshot(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        removed_nodes: usize,
    ) -> usize {
        let reach = self.tables.reach;
        let _ = reach.forward(&mut s.bits, root);
        reach.backward(&mut s.bits, root);
        reach.component_size(&s.bits, removed_nodes)
    }

    /// Broadcast phase (Step 1.1), serial flavour: the bit engine runs the
    /// frontier expansion and emits the reached nodes level by level into
    /// `bstar` (which therefore lists exactly B*, with `level_offsets` the
    /// CSR level boundaries). The spanning tree itself is *not*
    /// materialised — necklace selection derives the parent of each chosen
    /// node lazily from the packed level slots, once per necklace instead
    /// of once per node. Returns the broadcast depth (the root's
    /// eccentricity within B*).
    pub(crate) fn phase_broadcast_levels(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        component_size: usize,
    ) -> usize {
        let t = &self.tables;
        let (reached, depth) =
            t.reach
                .broadcast_levels(&mut s.bits, root, &mut s.bstar, &mut s.level_offsets);
        debug_assert_eq!(reached, component_size, "broadcast must cover B*");
        let _ = (reached, component_size);
        depth
    }

    /// The Step 2 → Step 3 wiring shared by the serial and parallel
    /// engines: walks the sorted `group_entries` runs, closes each
    /// w-group (children + parent necklace, in necklace-id order) into a
    /// directed cycle of w-edges — the modified tree D — and writes the
    /// successor override of every w-edge into the override slots plus
    /// the word-packed exit bitmap the streaming readoff tests. Nodes
    /// without an exit bit never have their override slot read, so no
    /// per-node successor default is ever materialised.
    fn wire_w_groups(&self, s: &mut EmbedScratch) {
        let t = &self.tables;
        let (d, suffix) = (t.d, t.suffix_count);
        let membership = self.partition.membership();
        let EmbedScratch {
            group_entries,
            members,
            succ,
            exit_bits,
            bits,
            ..
        } = s;
        let mut i = 0;
        while i < group_entries.len() {
            let label = (group_entries[i] >> 32) as usize;
            members.clear();
            let mut j = i;
            while j < group_entries.len() && (group_entries[j] >> 32) as usize == label {
                let nid = (group_entries[j] & u64::from(u32::MAX)) as u32;
                // Entries are sorted, so duplicates (a parent that is also
                // a child of the same label) are adjacent.
                if members.last() != Some(&nid) {
                    members.push(nid);
                }
                j += 1;
            }
            for_each_w_edge(d, suffix, membership, label, members, |exit, entry| {
                debug_assert!(t.reach.in_bstar(bits, entry));
                succ[exit] = entry as u32;
                exit_bits[exit / 64] |= 1u64 << (exit % 64);
            });
            i = j;
        }
    }

    /// One full embedding on the parallel engine, as the same explicit
    /// phase pipeline as [`Ffc::engine_embed`] with the sharded phase
    /// flavours substituted (see [`Ffc::embed_into_parallel`] for the
    /// breakdown). Uses the default-root-with-repair policy of
    /// [`Ffc::embed_into`].
    pub(crate) fn engine_embed_parallel(
        &self,
        s: &mut EmbedScratch,
        faulty_nodes: &[usize],
        shards: usize,
    ) -> EmbedStats {
        let t = &self.tables;
        s.prepare(t);
        s.prepare_parallel(t);
        t.reach.prepare(&mut s.bits);

        let (faulty_necklaces, removed_nodes) = self.mark_faults_bits(s, faulty_nodes);
        let (root, root_neck) = self.phase_select_root(s, None);
        let (component_size, eccentricity) =
            self.phase_reachability_snapshot_par(s, root, removed_nodes, shards);
        self.phase_necklace_selection_par(s, root_neck, shards);
        self.wire_w_groups(s);
        self.phase_readoff_streaming(s, root, component_size);

        EmbedStats {
            root,
            component_size,
            eccentricity,
            faulty_necklaces,
            removed_nodes,
        }
    }

    /// Reachability-snapshot and broadcast phases, sharded flavour: B* and
    /// the level-emitting broadcast run on the word-range-sharded passes
    /// (which delegate to the serial engine at one shard or on shapes
    /// without dense sweeps — bit-identical either way). Returns
    /// (|B*|, broadcast depth).
    pub(crate) fn phase_reachability_snapshot_par(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        removed_nodes: usize,
        shards: usize,
    ) -> (usize, usize) {
        let reach = self.tables.reach;
        let EmbedScratch {
            bits,
            pbits,
            bstar,
            level_offsets,
            ..
        } = s;
        let _ = reach.forward_par(bits, pbits, root, shards);
        reach.backward_par(bits, pbits, root, shards);
        let component_size = reach.component_size(bits, removed_nodes);
        let (reached, depth) =
            reach.broadcast_levels_par(bits, pbits, root, bstar, level_offsets, shards);
        debug_assert_eq!(reached, component_size, "broadcast must cover B*");
        let _ = reached;
        (component_size, depth)
    }

    /// Necklace-selection phase (Steps 1.2 and 2), sharded flavour. First
    /// a fused level scatter + reduction: one sharded pass over the
    /// emitted level CSR stamps every B* node's packed (stamp | level)
    /// slot and folds each non-root necklace's earliest (level, node) key
    /// with an atomic min. Contiguous CSR chunks; every slot has one
    /// logical writer per call and the min reduction is
    /// order-independent, so the result is identical at any shard count.
    /// Then, for every live non-root necklace, its best key names the
    /// earliest-reached member Y; the spanning-tree parent is computed
    /// **here, once per necklace** — the minimal predecessor of Y one
    /// level up, a packed-slot compare per candidate — instead of being
    /// materialised for every node of B* like the serial engine does.
    /// Group records and their sort are byte-identical to the serial
    /// engine's.
    pub(crate) fn phase_necklace_selection_par(
        &self,
        s: &mut EmbedScratch,
        root_neck: usize,
        shards: usize,
    ) {
        let t = &self.tables;
        let (d, suffix) = (t.d, t.suffix_count);
        let membership = self.partition.membership();
        let stamp = s.stamp;
        {
            let EmbedScratch {
                plvl,
                pbest,
                bstar,
                level_offsets,
                ..
            } = s;
            let bstar = &bstar[..];
            let offsets = &level_offsets[..];
            if shards == 1 {
                scan_levels::<false>(
                    plvl,
                    pbest,
                    bstar,
                    offsets,
                    membership,
                    stamp,
                    root_neck,
                    0..bstar.len(),
                );
            } else {
                // The spawns below and the implicit join at the end of the
                // scope are this region's synchronisation edges — declare
                // them to the shadow detector so the main thread's earlier
                // slot initialisation (prepare_parallel) and its later
                // reads land in different phase epochs than the scatter.
                #[cfg(feature = "racecheck")]
                crate::bitreach::racecheck::sync_edge();
                std::thread::scope(|scope| {
                    for k in 1..shards {
                        let range = crate::bitreach::shard_words(bstar.len(), shards, k);
                        let (plvl, pbest) = (&*plvl, &*pbest);
                        scope.spawn(move || {
                            scan_levels::<true>(
                                plvl, pbest, bstar, offsets, membership, stamp, root_neck, range,
                            );
                        });
                    }
                    scan_levels::<true>(
                        plvl,
                        pbest,
                        bstar,
                        offsets,
                        membership,
                        stamp,
                        root_neck,
                        crate::bitreach::shard_words(bstar.len(), shards, 0),
                    );
                });
                // The matching join edge: whatever the caller writes next
                // is a new phase.
                #[cfg(feature = "racecheck")]
                crate::bitreach::racecheck::sync_edge();
            }
        }

        let stamp_hi = u64::from(stamp) << 32;
        for nid in 0..t.n_necks {
            let key = s.pbest.load(nid);
            if key == u64::MAX {
                continue;
            }
            debug_assert_ne!(nid, root_neck, "the root necklace has no tree edge");
            let chosen = (key & u64::from(u32::MAX)) as usize;
            let lstar = (key >> 32) as u32;
            debug_assert!(lstar >= 1, "non-root necklace reached at level 0");
            let label = chosen / d; // the (n−1)-digit prefix of Y
            let want = stamp_hi | u64::from(lstar - 1);
            let parent = (0..d)
                .map(|a| label + a * suffix)
                .find(|&p| s.plvl.load(p) == want)
                .expect("chosen node with no frontier predecessor");
            let parent_neck = membership[parent] as usize;
            if s.label_stamp[label] != stamp {
                s.label_stamp[label] = stamp;
                s.label_parent[label] = parent_neck as u32;
                s.group_entries
                    .push(((label as u64) << 32) | parent_neck as u64);
            } else {
                debug_assert_eq!(
                    s.label_parent[label] as usize, parent_neck,
                    "T_w must have a single parent necklace (height-one property)"
                );
            }
            s.group_entries.push(((label as u64) << 32) | nid as u64);
        }
        s.group_entries.sort_unstable();
    }

    /// Cycle-readoff phase, shared by both engines: necklace rotation is
    /// arithmetic, the exit bitmap says when to consult the override slot
    /// instead.
    pub(crate) fn phase_readoff_streaming(
        &self,
        s: &mut EmbedScratch,
        root: usize,
        component_size: usize,
    ) {
        let (d, suffix) = (self.tables.d, self.tables.suffix_count);
        if d.is_power_of_two() && suffix.is_power_of_two() {
            read_off_cycle::<true>(s, root, d, suffix, component_size);
        } else {
            read_off_cycle::<false>(s, root, d, suffix, component_size);
        }
    }

    /// The single implementation of root repair, shared by the engine and
    /// (via a stamped throwaway scratch) by [`Ffc::pick_root`]: the nearest
    /// live node by breadth-first distance from `preferred`, ties broken by
    /// minimal node id (each level is sorted before it is scanned). The
    /// exhaustive differential test `root_repair_order_is_identical` pins
    /// the policy.
    ///
    /// # Panics
    /// Panics if every necklace is faulty.
    pub(crate) fn probe_for_live_root(&self, s: &mut EmbedScratch, preferred: usize) -> usize {
        let t = &self.tables;
        let membership = self.partition.membership();
        let stamp = s.stamp;
        let (d, suffix) = (t.d, t.suffix_count);
        s.queue.clear();
        s.probe[preferred] = stamp;
        s.queue.push(preferred as u32);
        while !s.queue.is_empty() {
            s.next.clear();
            for &v in &s.queue {
                let base = (v as usize % suffix) * d;
                for a in 0..d {
                    let u = base + a;
                    if s.probe[u] != stamp {
                        s.probe[u] = stamp;
                        s.next.push(u as u32);
                    }
                }
            }
            s.next.sort_unstable();
            if let Some(&u) = s
                .next
                .iter()
                .find(|&&u| s.faulty[membership[u as usize] as usize] != stamp)
            {
                s.queue.clear();
                return u as usize;
            }
            std::mem::swap(&mut s.queue, &mut s.next);
        }
        panic!("every node of B(d,n) lies on a faulty necklace");
    }
}

/// One shard of the parallel engine's fused level-scatter + best-key
/// pass: for every CSR index in `range`, stamps the node's packed
/// (stamp | level) slot and folds the necklace's (level, node) min.
/// `ATOMIC` selects `fetch_min` (cross-shard) vs a plain
/// load/compare/store (single shard, no locked instructions).
#[allow(clippy::too_many_arguments)] // one scatter kernel, not an API
fn scan_levels<const ATOMIC: bool>(
    plvl: &AtomicCells,
    pbest: &AtomicCells,
    bstar: &[u32],
    offsets: &[u32],
    membership: &[u32],
    stamp: u32,
    root_neck: usize,
    range: std::ops::Range<usize>,
) {
    if range.is_empty() {
        return;
    }
    let stamp_hi = u64::from(stamp) << 32;
    // Level of the first index: the last CSR boundary at or before it.
    let mut l = offsets.partition_point(|&o| (o as usize) <= range.start) - 1;
    for idx in range {
        while (offsets[l + 1] as usize) <= idx {
            l += 1;
        }
        let v = bstar[idx] as usize;
        plvl.store(v, stamp_hi | l as u64);
        let nid = membership[v] as usize;
        if nid == root_neck {
            continue;
        }
        let key = ((l as u64) << 32) | v as u64;
        if ATOMIC {
            pbest.fetch_min(nid, key);
        } else if key < pbest.load(nid) {
            pbest.store(nid, key);
        }
    }
}

/// The streaming readoff both engines share: walks the successor
/// permutation from `root` into the scratch's cycle buffer, computing
/// the necklace rotation arithmetically and consulting the override
/// slot only where the exit bitmap is set. `POW2` compiles the rotation
/// to masks and shifts.
fn read_off_cycle<const POW2: bool>(
    s: &mut EmbedScratch,
    root: usize,
    d: usize,
    suffix: usize,
    component_size: usize,
) {
    let d_log = d.trailing_zeros();
    let suffix_log = suffix.trailing_zeros();
    let suffix_mask = suffix.wrapping_sub(1);
    debug_assert!(!POW2 || (d.is_power_of_two() && suffix.is_power_of_two()));
    let mut v = root;
    loop {
        s.cycle.push(v);
        v = if s.exit_bits[v / 64] >> (v % 64) & 1 == 1 {
            s.succ[v] as usize
        } else if POW2 {
            ((v & suffix_mask) << d_log) | (v >> suffix_log)
        } else {
            (v % suffix) * d + v / suffix
        };
        if v == root {
            break;
        }
        debug_assert!(
            s.cycle.len() <= component_size,
            "successor walk escaped B* or looped early"
        );
    }
}

/// The w-edge geometry shared by every wiring site — the engines'
/// `wire_w_groups` and the session's `rewire_label` call this one
/// implementation, so the ring bytes they produce can never drift.
/// `members` lists the group's necklaces in ascending id order; each
/// consecutive pair (wrapping) contributes one w-edge, whose exit node is
/// the unique member αw of the source necklace and whose entry node wβ
/// lies on the target necklace. `write(exit, entry)` performs the
/// engine-specific stores.
pub(crate) fn for_each_w_edge(
    d: usize,
    suffix: usize,
    membership: &[u32],
    label: usize,
    members: &[u32],
    mut write: impl FnMut(usize, usize),
) {
    let k = members.len();
    for idx in 0..k {
        let m = members[idx] as usize;
        let target = members[(idx + 1) % k] as usize;
        let exit = (0..d)
            .map(|alpha| alpha * suffix + label)
            .find(|&cand| membership[cand] as usize == m)
            .expect("a w-edge of D always has an exit node on the source necklace");
        let entry = (0..d)
            .find(|&beta| membership[beta * suffix + label] as usize == target)
            .map(|beta| label * d + beta)
            .expect("a w-edge of D always has an entry node on the target necklace");
        write(exit, entry);
    }
}
